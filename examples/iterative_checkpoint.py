#!/usr/bin/env python
"""Iterative checkpointing with persistent, pipelined collective I/O.

A time-stepping simulation dumps its state to a shared file every
timestep.  The classic loop calls ``write_all`` each time, re-paying the
coordination preamble (pattern + memory allgathers, planning) and
serializing the shuffle and PFS stages of every aggregation round.  The
MPI-4 style alternative initialises the collective once —
``fh.write_all_init()`` — and replays the frozen plan each timestep with
``start()``/``wait()``; the replay runs the engine's pipelined executor,
which double-buffers each planned aggregation window as two half-sized
slots so round t's shuffle overlaps round t-1's drain to the object
servers, inside the plan's memory budget.

The platform is the memory-variance regime where the paper's placement
matters: two memory-rich nodes host every aggregator, so shuffle traffic
arrives on their ingress links while drains leave on egress — disjoint
resources, which is what the overlap converts into time.

The example also shows the nonblocking one-shots: the final analysis
write is issued with ``iwrite_all`` and overlapped with a compute phase
before ``wait()``.

Run:  python examples/iterative_checkpoint.py   (a few seconds)
"""

import numpy as np

from repro import (
    ClusterSpec,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    NodeSpec,
    ParallelFileSystem,
    SimComm,
    SimFile,
    SparseFile,
    StorageSpec,
    block_placement,
    contiguous_view,
)
from repro.cluster import Cluster
from repro.sim import Environment, RngFactory

N_RANKS = 16
N_NODES = 16
BLOCK = 500_000  # bytes each rank checkpoints per timestep
TIMESTEPS = 4
RICH, POOR = 3_000_000, 100_000


def build(seed=0):
    spec = ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(cores=1, memory_bytes=10**9, memory_bandwidth=1e8,
                      memory_channels=2, nic_bandwidth=1e6, nic_latency=1e-6),
        storage=StorageSpec(servers=4, server_bandwidth=1e6,
                            request_overhead=1e-3, stripe_size=256),
    )
    env = Environment()
    cluster = Cluster(env, spec, RngFactory(seed))
    # two memory-rich nodes: the memory-conscious planner concentrates
    # every aggregation buffer there (mem_min excludes the poor hosts)
    cluster.set_memory_availability((RICH, RICH) + (POOR,) * (N_NODES - 2))
    comm = SimComm(env, cluster, block_placement(N_RANKS, N_NODES, 1))
    pfs = ParallelFileSystem(env, spec.storage, datastore=SparseFile())
    engine = MemoryConsciousCollectiveIO(
        comm, pfs,
        MCIOConfig(msg_group=10**9, msg_ind=256 * 1024, mem_min=200_000,
                   nah=4, min_buffer=1, cb_buffer_size=64 * 1024),
    )
    return env, comm, pfs, engine


def state_at(rank, step):
    """The rank's checkpoint bytes at a given timestep (deterministic)."""
    idx = np.arange(BLOCK, dtype=np.int64)
    return ((idx * 31 + rank * 97 + step * 7) % 251).astype(np.uint8)


def run_loop(persistent):
    env, comm, pfs, engine = build()
    fh = SimFile.open(comm, engine)

    def simulation(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * BLOCK, BLOCK))
        pc = fh.write_all_init(ctx, overlap=True) if persistent else None
        for step in range(TIMESTEPS):
            # ... compute phase would go here ...
            state = state_at(ctx.rank, step)
            if persistent:
                pc.start(ctx, state)  # MPI_Start: local, returns at once
                yield from pc.wait(ctx)  # MPI_Wait
            else:
                yield from fh.write_all(ctx, state)
        # post-run analysis pass: nonblocking read of the final state,
        # overlapped with local work, completed via the Request handle
        req = fh.iread_all(ctx)
        yield env.sleep(0.05)  # ... analysis compute ...
        data = yield from req.wait(ctx)
        return bool((data == state_at(ctx.rank, TIMESTEPS - 1)).all())

    results = comm.run_spmd(simulation)
    assert all(results), "restart verification failed"
    writes = [s for s in engine.history if s.op == "write"]
    return env.now, writes


def main():
    print(f"iterative checkpoint: {N_RANKS} ranks x {BLOCK // 1000} KB, "
          f"{TIMESTEPS} timesteps, aggregators on 2 memory-rich nodes\n")
    t_block, w_block = run_loop(persistent=False)
    t_pers, w_pers = run_loop(persistent=True)
    print("per-timestep checkpoint (simulated seconds):")
    print("  step |  blocking | persistent+overlap")
    for i, (b, p) in enumerate(zip(w_block, w_pers)):
        note = "  (plans here)" if p.extra.get("persistent_replanned") else ""
        print(f"  {i:4d} | {b.elapsed:9.3f} | {p.elapsed:18.3f}{note}")
    overlapped = sum(s.extra.get("pipeline_overlapped", 0) for s in w_pers)
    print(f"\nwhole loop: blocking {t_block:.3f} s, "
          f"persistent+overlap {t_pers:.3f} s "
          f"-> {t_block / t_pers:.2f}x speedup "
          f"({overlapped} PFS stages ran behind the shuffle)")


if __name__ == "__main__":
    main()
