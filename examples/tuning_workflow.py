#!/usr/bin/env python
"""The paper's tuning workflow: measure N_ah, Msg_ind, Mem_min, Msg_group.

MCIO's four parameters are "empirically determined" in the paper (§3):

1. sweep aggregator count x message size on one node until its I/O path
   saturates  ->  N_ah, Msg_ind;
2. derive the minimum aggregation memory  ->  Mem_min;
3. grow the number of aggregating nodes until system-level throughput
   saturates  ->  Msg_group.

This example runs those measurement campaigns on the simulated testbed,
prints the sweeps, and then uses the tuned configuration on an IOR
workload to show it performing sensibly.

Run:  python examples/tuning_workflow.py   (~30 s)
"""

from repro import MCIOConfig, MemoryConsciousCollectiveIO, ross13_testbed
from repro.cluster import MIB
from repro.core.tuning import (
    measure_node_throughput,
    measure_system_throughput,
    tune,
    tune_node,
    tune_system,
)
from repro.experiments.harness import Platform, run_collective
from repro.workloads import IORWorkload


def show_node_sweep(spec):
    print("single-node sweep (throughput, GiB/s):")
    msg_sizes = [1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB]
    header = "  aggs " + "".join(f"{m // MIB:>9d}MiB" for m in msg_sizes)
    print(header)
    for nah in (1, 2, 4, 8):
        row = f"  {nah:4d} "
        for msg in msg_sizes:
            t = measure_node_throughput(spec, nah, msg)
            row += f"{t / 2**30:12.2f}"
        print(row)


def show_system_sweep(spec, nah, msg_ind):
    print("\nsystem-level sweep (aggregating nodes -> aggregate GiB/s):")
    for k in (1, 2, 4, 6, 8):
        t, std = measure_system_throughput(spec, k, nah, msg_ind)
        print(f"  {k:2d} nodes: {t / 2**30:6.2f} GiB/s  (finish spread {std * 1e3:.2f} ms)")


def main():
    spec = ross13_testbed(nodes=10)
    print(f"platform: {spec.name} — NIC {spec.node.nic_bandwidth / 1e9:.1f} GB/s, "
          f"{spec.storage.servers} servers x "
          f"{spec.storage.server_bandwidth / 1e6:.0f} MB/s\n")

    show_node_sweep(spec)
    node = tune_node(spec)
    print(f"\n=> N_ah = {node.nah}, Msg_ind = {node.msg_ind // MIB} MiB, "
          f"Mem_min = {node.mem_min // MIB} MiB/aggregator "
          f"({node.node_mem_min // MIB} MiB/node), "
          f"node throughput {node.throughput / 2**30:.2f} GiB/s")

    show_system_sweep(spec, node.nah, node.msg_ind)
    system = tune_system(spec, node.nah, node.msg_ind)
    print(f"\n=> Msg_group = {system.msg_group // MIB} MiB "
          f"({system.agg_nodes} aggregating nodes saturate the storage)")

    config = tune(spec, cb_buffer_size=16 * MIB)
    print(f"\ntuned MCIO config: msg_group={config.msg_group // MIB} MiB, "
          f"msg_ind={config.msg_ind // MIB} MiB, mem_min={config.mem_min // MIB} MiB, "
          f"nah={config.nah}")

    # use the tuned configuration on an IOR workload under memory variance
    from repro import TwoPhaseCollectiveIO, TwoPhaseConfig

    workload = IORWorkload(n_ranks=120, block_size=1 * MIB, segments=4)

    def measure(engine_factory, label):
        platform = Platform.build(spec, workload.n_ranks, seed=1)
        platform.cluster.sample_memory_availability(16 * MIB, 50 * MIB)
        engine = engine_factory(platform)
        stats = run_collective(platform, engine, workload.patterns(),
                               ops=("write",))[0]
        print(f"  {label}: {stats.summary()}")
        return stats

    print(f"\n{workload.description} under availability ~ N(16 MiB, 50 MiB):")
    base = measure(
        lambda p: TwoPhaseCollectiveIO(
            p.comm, p.pfs, TwoPhaseConfig(cb_buffer_size=16 * MIB)
        ),
        "two-phase baseline",
    )
    mcio = measure(
        lambda p: MemoryConsciousCollectiveIO(p.comm, p.pfs, config),
        "tuned MCIO        ",
    )
    print(f"  tuned MCIO is {mcio.bandwidth / base.bandwidth:.2f}x the baseline")
    # Note: the paper tunes on a healthy system and remarks that optimal
    # values "correlate with the I/O pattern of a particular application";
    # under heavy memory variance the figure experiments use larger
    # msg_group / N_ah than this healthy-node tuning suggests.


if __name__ == "__main__":
    main()
