#!/usr/bin/env python
"""Climate-model checkpoint/restart with collective I/O.

The motivating workload of the paper's introduction: a simulation
periodically dumps a 3D block-distributed field to a shared file
(checkpoint) and must read it back on restart.  Memory available for I/O
buffers varies across nodes because the application itself consumes
different amounts per node.

This example runs three checkpoint epochs with both collective-I/O
strategies on a 10-node / 120-rank platform, verifies the restart data
byte-for-byte, and reports per-checkpoint time.

Run:  python examples/climate_checkpoint.py   (~1 minute)
"""

import numpy as np

from repro import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    ParallelFileSystem,
    SimComm,
    SparseFile,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
    block_placement,
    ross13_testbed,
    subarray_view_3d,
)
from repro.cluster import Cluster, MIB
from repro.mpi import block_decompose_3d
from repro.sim import Environment, RngFactory
from repro.workloads import CollPerfWorkload

FIELD = (96, 96, 96)  # global grid (small enough for byte-accurate mode)
ELEM = 8  # double precision
N_RANKS = 120
EPOCHS = 3
BUFFER = 8 * MIB


def build(seed):
    spec = ross13_testbed(nodes=10)
    env = Environment()
    cluster = Cluster(env, spec, RngFactory(seed))
    comm = SimComm(env, cluster, block_placement(N_RANKS, 10, 12))
    pfs = ParallelFileSystem(env, spec.storage, datastore=SparseFile())
    # application memory use varies by node; mean matches the I/O buffer
    cluster.sample_memory_availability(mean_bytes=BUFFER, sigma_bytes=50 * MIB)
    return env, cluster, comm, pfs


def field_state(rank, shape, epoch):
    """The rank's slab of the field at a given epoch (deterministic)."""
    n = int(np.prod(shape)) * ELEM
    idx = np.arange(n, dtype=np.int64)
    return ((idx * 13 + rank * 101 + epoch * 7) % 251).astype(np.uint8)


def run_strategy(name, seed=0):
    env, cluster, comm, pfs = build(seed)
    blocks = block_decompose_3d(FIELD, N_RANKS)
    if name == "two-phase":
        engine = TwoPhaseCollectiveIO(comm, pfs, TwoPhaseConfig(cb_buffer_size=BUFFER))
    else:
        engine = MemoryConsciousCollectiveIO(
            comm, pfs,
            MCIOConfig(msg_group=2 * MIB, msg_ind=1 * MIB, mem_min=0, nah=2,
                       cb_buffer_size=BUFFER, min_buffer=64 * 1024),
        )

    def simulation(ctx):
        starts, shape = blocks[ctx.rank]
        view = subarray_view_3d(FIELD, shape, starts, ELEM)
        for epoch in range(EPOCHS):
            # ... compute phase would go here ...
            state = field_state(ctx.rank, shape, epoch)
            yield from engine.write(ctx, view, state.copy())  # checkpoint
        # restart: read the last checkpoint back and verify
        restored = yield from engine.read(ctx, view)
        expected = field_state(ctx.rank, shape, EPOCHS - 1)
        return bool((restored == expected).all())

    results = comm.run_spmd(simulation)
    assert all(results), f"{name}: restart verification failed"
    checkpoints = [s for s in engine.history if s.op == "write"]
    restart = [s for s in engine.history if s.op == "read"][0]
    return checkpoints, restart


def main():
    total_mib = (np.prod(FIELD) * ELEM) / MIB
    print(f"climate checkpoint: {FIELD} x {ELEM} B field "
          f"({total_mib:.0f} MiB) on {N_RANKS} ranks, {EPOCHS} epochs")
    print(f"aggregation buffer {BUFFER // MIB} MiB; "
          f"per-node availability ~ N(buffer, 50 MiB)\n")
    summary = {}
    for name in ("two-phase", "mcio"):
        checkpoints, restart = run_strategy(name)
        ckpt_s = sum(s.elapsed for s in checkpoints) / len(checkpoints)
        paged = max(s.paged_aggregators for s in checkpoints)
        print(f"{name}:")
        for i, s in enumerate(checkpoints):
            print(f"  checkpoint {i}: {s.elapsed * 1e3:8.1f} ms "
                  f"({s.bandwidth_mib:7.1f} MiB/s)")
        print(f"  restart read: {restart.elapsed * 1e3:8.1f} ms "
              f"({restart.bandwidth_mib:7.1f} MiB/s)")
        print(f"  paged aggregators: {paged}; restart data verified OK\n")
        summary[name] = ckpt_s
    speedup = summary["two-phase"] / summary["mcio"]
    print(f"memory-conscious checkpointing is {speedup:.2f}x faster per epoch")


if __name__ == "__main__":
    main()
