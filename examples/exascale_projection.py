#!/usr/bin/env python
"""Collective I/O across the exascale memory-per-core collapse.

Table 1 of the paper projects memory per core falling from ~2 GB (2010)
to ~10 MB (2018 exascale) while total concurrency grows 4444x.  This
example holds the workload and the collective-buffer size fixed and
sweeps the *available memory per core* across that collapse, comparing
normal two-phase collective I/O with the memory-conscious strategy at
each point — the paper's argument in one table.

Run:  python examples/exascale_projection.py   (~1 minute)
"""

import numpy as np

from repro import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
    ross13_testbed,
)
from repro.cluster import MIB
from repro.experiments.harness import Platform, run_collective
from repro.experiments.report import format_table, improvement_pct
from repro.experiments.table1 import render_table1
from repro.workloads import IORWorkload

N_NODES = 16
CORES = 12
N_RANKS = N_NODES * CORES
BUFFER = 16 * MIB
#: available memory per core swept across the Table 1 collapse
MEM_PER_CORE_MIB = [256, 64, 16, 4, 2]


def run_era(mem_per_core_mib: int, strategy: str, seed: int = 0):
    spec = ross13_testbed(nodes=N_NODES)
    workload = IORWorkload(n_ranks=N_RANKS, block_size=1 * MIB, segments=2)
    platform = Platform.build(spec, N_RANKS, seed=seed)
    # per-node availability: cores x per-core budget, +-50% spread across
    # nodes (the variance Table 1's shared-memory nodes imply)
    mean = mem_per_core_mib * MIB * CORES
    platform.cluster.sample_memory_availability(
        mean_bytes=mean, sigma_bytes=0.5 * mean
    )
    if strategy == "two-phase":
        engine = TwoPhaseCollectiveIO(
            platform.comm, platform.pfs, TwoPhaseConfig(cb_buffer_size=BUFFER)
        )
    else:
        engine = MemoryConsciousCollectiveIO(
            platform.comm,
            platform.pfs,
            MCIOConfig(
                msg_group=96 * MIB, msg_ind=16 * MIB, mem_min=0, nah=4,
                cb_buffer_size=BUFFER, min_buffer=1 * MIB,
            ),
        )
    stats = run_collective(platform, engine, workload.patterns(), ops=("write",))[0]
    return stats


def main():
    print(render_table1())
    print()
    print(
        f"collective write, {N_RANKS} ranks on {N_NODES} nodes, "
        f"{BUFFER // MIB} MiB collective buffers, IOR 2 MiB/proc\n"
    )
    rows = []
    for mpc in MEM_PER_CORE_MIB:
        base = run_era(mpc, "two-phase")
        mcio = run_era(mpc, "mcio")
        rows.append(
            (
                f"{mpc} MiB/core",
                f"{base.bandwidth_mib:.0f}",
                f"{base.paged_aggregators}/{base.n_aggregators}",
                f"{mcio.bandwidth_mib:.0f}",
                f"{mcio.paged_aggregators}/{mcio.n_aggregators}",
                f"{improvement_pct(base.bandwidth_mib, mcio.bandwidth_mib):+.0f}%",
            )
        )
    print(
        format_table(
            [
                "available memory",
                "two-phase MiB/s",
                "paged",
                "MCIO MiB/s",
                "paged",
                "improvement",
            ],
            rows,
            title="From petascale-era memory to the exascale collapse:",
        )
    )
    print(
        "\nAs memory per core collapses toward the exascale projection, the\n"
        "memory-oblivious baseline degrades while memory-conscious placement\n"
        "holds on — the paper's scalability argument.  (Past this point the\n"
        "fixed 16 MiB collective buffer no longer fits a node at all; a\n"
        "deployment would shrink cb_buffer_size along with the memory.)"
    )


if __name__ == "__main__":
    main()
