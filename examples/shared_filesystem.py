#!/usr/bin/env python
"""Three staggered jobs sharing one parallel file system.

A production PFS never serves one application at a time.  This example
submits three tenant jobs — two checkpoint writers and a reader,
arriving seconds apart on overlapping node sets — to a single
:class:`~repro.tenancy.TenancyHost`: one simulated clock, one cluster,
one striped file system, three independent communicators and engines.
The shuffle traffic and storage requests of all three meet in the same
NIC and OST queues, so the interference is simulated rather than
assumed.

Each job is then re-run *alone* on an identical platform
(:func:`~repro.tenancy.run_isolated`) to get its contention-free
baseline, and the script prints the per-job slowdown (shared elapsed /
isolated elapsed), the Jain fairness index over those slowdowns, and
the aggregate PFS utilization — once for the free-for-all baseline and
once under the OST-aware admission throttle, so the fairness/makespan
trade is visible side by side.

Run:  python examples/shared_filesystem.py   (a couple of seconds)
"""

from repro import ClusterSpec, NodeSpec, StorageSpec
from repro.tenancy import (
    FairnessReport,
    FreeForAll,
    OstThrottle,
    TenancyHost,
    TenantJob,
    run_isolated,
)

N_NODES = 8
RANKS_PER_JOB = 4
BLOCK = 256 * 1024  # bytes per rank per step
STEPS = 3


def make_spec() -> ClusterSpec:
    return ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(
            cores=1,
            memory_bytes=10**9,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e6,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=5e5,
            request_overhead=1e-3,
            stripe_size=64 * 1024,
        ),
    )


def make_jobs() -> list[TenantJob]:
    """Two writers and a reader, staggered, on overlapping node sets."""
    region = RANKS_PER_JOB * BLOCK
    return [
        TenantJob(
            name=f"job{j}",
            # striped: job j's ranks start at node j, so neighbours
            # co-locate and contend for node memory and NICs
            placement=[(j + i) % N_NODES for i in range(RANKS_PER_JOB)],
            arrival=j * 0.4,
            op="read" if j == 2 else "write",
            steps=STEPS,
            block=BLOCK,
            offset=j * region,
            payload_seed=j,
        )
        for j in range(3)
    ]


def contended_run(policy):
    host = TenancyHost(make_spec(), seed=0, policy=policy)
    for job in make_jobs():
        host.submit(job)
    records = host.run()
    baselines = [run_isolated(make_spec(), job, seed=0) for job in make_jobs()]
    return records, FairnessReport.build(records, baselines, host.pfs_bandwidth)


def show(records, report) -> None:
    print(f"  {'job':<6} {'op':<5} {'arrived':>8} {'waited':>8} "
          f"{'elapsed':>8} {'slowdown':>9}")
    for record, slowdown in zip(records, report.slowdowns):
        print(f"  {record.name:<6} {record.op:<5} {record.arrived:>7.2f}s "
              f"{record.wait:>7.2f}s {record.elapsed:>7.2f}s {slowdown:>8.3f}x")
    print(f"  Jain fairness {report.jain:.4f} | makespan "
          f"{report.makespan:.2f}s | PFS utilization "
          f"{report.pfs_utilization:.1%}")


def main() -> None:
    print(f"{len(make_jobs())} tenant jobs, {RANKS_PER_JOB} ranks each, "
          f"sharing {N_NODES} nodes / 4 OSTs\n")
    for policy in (FreeForAll(), OstThrottle()):
        records, report = contended_run(policy)
        print(f"policy: {policy.name}")
        show(records, report)
        print()
    print("slowdown = shared elapsed / same job alone on an idle platform;")
    print("waiting time is the admission policy's doing and is reported")
    print("separately, so fairness compares pure contention.")


if __name__ == "__main__":
    main()
