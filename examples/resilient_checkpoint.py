#!/usr/bin/env python
"""A checkpoint that survives faults injected mid-write.

A 12-rank application dumps an interleaved checkpoint while the platform
misbehaves underneath it:

* one I/O server goes dark for a window (``server_outage``) — the PFS
  client's :class:`~repro.pfs.RetryPolicy` absorbs the rejections with
  capped exponential backoff;
* the host of a live aggregator fails (``node_failure``) — between
  collective-buffer rounds the engine re-places the orphaned file domain
  on a healthy node and carries on.

The checkpoint is then read back and verified byte-for-byte, and the
operation's degraded-mode counters (retries, failovers, tier) are
printed.  The same seed always replays the same storm.

Run:  python examples/resilient_checkpoint.py   (a few seconds)
"""

import numpy as np

from repro import (
    Cluster,
    ClusterSpec,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    NodeSpec,
    ParallelFileSystem,
    RetryPolicy,
    SimComm,
    SparseFile,
    StorageSpec,
    StridedSegment,
    block_placement,
)
from repro.core.request import AccessPattern
from repro.sim import Environment, RngFactory

KIB = 1024
MIB = 1024 * 1024

N_RANKS = 12
N_NODES = 3
CHUNK = 64 * KIB
PER_RANK = 1 * MIB  # checkpoint bytes per rank


def build(seed=0):
    """A deliberately memory-tight platform: multi-round collectives."""
    spec = ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(
            cores=4,
            memory_bytes=4 * MIB,
            memory_bandwidth=10**8,
            memory_channels=2,
            nic_bandwidth=10**7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=10**6,
            request_overhead=1e-3,
            stripe_size=256,
        ),
        paging_penalty=4.0,
    )
    env = Environment()
    cluster = Cluster(env, spec, RngFactory(seed))
    comm = SimComm(env, cluster, block_placement(N_RANKS, N_NODES, 4))
    pfs = ParallelFileSystem(env, spec.storage, datastore=SparseFile())
    # degraded-mode client policy: absorb outage windows instead of
    # crashing the collective
    pfs.retry = RetryPolicy(
        request_timeout=30.0, backoff_base=0.01, backoff_cap=0.2,
        max_retries=25,
    )
    return env, cluster, comm, pfs


def storm():
    """The injected faults: a server outage, then an aggregator host dies."""
    return FaultSchedule(
        [
            FaultEvent(time=0.4, kind="server_outage", target=0, duration=0.3),
            FaultEvent(time=0.8, kind="node_failure", target=0, magnitude=16.0),
        ]
    )


def checkpoint_pattern(rank):
    """Interleaved (coll_perf-style) checkpoint layout."""
    return AccessPattern(
        (StridedSegment(rank * CHUNK, CHUNK, N_RANKS * CHUNK,
                        PER_RANK // CHUNK),)
    )


def payload_for(rank):
    idx = np.arange(PER_RANK, dtype=np.int64)
    return ((idx * 31 + rank * 97 + 13) % 251).astype(np.uint8)


def main():
    env, cluster, comm, pfs = build(seed=0)
    engine = MemoryConsciousCollectiveIO(
        comm, pfs,
        MCIOConfig(
            cb_buffer_size=64 * KIB, msg_ind=4 * MIB, mem_min=0, nah=4,
            failover=True, fallback_chain=True,
        ),
    )
    injector = FaultInjector(env, cluster, pfs, storm())
    injector.start()
    payloads = {r: payload_for(r) for r in range(N_RANKS)}

    def writer(ctx):
        yield from engine.write(
            ctx, checkpoint_pattern(ctx.rank), payloads[ctx.rank].copy()
        )

    comm.run_spmd(writer)
    injector.stop()
    write_stats = engine.history[-1]

    print("checkpoint written under:")
    for ev in storm():
        window = "permanent" if ev.duration is None else f"{ev.duration}s"
        print(f"  t={ev.time}s  {ev.kind} on #{ev.target} ({window})")
    print(f"\n  {write_stats.summary()}")
    targets = write_stats.extra.get("failover_targets", [])
    if targets:
        hosts = sorted({comm.placement[r] for r in targets})
        print(f"  orphaned domains re-placed onto node(s) {hosts}")

    # restart: read the checkpoint back — node 0 is still limping, so the
    # planner soft-excludes it — and verify every byte
    def reader(ctx):
        data = yield from engine.read(ctx, checkpoint_pattern(ctx.rank))
        return data

    results = comm.run_spmd(reader)
    for rank in range(N_RANKS):
        np.testing.assert_array_equal(
            results[rank], payloads[rank],
            err_msg=f"rank {rank} restart data corrupt",
        )
    print(f"\n  restart verified: {N_RANKS} ranks x {PER_RANK // MIB} MiB, "
          "every byte intact")
    assert write_stats.io_retries > 0, "expected outage-window retries"
    assert write_stats.failovers > 0, "expected an aggregator failover"


if __name__ == "__main__":
    main()
