#!/usr/bin/env python
"""Quickstart: collective I/O on a simulated cluster, end to end.

Builds a 3-node / 12-rank platform with a byte-accurate parallel file
system, then:

1. runs the paper's Figure 2 scenario — six processes performing a
   collective read through two aggregators — and prints the two-phase
   trace;
2. performs a collective *write* of twelve interleaved rank buffers,
   verifies every byte landed at the right file offset, reads it back
   collectively, and verifies the round trip;
3. repeats the write with Memory-Conscious Collective I/O under a
   heterogeneous memory landscape and compares the two strategies.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cluster,
    ClusterSpec,
    MemoryConsciousCollectiveIO,
    MCIOConfig,
    NodeSpec,
    ParallelFileSystem,
    SimComm,
    SparseFile,
    StorageSpec,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
    block_placement,
    vector_view,
)
from repro.sim import Environment, RngFactory

KIB = 1024


def build_platform(n_ranks=12, n_nodes=3, seed=7, server_bandwidth=1e7,
                   paging_penalty=4.0):
    """A small cluster + MPI runtime + byte-accurate PFS."""
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=64 * KIB,
            memory_bandwidth=1e9,
            memory_channels=2,
            nic_bandwidth=1e8,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=server_bandwidth,
            request_overhead=1e-3,
            stripe_size=1 * KIB,
        ),
        paging_penalty=paging_penalty,
    )
    cluster = Cluster(env, spec, RngFactory(seed))
    comm = SimComm(env, cluster, block_placement(n_ranks, n_nodes, 4))
    pfs = ParallelFileSystem(env, spec.storage, datastore=SparseFile())
    return env, cluster, comm, pfs


def figure2_trace():
    """The paper's Figure 2: six readers, two aggregators, two phases."""
    print("=" * 72)
    print("Figure 2 — two-phase collective read, 6 processes, 2 aggregators")
    print("=" * 72)
    env, cluster, comm, pfs = build_platform(n_ranks=6, n_nodes=2)
    # pre-populate the file: 6 KiB, rank r owns [r*1024, (r+1)*1024)
    file_bytes = np.arange(6 * KIB, dtype=np.int64) % 251
    pfs.datastore.write(0, file_bytes.astype(np.uint8))

    engine = TwoPhaseCollectiveIO(comm, pfs, TwoPhaseConfig(cb_buffer_size=4 * KIB))

    def reader(ctx):
        from repro import contiguous_view

        pattern = contiguous_view(ctx.rank * KIB, KIB)
        data = yield from engine.read(ctx, pattern)
        return data

    results = comm.run_spmd(reader)
    stats = engine.history[0]
    print(f"I/O phase + communication phase completed at t={stats.elapsed * 1e3:.2f} ms")
    print(f"aggregators (one per node): ranks {stats.aggregator_ranks}")
    print(
        f"shuffle: {stats.shuffle_intra_node_bytes} B intra-node, "
        f"{stats.shuffle_inter_node_bytes} B inter-node"
    )
    ok = all(
        (results[r] == file_bytes[r * KIB : (r + 1) * KIB].astype(np.uint8)).all()
        for r in range(6)
    )
    print(f"every rank received its bytes: {'OK' if ok else 'CORRUPT'}")
    assert ok


def interleaved_roundtrip():
    """Collective write + read of interleaved rank data, verified."""
    print()
    print("=" * 72)
    print("Interleaved collective write/read round trip, 12 ranks")
    print("=" * 72)
    env, cluster, comm, pfs = build_platform()
    engine = TwoPhaseCollectiveIO(comm, pfs, TwoPhaseConfig(cb_buffer_size=4 * KIB))
    n = comm.size
    block = 512
    payloads = {
        r: ((np.arange(block * 4) * 31 + r * 97) % 251).astype(np.uint8)
        for r in range(n)
    }

    def pattern_of(rank):
        # rank r owns block k at (k*n + r) * block -- an IOR interleave
        return vector_view(offset=rank * block, count=4, block=block,
                           stride=n * block)

    def writer(ctx):
        yield from engine.write(ctx, pattern_of(ctx.rank),
                                payloads[ctx.rank].copy())

    comm.run_spmd(writer)

    # verify directly against the file: block k of rank r
    for r in range(n):
        for k in range(4):
            offset = (k * n + r) * block
            expected = payloads[r][k * block : (k + 1) * block]
            assert (pfs.datastore.read(offset, block) == expected).all()
    print("file contents verified block-by-block: OK")

    def reader(ctx):
        return (yield from engine.read(ctx, pattern_of(ctx.rank)))

    results = comm.run_spmd(reader)
    assert all((results[r] == payloads[r]).all() for r in range(n))
    print("collective read round trip verified: OK")
    for stats in engine.history:
        print(f"  {stats.summary()}")


def strategy_comparison():
    """Two-phase vs memory-conscious under heterogeneous memory."""
    print()
    print("=" * 72)
    print("Strategy comparison under memory pressure (one node starved)")
    print("=" * 72)
    results = {}
    for strategy in ("two-phase", "mcio"):
        # fast storage + swap-like paging so memory placement is what
        # differentiates the strategies
        env, cluster, comm, pfs = build_platform(
            server_bandwidth=1e9, paging_penalty=32.0
        )
        # node 0 has almost no free memory; the others are fine
        cluster.set_memory_availability([256, 48 * KIB, 48 * KIB])
        if strategy == "two-phase":
            engine = TwoPhaseCollectiveIO(
                comm, pfs, TwoPhaseConfig(cb_buffer_size=8 * KIB)
            )
        else:
            engine = MemoryConsciousCollectiveIO(
                comm, pfs,
                MCIOConfig(msg_group=1 << 30, msg_ind=8 * KIB, mem_min=0,
                           nah=2, cb_buffer_size=8 * KIB, min_buffer=256),
            )

        def writer(ctx):
            from repro import contiguous_view

            pattern = contiguous_view(ctx.rank * 16 * KIB, 16 * KIB)
            payload = np.full(16 * KIB, ctx.rank, dtype=np.uint8)
            yield from engine.write(ctx, pattern, payload)

        comm.run_spmd(writer)
        results[strategy] = engine.history[0]

    for strategy, stats in results.items():
        print(
            f"  {strategy:10s}: {stats.bandwidth_mib:8.2f} MiB/s, "
            f"{stats.paged_aggregators} paged aggregator(s), "
            f"aggregators on ranks {stats.aggregator_ranks}"
        )
    base, mcio = results["two-phase"], results["mcio"]
    print(
        f"  memory-conscious placement avoided the starved node and ran "
        f"{mcio.bandwidth / base.bandwidth:.2f}x faster"
    )


if __name__ == "__main__":
    figure2_trace()
    interleaved_roundtrip()
    strategy_comparison()
