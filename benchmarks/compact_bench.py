"""Compact benchmark records + warn-only regression comparison.

pytest-benchmark's ``--benchmark-json`` output runs to ~1 MB per
trajectory point (machine info, every raw timing sample).  Committing
that per PR bloats the repo for four numbers per benchmark, so the CI
pipeline keeps the full file as a build artifact only and commits a
compact form::

    python benchmarks/compact_bench.py compact BENCH_FULL.json -o BENCH_6.json

which keeps just ``{name, median, stddev, rounds}`` per benchmark, plus
the source's datetime and a ``machine`` stamp (host name and core
count, lifted from pytest-benchmark's own ``machine_info``) for
provenance.  The companion subcommand::

    python benchmarks/compact_bench.py compare BENCH_3.json BENCH_6.json --markdown

prints a median-vs-median table (optionally GitHub-flavoured markdown
for ``$GITHUB_STEP_SUMMARY``) and flags regressions beyond a threshold.
Both subcommands accept either the full pytest-benchmark format or the
compact one, so older full-format trajectory files keep comparing.
The compare step is *warn-only* by design — timing on shared CI runners
is noisy — so its exit status is 0 unless inputs are malformed; CI
surfaces regressions in the job summary instead of failing the build.

A third subcommand::

    python benchmarks/compact_bench.py overhead BENCH_FULL.json

checks the observability subsystem's zero-cost-when-disabled claim: the
event-loop chain with a disabled tracer installed must stay within 5% of
the bare chain from the same run (also warn-only).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Median slowdowns beyond this ratio are annotated as regressions.
DEFAULT_THRESHOLD = 1.25


def _machine_label(data: dict) -> dict | None:
    """``{node, cpu_count}`` from a full file's ``machine_info`` or a
    compact file's own ``machine`` stamp; None when the source carries
    neither (old trajectory points predate the stamp)."""
    if isinstance(data.get("machine"), dict):
        return data["machine"]
    info = data.get("machine_info")
    if not isinstance(info, dict):
        return None
    cpu = info.get("cpu")
    count = cpu.get("count") if isinstance(cpu, dict) else None
    label = {"node": info.get("node"), "cpu_count": count}
    return label if any(v is not None for v in label.values()) else None


def load_records(path: Path) -> dict:
    """Read `path` (full pytest-benchmark or compact form) → compact dict.

    Returns ``{"datetime": ..., "benchmarks": [{name, median, stddev,
    rounds}, ...]}`` with benchmarks sorted by name, plus a ``machine``
    stamp when the source identifies one.
    """
    with path.open() as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise ValueError(f"{path}: not a benchmark file (no 'benchmarks' key)")
    records = []
    for bench in data["benchmarks"]:
        stats = bench.get("stats", bench)  # full form nests, compact doesn't
        try:
            records.append(
                {
                    "name": bench["name"],
                    "median": float(stats["median"]),
                    "stddev": float(stats["stddev"]),
                    "rounds": int(stats["rounds"]),
                }
            )
        except KeyError as exc:
            raise ValueError(f"{path}: benchmark entry missing {exc}") from exc
    records.sort(key=lambda r: r["name"])
    compact = {"datetime": data.get("datetime"), "benchmarks": records}
    machine = _machine_label(data)
    if machine is not None:
        compact["machine"] = machine
    return compact


def cmd_compact(args: argparse.Namespace) -> int:
    compact = load_records(args.input)
    text = json.dumps(compact, indent=2, sort_keys=True) + "\n"
    if args.output is None:
        sys.stdout.write(text)
    else:
        args.output.write_text(text)
        full_kb = args.input.stat().st_size // 1024
        print(
            f"wrote {args.output} ({len(compact['benchmarks'])} benchmarks, "
            f"{len(text) // 1024} KiB, from {full_kb} KiB full output)"
        )
    return 0


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def compare_records(old: dict, new: dict, threshold: float) -> list[dict]:
    """Median-vs-median comparison rows, one per benchmark name."""
    old_by_name = {r["name"]: r for r in old["benchmarks"]}
    new_by_name = {r["name"]: r for r in new["benchmarks"]}
    rows = []
    for name in sorted(old_by_name.keys() | new_by_name.keys()):
        o, n = old_by_name.get(name), new_by_name.get(name)
        if o is None or n is None:
            rows.append(
                {"name": name, "old": o, "new": n, "ratio": None,
                 "status": "added" if o is None else "removed"}
            )
            continue
        ratio = n["median"] / o["median"] if o["median"] > 0 else float("inf")
        if ratio > threshold:
            status = "regressed"
        elif ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            {"name": name, "old": o, "new": n, "ratio": ratio, "status": status}
        )
    return rows


_STATUS_MARK = {
    "ok": "·", "improved": "✓", "regressed": "⚠", "added": "+", "removed": "−",
}


def render_table(rows: list[dict], markdown: bool) -> str:
    lines = []
    if markdown:
        lines.append("| benchmark | old median | new median | ratio | status |")
        lines.append("|---|---|---|---|---|")
    for row in rows:
        old = _fmt_seconds(row["old"]["median"]) if row["old"] else "—"
        new = _fmt_seconds(row["new"]["median"]) if row["new"] else "—"
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "—"
        mark = _STATUS_MARK[row["status"]]
        if markdown:
            lines.append(
                f"| `{row['name']}` | {old} | {new} | {ratio} "
                f"| {mark} {row['status']} |"
            )
        else:
            lines.append(
                f"{mark} {row['name']:<40} {old:>10} -> {new:>10} "
                f"{ratio:>8}  {row['status']}"
            )
    return "\n".join(lines)


def machine_mismatch_note(old: dict, new: dict) -> str | None:
    """Warn-only note when two trajectory points come from different
    hosts or core counts — their ratios measure the machines as much as
    the code.  None when either side predates the stamp or they match."""
    mo, mn = old.get("machine"), new.get("machine")
    if not mo or not mn or mo == mn:
        return None

    def fmt(m: dict) -> str:
        cores = m.get("cpu_count")
        return f"{m.get('node') or '?'} ({cores if cores else '?'} cores)"

    return (
        f"note: trajectory points come from different machines — "
        f"{fmt(mo)} vs {fmt(mn)} — so medians may not be directly "
        "comparable (warn-only)"
    )


def cmd_compare(args: argparse.Namespace) -> int:
    if not args.old.exists():
        # first run of a new trajectory point, or the CI cache of the
        # previous BENCH_*.json missed: there is nothing to compare
        # against, which is not an error — the new point still gets
        # committed and the *next* run compares normally.
        print(
            f"no previous trajectory point at {args.old} — skipping "
            "comparison (first run or cache miss)"
        )
        return 0
    old = load_records(args.old)
    new = load_records(args.new)
    rows = compare_records(old, new, args.threshold)
    regressed = [r for r in rows if r["status"] == "regressed"]
    if args.markdown:
        print("### Benchmark medians vs previous trajectory point\n")
    print(render_table(rows, markdown=args.markdown))
    print()
    note = machine_mismatch_note(old, new)
    if note:
        print(note)
    if regressed:
        names = ", ".join(f"`{r['name']}`" for r in regressed)
        print(
            f"{'⚠ ' if args.markdown else ''}"
            f"{len(regressed)} benchmark(s) slower than {args.threshold:.2f}x "
            f"the previous median: {names} (warn-only; timing noise on "
            "shared runners is expected)"
        )
    else:
        print(f"no median regressions beyond {args.threshold:.2f}x")
    return 0


#: The tracer-off chain must stay within this ratio of the bare chain.
OVERHEAD_THRESHOLD = 1.05

#: Default (baseline, probe) pair for the overhead gate: the bare event
#: loop vs the same loop with a disabled tracer installed.
OVERHEAD_BASE = "test_event_loop_chain"
OVERHEAD_PROBE = "test_event_loop_chain_tracer_off"


def cmd_overhead(args: argparse.Namespace) -> int:
    """Warn-only zero-cost-when-disabled gate within one benchmark file.

    Compares the probe benchmark's median against the baseline's from the
    *same* run, so runner speed cancels out.  Exit status is 0 unless the
    input is malformed or either benchmark is missing — regressions are
    surfaced as a warning, matching the compare step's philosophy.
    """
    records = {r["name"]: r for r in load_records(args.input)["benchmarks"]}
    base, probe = records.get(args.base), records.get(args.probe)
    if base is None or probe is None:
        missing = args.base if base is None else args.probe
        print(f"{args.input}: no benchmark named {missing!r}", file=sys.stderr)
        return 2
    if base["median"] <= 0:
        print(f"{args.input}: zero baseline median", file=sys.stderr)
        return 2
    ratio = probe["median"] / base["median"]
    line = (
        f"{args.probe}: {_fmt_seconds(probe['median'])} vs "
        f"{args.base}: {_fmt_seconds(base['median'])} "
        f"({ratio:.3f}x, threshold {args.threshold:.2f}x)"
    )
    if ratio > args.threshold:
        print(
            f"⚠ disabled-tracer overhead above threshold — {line} "
            "(warn-only; timing noise on shared runners is expected)"
        )
    else:
        print(f"disabled-tracer overhead ok — {line}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_compact = sub.add_parser(
        "compact", help="strip a pytest-benchmark JSON to its medians"
    )
    p_compact.add_argument("input", type=Path)
    p_compact.add_argument(
        "-o", "--output", type=Path, default=None,
        help="compact JSON destination (default: stdout)",
    )
    p_compact.set_defaults(func=cmd_compact)

    p_compare = sub.add_parser(
        "compare", help="warn-only median comparison of two trajectory points"
    )
    p_compare.add_argument("old", type=Path)
    p_compare.add_argument("new", type=Path)
    p_compare.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"regression ratio to annotate (default {DEFAULT_THRESHOLD})",
    )
    p_compare.add_argument(
        "--markdown", action="store_true",
        help="emit a GitHub-flavoured table for the job summary",
    )
    p_compare.set_defaults(func=cmd_compare)

    p_overhead = sub.add_parser(
        "overhead",
        help="warn-only disabled-tracer overhead check within one file",
    )
    p_overhead.add_argument("input", type=Path)
    p_overhead.add_argument(
        "--base", default=OVERHEAD_BASE,
        help=f"baseline benchmark name (default {OVERHEAD_BASE})",
    )
    p_overhead.add_argument(
        "--probe", default=OVERHEAD_PROBE,
        help=f"probe benchmark name (default {OVERHEAD_PROBE})",
    )
    p_overhead.add_argument(
        "--threshold", type=float, default=OVERHEAD_THRESHOLD,
        help=f"overhead ratio to warn at (default {OVERHEAD_THRESHOLD})",
    )
    p_overhead.set_defaults(func=cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
