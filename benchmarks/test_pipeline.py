"""Benchmark: persistent & pipelined collective I/O sweep.

Tracks the pipelining extension end to end: mode x regime x op with
cross-mode datastore verification.  The acceptance number is the
variance-regime speedup — persistent+overlap vs the back-to-back
blocking loop — which the half-slot double buffering must keep at or
above 1.3x (shuffle on the rich nodes' ingress overlapping drains on
their egress).
"""

from repro.experiments import pipeline


def test_pipeline_sweep(once):
    result = once(lambda: pipeline.run(seed=0))
    by_key = {(p.regime, p.mode, p.op): p for p in result.points}

    # the headline: concentrated aggregators turn overlap into time
    for op in ("write", "read"):
        ov = by_key[("variance", "persistent+overlap", op)]
        assert result.speedup(ov) >= 1.3
        assert ov.overlapped > 0
        assert ov.replans == 1
    # plan reuse alone must never lose time vs the blocking loop
    for regime in ("uniform", "variance"):
        for op in ("write", "read"):
            noov = by_key[(regime, "persistent", op)]
            assert result.speedup(noov) >= 1.0 or abs(
                result.speedup(noov) - 1.0
            ) < 1e-9
