"""Benchmark tier for the node-level vectorized execution mode.

Two cells pin the scaling story on the trajectory:

* the *same* 10^4-rank workload through the vectorized driver — the
  headline cost of simulating a collective at node granularity;
* planning alone at 10^5 ranks over a :class:`PatternArray`, the
  array-speed path the driver depends on.

Run with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=BENCH_FULL.json

Functional results are asserted so a silent fast-path regression fails
loudly rather than just slowly.
"""

from repro.cluster import MIB
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.pattern_array import PatternArray
from repro.core.vectorized import run_vectorized_collective
from repro.experiments.harness import Platform
from repro.experiments.scale_sweep import build_spec

RANKS_PER_NODE = 64
BYTES_PER_RANK = 256 * 1024


def _vec_engine(n_ranks):
    n_nodes = -(-n_ranks // RANKS_PER_NODE)
    platform = Platform.build(build_spec(n_nodes, RANKS_PER_NODE), n_ranks)
    engine = MemoryConsciousCollectiveIO(
        platform.comm,
        platform.pfs,
        MCIOConfig(
            msg_group=1 << 40,
            msg_ind=64 * MIB,
            mem_min=0,
            nah=4,
            cb_buffer_size=64 * MIB,
            min_buffer=1 * MIB,
            execution_mode="vectorized",
        ),
    )
    return engine, PatternArray.tiled(n_ranks, BYTES_PER_RANK)


def test_vectorized_collective_10k(benchmark):
    """One full 10^4-rank collective write at node-level granularity."""
    engine, patterns = _vec_engine(10_000)

    def run():
        stats = run_vectorized_collective(engine, patterns, "write")
        assert stats.execution_mode == "vectorized"
        return stats.total_bytes

    assert benchmark(run) == 10_000 * BYTES_PER_RANK


def test_vectorized_planning_100k(benchmark):
    """Array-speed MCIO planning alone at 10^5 ranks (no execution)."""
    engine, patterns = _vec_engine(100_000)
    avail = {
        node.node_id: node.memory.free_available
        for node in engine.comm.cluster.nodes
    }

    def run():
        (plan, tier, _), _cached = engine._plan_or_reuse(
            patterns, dict(avail), frozenset()
        )
        assert plan is not None and tier is None  # undegraded MCIO plan
        return len(plan.domains)

    assert benchmark(run) > 0
