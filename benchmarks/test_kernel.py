"""Kernel-tier micro-benchmarks for the fast-path optimisations.

Three groups, matching the three optimised layers:

* **event loop** — raw discrete-event throughput of the simulation
  kernel on a long chain of unit delays.  The chain uses
  ``Environment.sleep`` (the pooled, allocation-free fast path) when
  the tree provides it and falls back to ``Environment.timeout`` on
  older trees, so running this same file on an earlier commit measures
  the end-to-end win of the fast path;
* **shuffle round** — one lockstep exchange round (every member sends
  to every aggregator), per simulated message versus pooled into one
  wire transfer per (source node, aggregator node) with a counting
  receive on the aggregator side;
* **remerge-heavy planning** — MCIO planning under memory pressure,
  where aggregator placement restarts repeatedly remerge the partition
  tree and re-query subtree extents.

Run with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=BENCH_2.json

The resulting ``BENCH_2.json`` is the trajectory artifact compared
across PRs; these tests also assert functional results so a silent
fast-path regression fails loudly rather than just slowly.
"""

from repro.cluster import Cluster, ClusterSpec, NodeSpec, StorageSpec, block_placement
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.request import AccessPattern, StridedSegment
from repro.mpi import SimComm
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory


# ---------------------------------------------------------------------------
# event-loop throughput
# ---------------------------------------------------------------------------
def _spin(n_steps):
    env = Environment()

    def ticker(env, n):
        # pooled-sleep fast path where available, plain timeouts otherwise
        delay = getattr(env, "sleep", env.timeout)
        for _ in range(n):
            yield delay(1.0)

    env.process(ticker(env, n_steps))
    env.run()
    return env.now


def test_event_loop_chain(benchmark):
    """A 20k-step chain of unit delays: pure kernel event throughput."""
    assert benchmark(_spin, 20_000) == 20_000.0


def _spin_with_tracer(n_steps, tracer_factory):
    env = Environment()
    tracer_factory().install(env)

    def ticker(env, n):
        delay = getattr(env, "sleep", env.timeout)
        for _ in range(n):
            yield delay(1.0)

    env.process(ticker(env, n_steps))
    env.run()
    return env.now


def test_event_loop_chain_tracer_off(benchmark):
    """The same chain with a *disabled* tracer installed.

    This is the zero-cost-when-disabled claim in benchmark form: every
    instrumentation site guards on ``tracer.enabled``, so the median here
    must track ``test_event_loop_chain`` closely (CI compares the two via
    ``compact_bench.py overhead``, warn-only, 5% threshold).
    """
    from repro.obs import Tracer

    result = benchmark(
        _spin_with_tracer, 20_000, lambda: Tracer(enabled=False)
    )
    assert result == 20_000.0


def test_event_loop_chain_traced(benchmark):
    """The same chain with tracing *enabled* (ring-buffer recording on).

    Not part of the overhead gate — it bounds what enabling tracing
    costs on the kernel's hottest path, for the DESIGN.md numbers.
    """
    from repro.obs import Tracer

    result = benchmark(
        _spin_with_tracer, 20_000, lambda: Tracer(capacity=1024)
    )
    assert result == 20_000.0


# ---------------------------------------------------------------------------
# shuffle round: per-message vs batched granularity
# ---------------------------------------------------------------------------
N_RANKS, N_NODES, CORES = 48, 12, 4


def _shuffle_stack():
    env = Environment()
    spec = ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(
            cores=CORES,
            memory_bytes=10**9,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=1e6,
            request_overhead=1e-3,
            stripe_size=256,
        ),
    )
    cluster = Cluster(env, spec, RngFactory(42))
    comm = SimComm(env, cluster, block_placement(N_RANKS, N_NODES, CORES))
    pfs = ParallelFileSystem(env, spec.storage, datastore=SparseFile())
    return env, comm, pfs


MSG_BYTES = 1024


class _ShuffleRoundBench:
    """One lockstep shuffle round: every member sends to every aggregator.

    This isolates the exchange machinery the fast path targets (the
    O(members x aggregators) message pattern of two-phase I/O) from
    planning, request algebra, and the PFS — those have their own
    benchmarks.  The timed unit is one full round: sends or pooled
    batches, the aggregators' receives, and the closing barrier.
    """

    def __init__(self, mode):
        assert mode in ("per-message", "batched", "intra-node")
        self.mode = mode
        self.env, self.comm, _ = _shuffle_stack()
        #: One aggregator per node: its first rank.
        self.aggs = [self.comm.ranks_on_node(nid)[0] for nid in range(N_NODES)]
        self.round_no = 0

    def run_round(self):
        comm, aggs = self.comm, self.aggs
        agg_set = frozenset(aggs)
        t = self.round_no
        self.round_no += 1
        batched = self.mode == "batched"
        tag = ("sh", t)
        n_senders = comm.size - len(aggs)
        received = [0]

        if self.mode == "intra-node":
            return self._run_intra_node_round(t)

        def main(ctx):
            rank = ctx.rank
            if rank in agg_set:
                if batched:
                    msgs = yield from comm.recv_many(ctx, n_senders, tag=tag)
                    received[0] += len(msgs)
                else:
                    for _ in range(n_senders):
                        yield from comm.recv(ctx, tag=tag)
                        received[0] += 1
            elif batched:
                my_node = comm.node_id_of_rank(rank)
                # same-node aggregators keep the shared-memory path ...
                for agg in aggs:
                    if comm.node_id_of_rank(agg) == my_node:
                        yield from comm.send(ctx, agg, MSG_BYTES, tag=tag)
                # ... and this rank's whole remote fan-out is one deposit:
                # the node's senders pool one staged transfer per
                # destination node
                n_local = sum(
                    1 for r in comm.ranks_on_node(my_node) if r not in agg_set
                )
                remote = [
                    (rank, agg, MSG_BYTES, tag, None)
                    for agg in aggs
                    if comm.node_id_of_rank(agg) != my_node
                ]
                yield from comm.staged_batched_send(
                    ctx, ("sh", t, my_node), n_local, remote
                )
            else:
                for agg in aggs:
                    yield from comm.send(ctx, agg, MSG_BYTES, tag=tag)
            yield from comm.barrier(ctx)

        comm.run_spmd(main)
        return received[0]

    def _run_intra_node_round(self, t):
        """Leader-coalesced variant: one wire message per sender *node*.

        Each node's lowest-ranked sender collects its peers' slices over
        the local fabric and ships a single bundle to every remote
        aggregator; same-node slices still take the shared-memory path.
        The returned count is the number of *represented* per-rank
        messages, so all three modes assert the same logical total.
        """
        comm, aggs = self.comm, self.aggs
        agg_set = frozenset(aggs)
        tag = ("sh", t)
        received = [0]

        def main(ctx):
            rank = ctx.rank
            my_node = comm.node_id_of_rank(rank)
            local = [r for r in comm.ranks_on_node(my_node) if r not in agg_set]
            if rank in agg_set:
                # local slices arrive individually, remote ones as one
                # bundle per sender node
                msgs = yield from comm.recv_many(
                    ctx, len(local) + N_NODES - 1, tag=tag
                )
                received[0] += sum(m.payload or 1 for m in msgs)
                yield from comm.barrier(ctx)
                return
            leader = local[0]
            same_agg = next(
                a for a in aggs if comm.node_id_of_rank(a) == my_node
            )
            yield from comm.send(ctx, same_agg, MSG_BYTES, tag=tag)
            if rank != leader:
                # hand the whole remote fan-out to this node's leader
                yield from comm.send(
                    ctx, leader, MSG_BYTES * (N_NODES - 1), tag=("lead", t)
                )
            else:
                for _ in range(len(local) - 1):
                    yield from comm.recv(ctx, tag=("lead", t))
                for agg in aggs:
                    if comm.node_id_of_rank(agg) != my_node:
                        yield from comm.send(
                            ctx, agg, MSG_BYTES * len(local), tag=tag,
                            payload=len(local),
                        )
            yield from comm.barrier(ctx)

        comm.run_spmd(main)
        return received[0]


def test_shuffle_round_per_message(benchmark):
    """Reference path: one simulated message per (member, aggregator) pair."""
    bench = _ShuffleRoundBench("per-message")
    assert benchmark(bench.run_round) == (N_RANKS - N_NODES) * N_NODES


def test_shuffle_round_batched(benchmark):
    """Fast path: pooled wire transfers + counting receives."""
    bench = _ShuffleRoundBench("batched")
    assert benchmark(bench.run_round) == (N_RANKS - N_NODES) * N_NODES


def test_shuffle_round_intra_node(benchmark):
    """Leader-coalesced round: O(nodes) wire messages instead of O(ranks)."""
    bench = _ShuffleRoundBench("intra-node")
    before = bench.comm.cluster.network.inter_node_messages
    assert benchmark(bench.run_round) == (N_RANKS - N_NODES) * N_NODES
    # per round: each node's leader ships one bundle per remote aggregator
    per_round = N_NODES * (N_NODES - 1)
    total = bench.comm.cluster.network.inter_node_messages - before
    assert total % per_round == 0


# ---------------------------------------------------------------------------
# remerge-heavy planning
# ---------------------------------------------------------------------------
def test_remerge_heavy_planning(benchmark):
    """MCIO planning under memory pressure: placement restarts + remerges."""
    n_ranks, n_nodes, cores = 64, 8, 8
    env = Environment()
    spec = ClusterSpec(nodes=n_nodes, node=NodeSpec(cores=cores))
    cluster = Cluster(env, spec, RngFactory(0))
    comm = SimComm(env, cluster, block_placement(n_ranks, n_nodes, cores))
    pfs = ParallelFileSystem(env, spec.storage)
    engine = MemoryConsciousCollectiveIO(
        comm,
        pfs,
        MCIOConfig(
            msg_group=1 << 22,
            msg_ind=1 << 14,  # fine leaves: deep trees, many remerges
            mem_min=0,
            nah=2,
            min_buffer=1,
        ),
    )
    block = 1 << 13
    stride = block * n_ranks
    patterns = [
        AccessPattern((StridedSegment(r * block, block, stride, 16),))
        for r in range(n_ranks)
    ]
    # skewed availability forces placement restarts (and thus remerging)
    avail = {i: (1 << 16) if i % 2 else (1 << 24) for i in range(n_nodes)}

    def run():
        return len(engine.plan(patterns, dict(avail)).domains)

    assert benchmark(run) > 0


# ---------------------------------------------------------------------------
# plan cache: cold planning vs signature-keyed reuse
# ---------------------------------------------------------------------------
def _planning_workload(plan_cache):
    """The remerge-heavy setup above, routed through the plan cache."""
    n_ranks, n_nodes, cores = 64, 8, 8
    env = Environment()
    spec = ClusterSpec(nodes=n_nodes, node=NodeSpec(cores=cores))
    cluster = Cluster(env, spec, RngFactory(0))
    comm = SimComm(env, cluster, block_placement(n_ranks, n_nodes, cores))
    pfs = ParallelFileSystem(env, spec.storage)
    engine = MemoryConsciousCollectiveIO(
        comm,
        pfs,
        MCIOConfig(
            msg_group=1 << 22,
            msg_ind=1 << 14,
            mem_min=0,
            nah=2,
            min_buffer=1,
            plan_cache=plan_cache,
        ),
    )
    block = 1 << 13
    stride = block * n_ranks
    patterns = [
        AccessPattern((StridedSegment(r * block, block, stride, 16),))
        for r in range(n_ranks)
    ]
    avail = {i: (1 << 16) if i % 2 else (1 << 24) for i in range(n_nodes)}
    return engine, patterns, avail


def test_plan_cold(benchmark):
    """Every collective re-runs the full four-component pipeline."""
    engine, patterns, avail = _planning_workload(plan_cache=False)

    def run():
        (plan, _, _), cached = engine._plan_or_reuse(
            patterns, dict(avail), frozenset()
        )
        assert not cached
        return len(plan.domains)

    assert benchmark(run) > 0


def test_plan_cached(benchmark):
    """Signature hit: the pipeline is skipped, memoised plan reused."""
    engine, patterns, avail = _planning_workload(plan_cache=True)
    engine._plan_or_reuse(patterns, dict(avail), frozenset())  # warm

    def run():
        (plan, _, _), cached = engine._plan_or_reuse(
            patterns, dict(avail), frozenset()
        )
        assert cached
        return len(plan.domains)

    assert benchmark(run) > 0
