"""Benchmark: remote-memory borrowing sweep + lender-fault recovery.

Tracks the cost of the borrow placement path end to end: the full
policy x regime x fault sweep (including the deterministic degradation
to remerge after a mid-round lender crash) and, separately, the
fault-free skewed-regime cells where borrowing actually pays — the
number the paper-style comparison cares about.
"""

from repro.experiments import borrow


def test_borrow_sweep(once):
    result = once(lambda: borrow.run(seed=0))
    assert all(p.image_ok and p.audit_ok for p in result.points)
    by_key = {(p.policy, p.regime, p.fault): p for p in result.points}
    # lender-crash cells completed via the deterministic fallback
    crashed = by_key[("borrow", "skewed", "lender-crash")]
    assert crashed.stats.tier == "remerge"
    assert crashed.stats.borrow_fallbacks == 1
    # fault-free skewed borrowing actually leased remote buffers
    healthy = by_key[("borrow", "skewed", "none")]
    assert healthy.stats.leases_granted > 0
    assert healthy.stats.borrow_bytes > 0


def test_borrow_healthy_skewed(once):
    result = once(
        lambda: borrow.run(
            seed=0, faults=("none",), regimes=("skewed",)
        )
    )
    assert all(p.image_ok and p.audit_ok for p in result.points)
