"""Benchmark: Figure 7 — IOR bandwidth vs aggregation memory, 120 cores.

Reduced sweep (three buffer points) of the Figure 7 reproduction.  The
full sweep is ``python -m repro.experiments.figure7``.
"""

from dataclasses import replace

from repro.cluster import MIB
from repro.experiments.figure7 import small_config
from repro.experiments.figures import run_figure


def test_figure7_sweep(once):
    config = replace(
        small_config(),
        buffer_sizes=tuple(m * MIB for m in (64, 16, 4)),
    )
    result = once(lambda: run_figure(config))
    issues = result.check_shape()
    assert issues == [], "\n".join(issues)

    avgs = result.average_improvements()
    # paper: +81.2% write / +82.4% read on the interleaved IOR workload
    assert avgs["write"] > 40.0
    assert avgs["read"] > 40.0
    # baseline read bandwidth degrades as memory shrinks (paper Fig. 7)
    rows = result.rows("read")
    assert rows[-1][1] < rows[0][1]
