"""Benchmark: multi-tenant contention sweep.

Tracks the tenancy layer end to end on a reduced grid — tenant count x
regime x policy with both placement strategies, every cell paired with
its per-job isolated baselines.  The acceptance numbers are the PR's
findings: with one tenant the host must reduce to the single-job path
(slowdown exactly 1), and under memory variance with real contention
memory-conscious placement must degrade more gracefully than the
memory-oblivious baseline (lower mean slowdown, no worse fairness).
"""

from repro.experiments import tenancy


def test_tenancy_sweep(once):
    result = once(
        lambda: tenancy.run(
            tenants=(1, 4),
            regimes=("uniform", "variance"),
            policies=("free-for-all", "ost-throttle"),
            strategies=("mcio", "oblivious"),
            steps=2,
            seed=0,
        )
    )
    by_key = {
        (p.tenants, p.regime, p.policy, p.strategy): p for p in result.points
    }

    # one tenant == the single-job simulator: no interference by construction
    for key, p in by_key.items():
        if key[0] == 1:
            assert p.mean_slowdown == 1.0
            assert p.jain == 1.0

    # the headline: under variance + contention, memory-conscious
    # placement absorbs sharing better than oblivious placement
    for policy in ("free-for-all", "ost-throttle"):
        mcio = by_key[(4, "variance", policy, "mcio")]
        obliv = by_key[(4, "variance", policy, "oblivious")]
        assert mcio.mean_slowdown < obliv.mean_slowdown
        assert mcio.jain >= obliv.jain

    # throttling trades queueing wait for contention slowdown
    ffa = by_key[(4, "variance", "free-for-all", "mcio")]
    throttled = by_key[(4, "variance", "ost-throttle", "mcio")]
    assert throttled.mean_slowdown <= ffa.mean_slowdown
    assert throttled.mean_wait > ffa.mean_wait
