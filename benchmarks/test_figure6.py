"""Benchmark: Figure 6 — coll_perf bandwidth vs aggregation memory.

Runs a reduced sweep (three buffer points, write+read) of the Figure 6
reproduction and asserts the paper's shape: MCIO wins at every point.
The full five-point sweep is ``python -m repro.experiments.figure6``.
"""

from dataclasses import replace

from repro.cluster import MIB
from repro.experiments.figure6 import small_config
from repro.experiments.figures import run_figure


def test_figure6_sweep(once):
    config = replace(
        small_config(),
        buffer_sizes=tuple(m * MIB for m in (64, 16, 4)),
    )
    result = once(lambda: run_figure(config))
    issues = result.check_shape()
    assert issues == [], "\n".join(issues)

    for op in ("write", "read"):
        rows = result.rows(op)
        assert len(rows) == 3
        for buffer_bytes, base, mcio, improvement in rows:
            assert mcio >= base, f"{op}@{buffer_bytes}: MCIO lost"
    # the paper's headline: positive average improvement on both ops
    avgs = result.average_improvements()
    assert avgs["write"] > 15.0
    assert avgs["read"] > 15.0
