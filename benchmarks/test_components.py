"""Micro-benchmarks of the hot component paths.

Unlike the figure benchmarks (one full simulated collective per round),
these run many iterations and track the library's own performance:
extent algebra, partition-tree construction, group division, planning,
and raw discrete-event throughput.
"""

import numpy as np

from repro.cluster import Cluster, ClusterSpec, NodeSpec, block_placement
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO, TwoPhaseCollectiveIO
from repro.core.group_division import divide_groups
from repro.core.partition_tree import PartitionTree
from repro.core.request import Extent, StridedSegment
from repro.mpi import SimComm, subarray_view_3d
from repro.pfs import ParallelFileSystem
from repro.sim import Environment, RngFactory
from repro.workloads import CollPerfWorkload, IORWorkload


def test_strided_bytes_in(benchmark):
    seg = StridedSegment(offset=0, block=4096, stride=1 << 20, count=4096)

    def run():
        total = 0
        for i in range(1000):
            total += seg.bytes_in(i * 1000, i * 1000 + 500_000)
        return total

    assert benchmark(run) > 0


def test_pattern_clip_3d(benchmark):
    view = subarray_view_3d((256, 256, 256), (64, 64, 64), (64, 64, 64), 4)

    def run():
        total = 0
        for i in range(100):
            q = view.clip(i * 100_000, i * 100_000 + 5_000_000)
            total += q.nbytes
        return total

    benchmark(run)


def test_partition_tree_build(benchmark):
    region = Extent(0, 1 << 30)

    def run():
        tree = PartitionTree(region, lambda lo, hi: hi - lo, msg_ind=1 << 22,
                             stripe_size=1 << 20)
        return tree.n_leaves

    assert benchmark(run) == 256


def test_group_division_1080_ranks(benchmark):
    workload = IORWorkload(n_ranks=1080, block_size=1 << 19, segments=4)
    patterns = workload.patterns()
    placement = [r // 12 for r in range(1080)]

    def run():
        return len(divide_groups(patterns, placement, msg_group=96 << 20,
                                 stripe_size=1 << 20))

    assert benchmark(run) > 1


def test_mcio_planning_120_ranks(benchmark):
    workload = CollPerfWorkload(array_shape=(256, 256, 256), n_ranks=120)
    patterns = workload.patterns()
    env = Environment()
    spec = ClusterSpec(nodes=10, node=NodeSpec())
    cluster = Cluster(env, spec, RngFactory(0))
    comm = SimComm(env, cluster, block_placement(120, 10, 12))
    pfs = ParallelFileSystem(env, spec.storage)
    engine = MemoryConsciousCollectiveIO(
        comm, pfs,
        MCIOConfig(msg_group=16 << 20, msg_ind=4 << 20, mem_min=0, nah=2),
    )
    avail = {i: 1 << 30 for i in range(10)}

    def run():
        return len(engine.plan(patterns, dict(avail)).domains)

    assert benchmark(run) > 0


def test_two_phase_planning_120_ranks(benchmark):
    workload = CollPerfWorkload(array_shape=(256, 256, 256), n_ranks=120)
    patterns = workload.patterns()
    env = Environment()
    spec = ClusterSpec(nodes=10, node=NodeSpec())
    cluster = Cluster(env, spec, RngFactory(0))
    comm = SimComm(env, cluster, block_placement(120, 10, 12))
    pfs = ParallelFileSystem(env, spec.storage)
    engine = TwoPhaseCollectiveIO(comm, pfs)

    def run():
        return len(engine.plan(patterns).domains)

    assert benchmark(run) == 10


def test_event_engine_throughput(benchmark):
    """Raw DES throughput: ping-pong processes exchanging events."""

    def run():
        env = Environment()
        counter = [0]

        def ping(env, n):
            for _ in range(n):
                yield env.timeout(1.0)
                counter[0] += 1

        for _ in range(10):
            env.process(ping(env, 500))
        env.run()
        return counter[0]

    assert benchmark(run) == 5000


def test_workload_generation_paper_scale(benchmark):
    """Generating the 32 GB coll_perf pattern set must stay cheap."""

    def run():
        w = CollPerfWorkload.paper()
        patterns = w.patterns()
        return sum(p.nbytes for p in patterns)

    assert benchmark(run) == 32 * 1024**3
