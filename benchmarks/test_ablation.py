"""Benchmark: ablation of MCIO's mechanisms plus the memory-pressure claims.

These regenerate the two extension studies DESIGN.md calls out beyond the
paper's own figures.
"""

from repro.experiments import ablation, memory_pressure


def test_ablation_variants(once):
    # proportionally downscaled study (4 nodes / 48 ranks / 128 MiB
    # array): same variant ranking as the CLI's full run, ~5x faster
    result = once(
        lambda: ablation.run(
            buffer_mib=16, seed=0,
            nodes=4, n_ranks=48, array_shape=(256, 256, 512),
        )
    )
    full = result.variants["mcio (full)"]
    oblivious = result.variants["memory-oblivious"]
    # memory awareness is the load-bearing mechanism
    assert oblivious.bandwidth < full.bandwidth
    assert full.bandwidth > result.baseline.bandwidth
    assert full.paged_aggregators == 0


def test_memory_pressure_claims(once):
    result = once(lambda: memory_pressure.run(buffer_mib=16, seed=0))
    assert result.check_claims() == []
    assert result.mcio.overcommit_peak == 0
    assert result.baseline.overcommit_peak > 0
