"""Benchmark: ablation of MCIO's mechanisms plus the memory-pressure claims.

These regenerate the two extension studies DESIGN.md calls out beyond the
paper's own figures.
"""

from repro.experiments import ablation, memory_pressure


def test_ablation_variants(once):
    result = once(lambda: ablation.run(buffer_mib=16, seed=0))
    full = result.variants["mcio (full)"]
    oblivious = result.variants["memory-oblivious"]
    # memory awareness is the load-bearing mechanism
    assert oblivious.bandwidth < full.bandwidth
    assert full.bandwidth > result.baseline.bandwidth
    assert full.paged_aggregators == 0


def test_memory_pressure_claims(once):
    result = once(lambda: memory_pressure.run(buffer_mib=16, seed=0))
    assert result.check_claims() == []
    assert result.mcio.overcommit_peak == 0
    assert result.baseline.overcommit_peak > 0
