"""Benchmark tier for the process-parallel execution paths.

Three cells pin the sharding story on the trajectory:

* a reduced resilience chaos sweep through the serial cell loop — the
  baseline the parallel runner must beat;
* the same sweep fanned across 4 workers — on a multi-core runner the
  ratio of these two medians is the cell-sharding speedup (the issue's
  target is >=3x at jobs=4).  The ratio is *recorded*, not asserted:
  it measures the runner's core count as much as the code, and on a
  single-core machine (CI fallback, this container) the two medians
  legitimately coincide.  The compare step's machine stamp flags such
  runs;
* one multi-group collective through the group-sharded driver at
  jobs=2, against its per-rank reference — the group-sharding overhead
  floor (worker fork + spec pickling + stats merge).

Functional results are asserted so a silent fallback to the serial
path fails loudly rather than just slowly.

Run with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=BENCH_FULL.json
"""

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.request import AccessPattern
from repro.experiments import resilience
from repro.parallel import run_sharded_collective

KIB = 1024

#: Reduced chaos sweep: 3 rates x 3 strategies = 9 cells, ~2s serial.
CHAOS = dict(fault_rates=(0.0, 0.5, 1.0), n_ranks=8, n_nodes=2,
             payload_kib=256, horizon=6.0)


def _check_chaos(result) -> int:
    assert len(result.points) == 9
    assert {p.strategy for p in result.points} == {
        "two-phase", "mcio-static", "mcio"
    }
    return len(result.points)


def test_chaos_sweep_serial(benchmark):
    """Baseline: the reduced resilience sweep through the serial loop."""
    assert _check_chaos(benchmark(lambda: resilience.run(**CHAOS))) == 9


def test_chaos_sweep_jobs4(benchmark):
    """The same sweep fanned across 4 worker processes.

    median(serial) / median(jobs4) is the trajectory's cell-sharding
    speedup figure; compare it across BENCH_N points with the machine
    stamp in mind.
    """
    result = benchmark(lambda: resilience.run(jobs=4, **CHAOS))
    _check_chaos(result)
    # parallel cells must reproduce the serial sweep exactly
    serial = resilience.run(**CHAOS)

    def flat(res):
        return [
            (p.fault_rate, p.strategy, p.outages, p.node_failures,
             p.completed, p.stats.to_json())
            for p in res.points
        ]

    assert flat(result) == flat(serial)


def test_group_sharded_collective_jobs2(benchmark):
    """One 4-group collective through the sharded driver (fork + merge
    overhead floor; the per-rank reference for the same plan is the
    golden-matrix differential suite's job, not a timing cell)."""
    n_ranks, tile = 8, 64 * KIB
    patterns = [
        AccessPattern.contiguous(r * tile, tile) for r in range(n_ranks)
    ]
    config = MCIOConfig(
        msg_group=2 * tile, msg_ind=tile // 2, mem_min=0, nah=1,
        cb_buffer_size=16 * KIB, min_buffer=1,
    )

    def run():
        from tests.helpers import make_stack

        stack = make_stack(n_ranks=n_ranks, n_nodes=4, cores=2,
                           with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, config)
        stats = run_sharded_collective(engine, patterns, "write", jobs=2)
        assert stats.execution_mode == "sharded"
        assert stats.sharding_refusals == 0
        return stats.total_bytes

    assert benchmark(run) == n_ranks * tile
