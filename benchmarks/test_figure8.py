"""Benchmark: Figure 8 — IOR at 1080 cores vs aggregation memory.

Reduced sweep (two buffer points, the 32 MiB and 4 MiB ends) of the
Figure 8 reproduction: 1080 simulated ranks on 90 nodes.  The full sweep
is ``python -m repro.experiments.figure8``.
"""

from dataclasses import replace

from repro.cluster import MIB
from repro.experiments.figure8 import small_config
from repro.experiments.figures import run_figure


def test_figure8_sweep(once):
    config = replace(
        small_config(),
        buffer_sizes=tuple(m * MIB for m in (32, 4)),
    )
    result = once(lambda: run_figure(config))
    issues = result.check_shape()
    assert issues == [], "\n".join(issues)

    for op in ("write", "read"):
        rows = result.rows(op)
        big, small = rows[0], rows[-1]
        # the paper's headline degradation: the baseline loses a large
        # factor from the big-memory to the small-memory end
        # (write 4.1x, read 2.4x in the paper)
        assert big[1] / small[1] > 2.0, f"{op}: baseline degraded too little"
        # MCIO wins at both ends, by more at the starved end
        assert small[3] > big[3]
        assert small[3] > 50.0
