"""Benchmark: regenerate the paper's Table 1.

Prints (via the returned rows) the exascale-vs-2010 design comparison and
the derived memory-per-core collapse the paper's argument rests on.
"""

from repro.experiments.table1 import derived_rows, render_table1, table1_rows


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    rows = table1_rows()
    assert len(rows) == 11
    # spot-check the factors the paper highlights
    factors = {r[0]: r[3] for r in rows}
    assert factors["Total concurrency"] == "4444"
    assert factors["System Memory"] == "33"
    assert factors["I/O Bandwidth"] == "100"
    # derived: memory per core shrinks to megabytes
    mpc = next(r for r in derived_rows() if r[0].startswith("Memory per core"))
    assert float(mpc[3]) < 0.01
    assert "Table 1" in text
