"""Shared fixtures for the benchmark suite.

Figure benchmarks run reduced sweeps (fewer buffer points than the
experiment CLIs) once per session via ``benchmark.pedantic`` — a full
simulated collective is the unit of measurement, not a micro-op.
"""

import pytest


def one_shot(benchmark, fn):
    """Run `fn` exactly once under the benchmark timer and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`one_shot`."""

    def _run(fn):
        return one_shot(benchmark, fn)

    return _run
