"""CollectiveStats.merge: the shard-fold the parallel driver relies on.

The merge must mirror how a single StatsCollector would have
accumulated the same run — counters sum, per-rank gauges max-merge,
sim-time maxes, cumulative engine counters max-merge — and must be an
identity on a single shard, so that sharded execution degenerates
gracefully at one worker.
"""

from __future__ import annotations

import pytest

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.request import AccessPattern

from tests.helpers import make_stack

KIB = 1024


def _collector_stats(
    op="write",
    n_ranks=4,
    total_bytes=0,
    rounds=0,
    intra=0,
    inter=0,
    aggs=(),
    paged=(),
    mode=None,
) -> CollectiveStats:
    """A finalized registry-backed CollectiveStats with given counts."""
    c = StatsCollector("mcio", op, n_ranks=n_ranks)
    c.mark_start(0.0)
    if total_bytes:
        c.record_bytes(total_bytes)
    if rounds:
        c.record_rounds(rounds)
    if intra:
        c.record_shuffle_bulk(intra, same_node=True)
    if inter:
        c.record_shuffle_bulk(inter, same_node=False)
    for rank, nbytes in aggs:
        c.record_aggregator(rank, nbytes, paged=rank in paged)
    if mode is not None:
        c.record_execution_mode(mode)
    c.mark_end(1.0)
    return c.finalize()


class TestEdgeCases:
    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CollectiveStats.merge([])

    def test_single_shard_is_identity(self):
        s = _collector_stats(
            total_bytes=8 * KIB, rounds=3, intra=4 * KIB, inter=4 * KIB,
            aggs=((0, 2 * KIB), (2, KIB)), paged=(2,),
        )
        m = CollectiveStats.merge([s])
        assert m.to_json() == s.to_json()

    def test_merge_is_idempotent_on_merged_output(self):
        """merge([merge(shards)]) == merge(shards), registry counters
        included — re-folding never double-counts."""
        a = _collector_stats(total_bytes=KIB, rounds=1, intra=KIB,
                             aggs=((0, KIB),))
        b = _collector_stats(total_bytes=3 * KIB, rounds=2, inter=2 * KIB,
                             aggs=((5, 2 * KIB),))
        once = CollectiveStats.merge([a, b])
        again = CollectiveStats.merge([once])
        assert again.to_json() == once.to_json()

    def test_disagreeing_identity_fields_rejected(self):
        a = _collector_stats(op="write")
        b = _collector_stats(op="read")
        with pytest.raises(ValueError, match="disagree on op"):
            CollectiveStats.merge([a, b])
        c = _collector_stats(n_ranks=8)
        with pytest.raises(ValueError, match="disagree on n_ranks"):
            CollectiveStats.merge([_collector_stats(n_ranks=4), c])

    def test_inputs_not_mutated(self):
        a = _collector_stats(total_bytes=KIB, aggs=((0, KIB),))
        b = _collector_stats(total_bytes=KIB, aggs=((1, KIB),))
        before = (a.to_json(), b.to_json())
        CollectiveStats.merge([a, b])
        assert (a.to_json(), b.to_json()) == before


class TestFieldClasses:
    def test_counters_sum_and_gauges_max(self):
        a = _collector_stats(
            total_bytes=4 * KIB, rounds=2, intra=2 * KIB, inter=KIB,
            aggs=((0, 2 * KIB), (2, KIB)), paged=(2,),
        )
        b = _collector_stats(
            total_bytes=8 * KIB, rounds=3, intra=KIB, inter=4 * KIB,
            aggs=((0, 3 * KIB), (5, KIB)), paged=(),
        )
        m = CollectiveStats.merge([a, b])
        assert m.total_bytes == 12 * KIB
        assert m.rounds_total == 5
        assert m.shuffle_intra_node_bytes == 3 * KIB
        assert m.shuffle_inter_node_bytes == 5 * KIB
        # gauge: rank 0 appears in both shards — keep the peak, not sum
        assert m.agg_buffer_bytes == {0: 3 * KIB, 2: KIB, 5: KIB}
        assert m.aggregator_ranks == (0, 2, 5)
        assert m.n_aggregators == 3
        assert m.paged_aggregators == 1
        # sim-time: concurrent shards → the slowest one
        assert m.elapsed == max(a.elapsed, b.elapsed)

    def test_mixed_execution_modes(self):
        """A vectorized-mode shard merged with a per-rank one → "mixed"
        (n.b. real sharded runs are uniform; this pins the contract)."""
        a = _collector_stats(mode="vectorized")
        b = _collector_stats()  # finalize default: "per-rank"
        m = CollectiveStats.merge([a, b])
        assert m.execution_mode == "mixed"
        uniform = CollectiveStats.merge([a, _collector_stats(mode="vectorized")])
        assert uniform.execution_mode == "vectorized"

    def test_n_groups_sums_across_shards(self):
        a = CollectiveStats.from_json(
            dict(_collector_stats().to_json(), n_groups=2)
        )
        b = CollectiveStats.from_json(
            dict(_collector_stats().to_json(), n_groups=3)
        )
        m = CollectiveStats.merge([a, b])
        assert m.n_groups == 5

    def test_plan_cache_counters_max_merge(self):
        a = CollectiveStats.from_json(
            dict(_collector_stats().to_json(), plan_cache_hits=3,
                 planning_tree_queries=10)
        )
        b = CollectiveStats.from_json(
            dict(_collector_stats().to_json(), plan_cache_hits=1,
                 planning_tree_queries=10)
        )
        m = CollectiveStats.merge([a, b])
        assert m.plan_cache_hits == 3
        assert m.planning_tree_queries == 10


class TestAgainstRealRun:
    def test_merge_of_real_shard_stats_matches_unsharded_run(self):
        """Two real quarter-runs merged equal one full run's counters.

        Runs the same 4-group workload once whole and once as two
        engine-level halves (disjoint rank pattern subsets padded with
        empty views), then checks the additive fields line up — the
        micro version of the sharded driver's equivalence contract.
        """
        n_ranks = 8
        pats = [
            AccessPattern.contiguous(r * 4 * KIB, 4 * KIB)
            for r in range(n_ranks)
        ]
        cfg = MCIOConfig(
            msg_group=8 * KIB, msg_ind=2 * KIB, mem_min=0, nah=1,
            cb_buffer_size=1024, min_buffer=1,
        )

        def run_once(patterns):
            stack = make_stack(
                n_ranks=n_ranks, n_nodes=4, cores=2, with_data=False
            )
            engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, cfg)

            def main(ctx):
                yield from engine.write(ctx, patterns[ctx.rank])

            stack.run_spmd(main)
            return engine.history[-1]

        whole = run_once(pats)
        empty = AccessPattern(())
        lo = run_once([p if r < 4 else empty for r, p in enumerate(pats)])
        hi = run_once([p if r >= 4 else empty for r, p in enumerate(pats)])
        merged = CollectiveStats.merge([lo, hi])
        assert merged.total_bytes == whole.total_bytes
        assert merged.rounds_total == whole.rounds_total
        assert merged.n_groups == whole.n_groups
        assert merged.agg_buffer_bytes == whole.agg_buffer_bytes
        assert merged.aggregator_ranks == whole.aggregator_ranks
        assert (
            merged.shuffle_intra_node_bytes + merged.shuffle_inter_node_bytes
            == whole.shuffle_intra_node_bytes + whole.shuffle_inter_node_bytes
        )
