"""Intra-node request aggregation: correctness + wire-message reduction.

With ``intra_node_aggregation=True`` each (node, file domain, window)
elects one leader rank; non-leaders hand their window slices to the
leader over the zero-wire intra-node fabric, and only the leader talks
to the aggregator.  These tests pin

* byte-exact file contents and read-back payloads vs the per-rank
  exchange, for both MCIO and the two-phase baseline;
* identical *logical* shuffle statistics (each rank still accounts for
  its own slice) while the *physical* inter-node message counter drops
  by the ranks-per-node factor;
* leader staging memory charged against the node and fully released;
* graceful fallback to the per-rank path whenever fault machinery is
  engaged ("domain" granularity, failover enabled, failed nodes);
* composition with the plan cache.
"""

import hashlib

import numpy as np
import pytest

from repro.core import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.request import AccessPattern, StridedSegment

from tests.helpers import make_stack, rank_payload

KIB = 1024

N_RANKS = 16
N_NODES = 4
CORES = 4


def mcio_cfg(**kw):
    defaults = dict(
        msg_group=16 * KIB, msg_ind=2 * KIB, mem_min=0, nah=2,
        cb_buffer_size=2 * KIB, min_buffer=1, failover=False,
    )
    defaults.update(kw)
    return MCIOConfig(**defaults)


def interleaved(rank: int, n: int = N_RANKS) -> AccessPattern:
    block = 64
    return AccessPattern(
        (StridedSegment(rank * block, block, block * n, 8),)
    )


def _build(strategy: str, intra_node: bool, **cfg_kw):
    stack = make_stack(n_ranks=N_RANKS, n_nodes=N_NODES, cores=CORES)
    if strategy == "mcio":
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(intra_node_aggregation=intra_node, **cfg_kw),
        )
    else:
        engine = TwoPhaseCollectiveIO(
            stack.comm, stack.pfs,
            TwoPhaseConfig(cb_buffer_size=2 * KIB,
                           intra_node_aggregation=intra_node, **cfg_kw),
        )
    return stack, engine


def _write_once(stack, engine):
    def main(ctx):
        pattern = interleaved(ctx.rank)
        yield from engine.write(
            ctx, pattern, rank_payload(ctx.rank, pattern.nbytes)
        )

    stack.run_spmd(main)


def _read_once(stack, engine):
    end = max(interleaved(r).end for r in range(N_RANKS))
    idx = np.arange(end, dtype=np.int64)
    stack.pfs.datastore.write(0, ((idx * 31 + 7) % 251).astype(np.uint8))

    def main(ctx):
        data = yield from engine.read(ctx, interleaved(ctx.rank))
        return data

    return stack.run_spmd(main)


def _image(stack) -> bytes:
    end = max(interleaved(r).end for r in range(N_RANKS))
    return np.asarray(
        stack.pfs.datastore.read(0, end), dtype=np.uint8
    ).tobytes()


@pytest.mark.parametrize("strategy", ["mcio", "two-phase"])
class TestByteEquivalence:
    def test_write_contents_identical(self, strategy):
        images = {}
        for intra_node in (False, True):
            stack, engine = _build(strategy, intra_node)
            _write_once(stack, engine)
            images[intra_node] = _image(stack)
        assert images[True] == images[False]

    def test_read_payloads_identical(self, strategy):
        payloads = {}
        for intra_node in (False, True):
            stack, engine = _build(strategy, intra_node)
            results = _read_once(stack, engine)
            payloads[intra_node] = [
                hashlib.sha256(
                    np.asarray(results[r], dtype=np.uint8).tobytes()
                ).hexdigest()
                for r in range(N_RANKS)
            ]
        assert payloads[True] == payloads[False]

    def test_logical_stats_identical(self, strategy):
        """Each rank still accounts for its own slice: same shuffle stats."""
        stats = {}
        for intra_node in (False, True):
            stack, engine = _build(strategy, intra_node)
            _write_once(stack, engine)
            h = engine.history[0]
            stats[intra_node] = (
                h.total_bytes,
                h.shuffle_intra_node_bytes + h.shuffle_inter_node_bytes,
                h.rounds_total,
                h.aggregator_ranks,
            )
        assert stats[True] == stats[False]


@pytest.mark.parametrize("strategy", ["mcio", "two-phase"])
class TestWireMessages:
    def test_write_and_read_message_factor(self, strategy):
        """Per-round wire messages drop by the ranks-per-node factor.

        Every rank touches every window of every domain in the fully
        interleaved workload, so the per-rank path sends one message per
        (sender, domain-window) while the aggregated path sends one per
        (sender *node*, domain-window): exactly CORES times fewer.
        """
        counts = {}
        for intra_node in (False, True):
            stack, engine = _build(strategy, intra_node)
            _write_once(stack, engine)
            _read_once(stack, engine)
            counts[intra_node] = stack.cluster.network.inter_node_messages
        assert counts[True] > 0
        assert counts[False] == CORES * counts[True]


class TestMemoryAndFallback:
    def test_leader_staging_memory_released(self):
        stack, engine = _build("mcio", intra_node=True)
        _write_once(stack, engine)
        assert all(
            node.memory.committed == 0 for node in stack.cluster.nodes
        )
        assert all(
            node.memory.peak_committed > 0 for node in stack.cluster.nodes
        )

    def test_domain_granularity_ignores_flag(self):
        clocks = {}
        for intra_node in (False, True):
            stack, engine = _build(
                "mcio", intra_node, shuffle_granularity="domain"
            )
            _write_once(stack, engine)
            clocks[intra_node] = float(stack.env.now).hex()
        assert clocks[True] == clocks[False]

    def test_failover_enabled_falls_back_to_per_rank(self):
        """With fault machinery armed the per-rank round path runs."""
        clocks = {}
        for intra_node in (False, True):
            stack, engine = _build("mcio", intra_node, failover=True)
            _write_once(stack, engine)
            clocks[intra_node] = (
                float(stack.env.now).hex(),
                stack.cluster.network.inter_node_messages,
            )
        assert clocks[True] == clocks[False]

    def test_failed_node_falls_back_to_per_rank(self):
        counts = {}
        for intra_node in (False, True):
            stack, engine = _build("mcio", intra_node)
            stack.cluster.nodes[N_NODES - 1].fail()
            _write_once(stack, engine)
            counts[intra_node] = stack.cluster.network.inter_node_messages
        assert counts[True] == counts[False]

    # mid-run death tests need genuinely *multi-round* domains: the
    # failed-node snapshot is pinned once per lockstep round, so a fault
    # can only flip rounds whose snapshot lands after it.  Deep per-rank
    # patterns + memory-tight hosts give 4 rounds at ~elapsed/4 spacing;
    # a fault at 0.4x elapsed leaves the last two rounds to degrade.
    DEEP_REPS = 128

    @classmethod
    def _deep(cls, rank):
        block = 64
        return AccessPattern(
            (StridedSegment(rank * block, block, block * N_RANKS, cls.DEEP_REPS),)
        )

    @classmethod
    def _build_tight(cls, intra_node):
        stack = make_stack(n_ranks=N_RANKS, n_nodes=N_NODES, cores=CORES)
        for node in stack.cluster.nodes:
            node.memory.set_available(8 * KIB)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(
                msg_group=1 << 30,
                intra_node_aggregation=intra_node,
            ),
        )
        return stack, engine

    def test_mid_run_leader_node_death_degrades_to_per_rank(self):
        """A leader host dying *between election and ship* must not bundle.

        Leaders are elected per (node, domain, window) at planning time;
        if their host fails mid-collective, later windows on that node
        ship per-rank straight to the aggregator (the bundle would ride
        a dead leader).  The write must still complete with the exact
        bytes of the per-rank path, and the degradation must be counted.
        """
        probe_stack, probe_engine = self._build_tight(intra_node=True)

        def probe_main(ctx):
            pattern = self._deep(ctx.rank)
            yield from probe_engine.write(
                ctx, pattern, rank_payload(ctx.rank, pattern.nbytes)
            )

        probe_stack.run_spmd(probe_main)
        fault_at = probe_engine.history[0].elapsed * 0.4
        end = max(self._deep(r).end for r in range(N_RANKS))
        clean_image = bytes(
            np.asarray(probe_stack.pfs.datastore.read(0, end), dtype=np.uint8)
        )

        images = {}
        fallbacks = {}
        for intra_node in (False, True):
            stack, engine = self._build_tight(intra_node)
            victim = stack.cluster.nodes[0]

            def main(ctx):
                if ctx.rank == 0:
                    def saboteur():
                        yield ctx.env.sleep(fault_at)
                        victim.fail()
                    ctx.spawn(saboteur(), name="leader-killer")
                pattern = self._deep(ctx.rank)
                yield from engine.write(
                    ctx, pattern, rank_payload(ctx.rank, pattern.nbytes)
                )

            stack.run_spmd(main)
            images[intra_node] = bytes(
                np.asarray(stack.pfs.datastore.read(0, end), dtype=np.uint8)
            )
            fallbacks[intra_node] = engine.history[0].ina_fallbacks
            assert all(
                node.memory.committed == 0 for node in stack.cluster.nodes
            )
        assert images[True] == images[False] == clean_image
        assert fallbacks[True] > 0, "expected counted per-rank degradations"
        assert fallbacks[False] == 0

    def test_mid_run_leader_node_death_degrades_reads_too(self):
        probe_stack, probe_engine = self._build_tight(intra_node=True)
        end = max(self._deep(r).end for r in range(N_RANKS))
        idx = np.arange(end, dtype=np.int64)
        file_bytes = ((idx * 31 + 7) % 251).astype(np.uint8)
        probe_stack.pfs.datastore.write(0, file_bytes)

        def probe_main(ctx):
            data = yield from probe_engine.read(ctx, self._deep(ctx.rank))
            return data

        probe_stack.run_spmd(probe_main)
        fault_at = probe_engine.history[0].elapsed * 0.4

        payloads = {}
        fallbacks = {}
        for intra_node in (False, True):
            stack, engine = self._build_tight(intra_node)
            victim = stack.cluster.nodes[0]
            stack.pfs.datastore.write(0, file_bytes)

            def main(ctx):
                if ctx.rank == 0:
                    def saboteur():
                        yield ctx.env.sleep(fault_at)
                        victim.fail()
                    ctx.spawn(saboteur(), name="leader-killer")
                data = yield from engine.read(ctx, self._deep(ctx.rank))
                return data

            results = stack.run_spmd(main)
            payloads[intra_node] = [
                hashlib.sha256(
                    np.asarray(results[r], dtype=np.uint8).tobytes()
                ).hexdigest()
                for r in range(N_RANKS)
            ]
            fallbacks[intra_node] = engine.history[0].ina_fallbacks
        assert payloads[True] == payloads[False]
        assert fallbacks[True] > 0
        assert fallbacks[False] == 0

    def test_composes_with_plan_cache(self):
        stack, engine = _build("mcio", intra_node=True, plan_cache=True)

        def main(ctx):
            pattern = interleaved(ctx.rank)
            data = rank_payload(ctx.rank, pattern.nbytes)
            for _ in range(3):
                yield from engine.write(ctx, pattern, data.copy())

        stack.run_spmd(main)
        assert engine.plan_cache.stats.hits == 2
        base_stack, base_engine = _build("mcio", intra_node=True)
        _write_once(base_stack, base_engine)
        per_op = base_stack.cluster.network.inter_node_messages
        assert stack.cluster.network.inter_node_messages == 3 * per_op
