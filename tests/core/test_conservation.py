"""Byte-conservation auditor: unit semantics + chaos-sweep property.

The auditor is the referee for every degraded tier this repo grows:
remerge, borrow-abort, failover, two-phase fallback, independent I/O.
These tests pin its mechanics (attempt delimiting, coverage gap walk,
ledger/memory hygiene) on synthetic inputs where violations are
constructed on purpose, then assert the real invariant — no lost bytes —
as a seeded property across full chaos sweeps with lender faults.
"""

import pytest

from tests.helpers import make_stack, rank_payload

from repro.core import (
    AuditRecord,
    ConservationAuditor,
    ConservationError,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.audit import _uncovered
from repro.core.metrics import CollectiveStats
from repro.core.request import AccessPattern, Extent, StridedSegment

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

KIB = 1024


def _stats(tier=None, intra=0, inter=0) -> CollectiveStats:
    return CollectiveStats(
        strategy="mcio",
        op="write",
        total_bytes=0,
        elapsed=1.0,
        n_ranks=4,
        n_aggregators=1,
        aggregator_ranks=(0,),
        agg_buffer_bytes={},
        agg_overcommit_bytes=0,
        paged_aggregators=0,
        rounds_total=1,
        shuffle_intra_node_bytes=intra,
        shuffle_inter_node_bytes=inter,
        shuffle_inter_group_bytes=0,
        degraded_tier=tier,
    )


def _block_patterns(n_ranks=4, nbytes=KIB):
    return [
        AccessPattern((StridedSegment(r * nbytes, nbytes, nbytes, 1),))
        for r in range(n_ranks)
    ]


class FakeCollector:
    """Just enough of StatsCollector for the auditor hooks."""

    def __init__(self, n_ranks=4):
        self.n_ranks = n_ranks
        self.shuffle_intra_node_bytes = 0
        self.shuffle_inter_node_bytes = 0


class TestUncovered:
    def test_full_coverage_has_no_gaps(self):
        req = [Extent(0, 100)]
        assert _uncovered(req, [Extent(0, 100)]) == []
        assert _uncovered(req, [Extent(0, 60), Extent(60, 40)]) == []

    def test_leading_trailing_and_interior_gaps(self):
        req = [Extent(0, 100)]
        assert _uncovered(req, [Extent(10, 90)]) == [Extent(0, 10)]
        assert _uncovered(req, [Extent(0, 90)]) == [Extent(90, 10)]
        assert _uncovered(req, [Extent(0, 40), Extent(60, 40)]) == [
            Extent(40, 20)
        ]

    def test_nothing_recorded_loses_everything(self):
        assert _uncovered([Extent(5, 10)], []) == [Extent(5, 10)]

    def test_requests_outside_recording_are_gaps(self):
        req = [Extent(0, 10), Extent(100, 10)]
        assert _uncovered(req, [Extent(0, 10)]) == [Extent(100, 10)]


class TestAttemptDelimiting:
    def test_single_attempt_counts_once_per_rank_group(self):
        auditor = ConservationAuditor()
        coll = FakeCollector(n_ranks=4)
        for _ in range(4):
            auditor.on_attempt(coll)
        coll.shuffle_inter_node_bytes = 4096
        auditor.on_finalize(coll, _stats())
        rec = auditor.records[-1]
        assert rec.attempts == 1
        assert rec.final_attempt_shuffle == 4096

    def test_degraded_retry_snapshots_per_attempt(self):
        """Bytes moved by an aborted attempt don't count against the final."""
        auditor = ConservationAuditor()
        coll = FakeCollector(n_ranks=4)
        for _ in range(4):  # attempt 0
            auditor.on_attempt(coll)
        coll.shuffle_inter_node_bytes = 999  # partial, then aborted
        for _ in range(4):  # attempt 1 (post-abort barrier)
            auditor.on_attempt(coll)
        coll.shuffle_inter_node_bytes = 999 + 4096
        auditor.on_finalize(coll, _stats(tier="remerge"))
        rec = auditor.records[-1]
        assert rec.attempts == 2
        assert rec.final_attempt_shuffle == 4096

    def test_io_extents_coalesce_across_attempts(self):
        auditor = ConservationAuditor()
        coll = FakeCollector(n_ranks=1)
        auditor.on_attempt(coll)
        auditor.on_io_extent(coll, 0, 512)
        auditor.on_io_extent(coll, 512, 512)
        auditor.on_finalize(coll, _stats())
        assert auditor.records[-1].extents == [Extent(0, 1024)]


class TestVerifyViolations:
    def _record(self, extents, shuffle, tier=None):
        return AuditRecord(
            stats=_stats(tier=tier),
            attempts=1,
            extents=extents,
            final_attempt_shuffle=shuffle,
        )

    def test_clean_record_passes(self):
        auditor = ConservationAuditor()
        patterns = _block_patterns(4, KIB)
        rec = self._record([Extent(0, 4 * KIB)], 4 * KIB)
        assert auditor.verify(patterns, record=rec) is rec

    def test_lost_bytes_and_short_shuffle_both_reported(self):
        auditor = ConservationAuditor()
        patterns = _block_patterns(4, KIB)
        rec = self._record([Extent(0, 3 * KIB)], 3 * KIB)
        with pytest.raises(ConservationError) as exc:
            auditor.verify(patterns, record=rec)
        joined = "\n".join(exc.value.violations)
        assert "coverage" in joined and "1024" in joined
        assert "shuffle" in joined

    def test_independent_tier_expects_zero_shuffle(self):
        auditor = ConservationAuditor()
        patterns = _block_patterns(4, KIB)
        ok = self._record([Extent(0, 4 * KIB)], 0, tier="independent")
        auditor.verify(patterns, record=ok)
        bad = self._record([Extent(0, 4 * KIB)], 4 * KIB, tier="independent")
        with pytest.raises(ConservationError, match="shuffle"):
            auditor.verify(patterns, record=bad)

    def test_no_finalized_operation_is_a_violation(self):
        with pytest.raises(ConservationError, match="no finalized"):
            ConservationAuditor().verify(_block_patterns())


class TestHygieneChecks:
    def test_unreleased_lease_flagged(self):
        stack = make_stack(n_ranks=4, n_nodes=2, cores=2)
        ledger = stack.cluster.memory_ledger
        ledger.grant(0, 1, KIB, now=0.0, term=1.0)
        auditor = ConservationAuditor(
            ledger=ledger, cluster=stack.cluster
        )
        patterns = _block_patterns(4, KIB)
        rec = AuditRecord(
            stats=_stats(), attempts=1,
            extents=[Extent(0, 4 * KIB)], final_attempt_shuffle=4 * KIB,
        )
        with pytest.raises(ConservationError) as exc:
            auditor.verify(patterns, record=rec)
        joined = "\n".join(exc.value.violations)
        assert "outstanding" in joined
        assert "memory" in joined  # the lease pins committed lender bytes

    def test_balanced_ledger_and_freed_memory_pass(self):
        stack = make_stack(n_ranks=4, n_nodes=2, cores=2)
        ledger = stack.cluster.memory_ledger
        lease = ledger.grant(0, 1, KIB, now=0.0, term=1.0)
        ledger.release(lease, now=0.5)
        auditor = ConservationAuditor(ledger=ledger, cluster=stack.cluster)
        rec = AuditRecord(
            stats=_stats(), attempts=1,
            extents=[Extent(0, 4 * KIB)], final_attempt_shuffle=4 * KIB,
        )
        auditor.verify(_block_patterns(4, KIB), record=rec)


class TestEngineAttach:
    def test_two_phase_engine_audits_clean(self):
        stack = make_stack(n_ranks=8, n_nodes=2, cores=4)
        engine = TwoPhaseCollectiveIO(
            stack.comm, stack.pfs, TwoPhaseConfig(cb_buffer_size=8 * KIB)
        )
        auditor = ConservationAuditor().attach(engine)
        patterns = _block_patterns(8, KIB)
        payloads = [rank_payload(r, KIB) for r in range(8)]

        def main(ctx):
            yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])

        stack.run_spmd(main)
        record = auditor.verify(patterns)
        assert record.attempts == 1
        assert record.final_attempt_shuffle == 8 * KIB


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestChaosProperty:
    """Seeded property: no storm loses a byte, on any tier."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_resilience_sweep_conserves_bytes(self, seed):
        from repro.experiments import resilience

        # audit=True verifies every cell in-line, raising
        # ConservationError on any lost byte across retry, failover,
        # two-phase fallback, and independent tiers
        result = resilience.run(
            fault_rates=(0.0, 1.0),
            seed=seed,
            payload_kib=256,
            horizon=2.0,
            audit=True,
        )
        assert all(p.completed for p in result.points)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_borrow_sweep_conserves_bytes_under_lender_faults(self, seed):
        from repro.experiments import borrow

        result = borrow.run(seed=seed, payload_kib=8)
        for p in result.points:
            assert p.image_ok, (p.policy, p.regime, p.fault)
            assert p.audit_ok, (p.policy, p.regime, p.fault)
