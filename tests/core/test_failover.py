"""Aggregator failover: unit tests for the placer and end-to-end runs."""

import numpy as np
import pytest

from repro.core import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    replace_failed_domains,
)
from repro.core.filedomain import FileDomain
from repro.core.request import AccessPattern, Extent, StridedSegment
from repro.faults import FaultEvent, FaultInjector, FaultSchedule

from tests.helpers import make_stack, rank_payload

KIB = 1024
MIB = 1024 * 1024


def cfg(**kw):
    defaults = dict(
        msg_group=64 * MIB, msg_ind=64 * MIB, mem_min=0, nah=2,
        cb_buffer_size=64 * KIB,
    )
    defaults.update(kw)
    return MCIOConfig(**defaults)


class TestReplaceFailedDomains:
    """Pure-function behaviour of the between-rounds re-placement."""

    # 4 ranks, 2 per node, each writing 1 MiB contiguously
    PATTERNS = tuple(
        AccessPattern.contiguous(r * MIB, MIB) for r in range(4)
    )
    PLACEMENT = [0, 0, 1, 1]
    MEMORY = {0: 8 * MIB, 1: 8 * MIB}
    DOMAINS = [
        FileDomain(Extent(0, 2 * MIB), aggregator_rank=0,
                   buffer_bytes=512 * KIB),
        FileDomain(Extent(2 * MIB, 2 * MIB), aggregator_rank=2,
                   buffer_bytes=512 * KIB),
    ]

    def test_no_failures_is_identity(self):
        decision = replace_failed_domains(
            self.DOMAINS, self.PATTERNS, self.PLACEMENT, self.MEMORY,
            cfg(), frozenset(),
        )
        assert decision.changed is False
        assert decision.domains == self.DOMAINS
        assert decision.moved == [] and decision.kept == []

    def test_orphan_moves_to_live_host(self):
        decision = replace_failed_domains(
            self.DOMAINS, self.PATTERNS, self.PLACEMENT, self.MEMORY,
            cfg(), frozenset({0}),
        )
        assert decision.moved == [0]
        new = decision.domains[0]
        assert self.PLACEMENT[new.aggregator_rank] == 1
        # in-flight round geometry is frozen
        assert new.extent == self.DOMAINS[0].extent
        assert new.buffer_bytes == self.DOMAINS[0].buffer_bytes
        # healthy domain untouched
        assert decision.domains[1] == self.DOMAINS[1]

    def test_deterministic(self):
        args = (
            self.DOMAINS, self.PATTERNS, self.PLACEMENT, self.MEMORY,
            cfg(), frozenset({0}),
        )
        a = replace_failed_domains(*args)
        b = replace_failed_domains(*args)
        assert a.domains == b.domains
        assert a.moved == b.moved and a.kept == b.kept

    def test_no_live_host_keeps_domain(self):
        decision = replace_failed_domains(
            self.DOMAINS, self.PATTERNS, self.PLACEMENT, self.MEMORY,
            cfg(), frozenset({0, 1}),
        )
        assert decision.moved == []
        assert decision.kept == [0, 1]
        assert decision.domains == self.DOMAINS

    def test_fallback_prefers_host_with_memory(self):
        """When no live rank has data in the domain, the re-placement
        must pick the live host with the most remaining memory."""
        patterns = tuple(
            AccessPattern.contiguous(r * MIB, MIB) for r in range(6)
        )
        placement = [0, 0, 1, 1, 2, 2]
        # all data for domain 0 lives on failed node 0; node 2 has the
        # memory headroom
        memory = {0: 8 * MIB, 1: 64 * KIB, 2: 8 * MIB}
        domains = [
            FileDomain(Extent(0, 2 * MIB), aggregator_rank=0,
                       buffer_bytes=512 * KIB),
        ]
        decision = replace_failed_domains(
            domains, patterns, placement, memory, cfg(), frozenset({0}),
        )
        assert decision.moved == [0]
        new = decision.domains[0]
        assert placement[new.aggregator_rank] == 2
        assert new.paged is False


class TestFailoverEndToEnd:
    def _run(self, failover, fail_at=0.05):
        """12 ranks / 3 nodes, tight memory => multi-round collectives."""
        stack = make_stack(memory_bytes=3 * 10**6)
        nbytes = 1 * MIB
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            MCIOConfig(msg_ind=4 * MIB, mem_min=0, nah=4,
                       cb_buffer_size=64 * KIB, failover=failover,
                       fallback_chain=failover),
        )
        schedule = FaultSchedule(
            [FaultEvent(time=fail_at, kind="node_failure", target=0,
                        magnitude=16.0)]
        ) if fail_at is not None else FaultSchedule()
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        if len(schedule):
            injector.start()
        payloads = {}

        def main(ctx):
            chunk = 64 * KIB
            pattern = AccessPattern(
                (StridedSegment(ctx.rank * chunk, chunk,
                                stack.comm.size * chunk, nbytes // chunk),)
            )
            payloads[ctx.rank] = rank_payload(ctx.rank, nbytes)
            yield from engine.write(ctx, pattern, payloads[ctx.rank].copy())

        stack.run_spmd(main)
        injector.stop()
        return stack, engine.history[-1], payloads

    def test_failover_moves_orphaned_domains(self):
        stack, stats, payloads = self._run(failover=True)
        assert stats.failovers >= 1
        assert stats.extra.get("failover_rounds")
        # every replacement aggregator lives on a healthy node
        targets = stats.extra["failover_targets"]
        assert len(targets) == stats.failovers
        for rank in targets:
            assert stack.comm.placement[rank] != 0

    def test_failover_preserves_data(self):
        stack, stats, payloads = self._run(failover=True)
        chunk = 64 * KIB
        n = stack.comm.size
        for rank, payload in payloads.items():
            for i in range(len(payload) // chunk):
                off = rank * chunk + i * n * chunk
                got = stack.pfs.datastore.read(off, chunk)
                np.testing.assert_array_equal(
                    got, payload[i * chunk:(i + 1) * chunk],
                    err_msg=f"rank {rank} block {i} corrupt after failover",
                )

    def test_failover_faster_than_riding_out_failure(self):
        _, with_fo, _ = self._run(failover=True)
        _, without, _ = self._run(failover=False)
        assert without.failovers == 0
        assert with_fo.elapsed < without.elapsed

    def test_failover_hooks_timing_neutral_without_faults(self):
        """failover=True must add zero events when no host ever fails."""
        _, a, _ = self._run(failover=True, fail_at=None)
        _, b, _ = self._run(failover=False, fail_at=None)
        assert a.failovers == 0
        assert a.elapsed == b.elapsed
        assert a.rounds_total == b.rounds_total
