"""Integration tests: two-phase collective I/O end-to-end."""

import numpy as np
import pytest

from repro.core import TwoPhaseCollectiveIO, TwoPhaseConfig
from repro.core.request import AccessPattern
from repro.core.two_phase import default_aggregators
from repro.mpi import subarray_view_3d, vector_view, block_decompose_3d

from tests.helpers import make_stack, rank_payload


def serial_pattern(rank, width=500):
    return AccessPattern.contiguous(rank * width, width)


def interleaved_pattern(rank, n_ranks, xfer=64, blocks=6):
    return vector_view(offset=rank * xfer, count=blocks, block=xfer,
                       stride=n_ranks * xfer)


class TestDefaultAggregators:
    def test_one_per_node(self):
        placement = [0, 0, 1, 1, 2, 2]
        assert default_aggregators(placement) == [0, 2, 4]

    def test_cb_nodes_fewer(self):
        placement = [0, 0, 1, 1, 2, 2]
        assert default_aggregators(placement, cb_nodes=2) == [0, 2]

    def test_cb_nodes_more_round_robin(self):
        placement = [0, 0, 1, 1]
        assert default_aggregators(placement, cb_nodes=4) == [0, 2, 1, 3]

    def test_cb_nodes_invalid(self):
        with pytest.raises(ValueError):
            default_aggregators([0, 1], cb_nodes=0)


def roundtrip(stack, engine, make_pattern, nbytes_per_rank):
    """Write all ranks' payloads collectively, then read back and verify."""
    n = stack.comm.size
    payloads = [rank_payload(r, nbytes_per_rank) for r in range(n)]

    def writer(ctx):
        pattern = make_pattern(ctx.rank)
        yield from engine.write(ctx, pattern, payloads[ctx.rank].copy())
        return None

    stack.run_spmd(writer)

    def reader(ctx):
        pattern = make_pattern(ctx.rank)
        data = yield from engine.read(ctx, pattern)
        return data

    results = stack.run_spmd(reader)
    for r in range(n):
        assert (results[r] == payloads[r]).all(), f"rank {r} data corrupt"


class TestWriteReadCorrectness:
    def test_serial_roundtrip(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=1024))
        roundtrip(stack, engine, lambda r: serial_pattern(r), 500)

    def test_serial_write_lands_at_right_offsets(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=512))
        payloads = [rank_payload(r, 100) for r in range(6)]

        def writer(ctx):
            yield from engine.write(ctx, serial_pattern(ctx.rank, 100),
                                    payloads[ctx.rank].copy())

        stack.run_spmd(writer)
        for r in range(6):
            assert (stack.pfs.datastore.read(r * 100, 100) == payloads[r]).all()

    def test_interleaved_roundtrip(self):
        stack = make_stack(n_ranks=8, n_nodes=2)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=512))
        n = stack.comm.size
        roundtrip(stack, engine,
                  lambda r: interleaved_pattern(r, n),
                  64 * 6)

    def test_3d_subarray_roundtrip(self):
        stack = make_stack(n_ranks=8, n_nodes=2)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=1024))
        g = (8, 8, 8)
        blocks = block_decompose_3d(g, 8)

        def make_pattern(rank):
            starts, shape = blocks[rank]
            return subarray_view_3d(g, shape, starts, elem_size=2)

        roundtrip(stack, engine, make_pattern,
                  blocks[0][1][0] * blocks[0][1][1] * blocks[0][1][2] * 2)

    def test_small_buffer_multiple_rounds_still_correct(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=64))
        roundtrip(stack, engine, lambda r: serial_pattern(r, 300), 300)
        stats = engine.history[0]
        assert stats.rounds_total > stats.n_aggregators  # forced multi-round

    def test_domain_granularity_roundtrip(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(
            stack.comm, stack.pfs,
            TwoPhaseConfig(cb_buffer_size=64, shuffle_granularity="domain"),
        )
        roundtrip(stack, engine, lambda r: serial_pattern(r, 300), 300)

    def test_ranks_with_empty_patterns_participate(self):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
        payload = rank_payload(0, 200)

        def main(ctx):
            if ctx.rank == 0:
                pattern = AccessPattern.contiguous(0, 200)
                yield from engine.write(ctx, pattern, payload.copy())
            else:
                yield from engine.write(ctx, AccessPattern(()))

        stack.run_spmd(main)
        assert (stack.pfs.datastore.read(0, 200) == payload).all()

    def test_all_empty_patterns_noop(self):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)

        def main(ctx):
            yield from engine.write(ctx, AccessPattern(()))

        stack.run_spmd(main)
        assert engine.history[0].total_bytes == 0

    def test_payload_size_mismatch_rejected(self):
        stack = make_stack(n_ranks=2, n_nodes=1)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)

        def main(ctx):
            yield from engine.write(
                ctx, AccessPattern.contiguous(0, 100),
                np.zeros(5, dtype=np.uint8),
            )

        with pytest.raises(Exception):
            stack.run_spmd(main)


class TestStats:
    def run_write(self, stack, engine, width=500):
        def writer(ctx):
            yield from engine.write(ctx, serial_pattern(ctx.rank, width),
                                    rank_payload(ctx.rank, width))

        stack.run_spmd(writer)
        return engine.history[-1]

    def test_stats_basics(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=2048))
        stats = self.run_write(stack, engine)
        assert stats.strategy == "two-phase"
        assert stats.op == "write"
        assert stats.total_bytes == 12 * 500
        assert stats.elapsed > 0
        assert stats.bandwidth > 0
        assert stats.n_aggregators == 3  # one per node
        assert stats.n_groups == 1

    def test_aggregators_are_first_rank_per_node(self):
        stack = make_stack(n_ranks=12, n_nodes=3, cores=4)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
        stats = self.run_write(stack, engine)
        assert stats.aggregator_ranks == (0, 4, 8)

    def test_buffer_bytes_reported(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=777))
        stats = self.run_write(stack, engine)
        assert all(v == 777 for v in stats.agg_buffer_bytes.values())

    def test_paged_aggregators_detected_under_pressure(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        # node 0 has almost no memory available
        stack.cluster.set_memory_availability([100, 10**9, 10**9])
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=4096))
        stats = self.run_write(stack, engine)
        assert stats.paged_aggregators == 1

    def test_shuffle_traffic_split(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs,
                                      TwoPhaseConfig(cb_buffer_size=4096))
        stats = self.run_write(stack, engine)
        total_shuffle = stats.shuffle_intra_node_bytes + stats.shuffle_inter_node_bytes
        assert total_shuffle == 12 * 500
        assert stats.shuffle_inter_group_bytes == 0

    def test_consecutive_collectives(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)

        def main(ctx):
            yield from engine.write(ctx, serial_pattern(ctx.rank, 100),
                                    rank_payload(ctx.rank, 100))
            yield from engine.write(ctx, serial_pattern(ctx.rank, 100),
                                    rank_payload(ctx.rank + 1, 100))

        stack.run_spmd(main)
        assert len(engine.history) == 2
        # second write overwrote the first
        assert (stack.pfs.datastore.read(0, 100) == rank_payload(1, 100)).all()


class TestPerformanceShape:
    def measure(self, cb_buffer_size, availability=None, n_ranks=12, n_nodes=3):
        stack = make_stack(n_ranks=n_ranks, n_nodes=n_nodes)
        if availability is not None:
            stack.cluster.set_memory_availability(availability)
        engine = TwoPhaseCollectiveIO(
            stack.comm, stack.pfs, TwoPhaseConfig(cb_buffer_size=cb_buffer_size)
        )

        def writer(ctx):
            yield from engine.write(ctx, serial_pattern(ctx.rank, 2000))

        stack.run_spmd(writer)
        return engine.history[0]

    def test_smaller_buffer_is_slower(self):
        fast = self.measure(cb_buffer_size=8192)
        slow = self.measure(cb_buffer_size=128)
        assert slow.bandwidth < fast.bandwidth
        assert slow.rounds_total > fast.rounds_total

    def test_memory_pressure_slows_the_collective(self):
        healthy = self.measure(cb_buffer_size=4096,
                               availability=[10**9] * 3)
        starved = self.measure(cb_buffer_size=4096,
                               availability=[10, 10, 10])
        assert starved.paged_aggregators == 3
        assert starved.elapsed > healthy.elapsed

    def test_deterministic_across_runs(self):
        a = self.measure(cb_buffer_size=1024)
        b = self.measure(cb_buffer_size=1024)
        assert a.elapsed == b.elapsed
        assert a.agg_buffer_bytes == b.agg_buffer_bytes
