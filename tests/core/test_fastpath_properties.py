"""Seeded property tests guarding the fast-path optimisations.

Two families:

* **Partition tree / remerge invariants** — under arbitrary seeded
  remerge sequences the live leaves must tile the root region exactly
  (no gap, no overlap), the incrementally maintained leaf cache must
  equal a fresh DFS, and the memoised ``data_bytes`` values must equal
  recomputation from the raw callable.
* **Event-ordering invariants of the simulation kernel** — events fire
  in ``(time, priority, sequence)`` total order under interleaved
  timeouts, pooled sleeps, and interrupts, and the pooled
  :meth:`~repro.sim.Environment.sleep` is observationally identical to
  :meth:`~repro.sim.Environment.timeout`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition_tree import PartitionTree
from repro.core.request import AccessPattern, Extent
from repro.sim import Environment, Interrupt


# ---------------------------------------------------------------------------
# partition tree / remerge
# ---------------------------------------------------------------------------
def _pattern_data_fn(patterns):
    def data(lo, hi):
        return sum(p.bytes_in(lo, hi) for p in patterns)

    return data


@st.composite
def tree_workloads(draw):
    """A region, a set of contiguous per-rank requests, and remerge picks."""
    n_ranks = draw(st.integers(min_value=1, max_value=8))
    patterns = []
    pos = draw(st.integers(min_value=0, max_value=512))
    start = pos
    for _ in range(n_ranks):
        gap = draw(st.integers(min_value=0, max_value=64))
        length = draw(st.integers(min_value=1, max_value=800))
        patterns.append(AccessPattern.contiguous(pos + gap, length))
        pos += gap + length
    region = Extent(start, pos - start)
    msg_ind = draw(st.integers(min_value=1, max_value=600))
    stripe = draw(st.sampled_from([0, 16, 64]))
    # indices into the live leaf list, resolved modulo len at use time
    picks = draw(st.lists(st.integers(min_value=0, max_value=63), max_size=12))
    return region, patterns, msg_ind, stripe, picks


def _fresh_dfs_leaves(tree):
    """Leaf list recomputed by an independent walk (no caches)."""
    out = []

    def walk(node):
        if node.left is None and node.right is None:
            out.append(node)
        else:
            walk(node.left)
            walk(node.right)

    walk(tree.root)
    return out


@given(tree_workloads())
@settings(max_examples=150, deadline=None)
def test_remerge_preserves_tiling_and_caches(workload):
    region, patterns, msg_ind, stripe, picks = workload
    raw = _pattern_data_fn(patterns)
    tree = PartitionTree(region, raw, msg_ind=msg_ind, stripe_size=stripe)
    tree.check_invariant()

    for pick in picks:
        leaves = tree.leaves()
        if len(leaves) <= 1:
            break
        tree.remerge(leaves[pick % len(leaves)])

        # leaves tile the root region exactly: no gap, no overlap
        tree.check_invariant()
        # the incrementally maintained cache equals a fresh DFS
        assert tree.leaves() == _fresh_dfs_leaves(tree)

    # memoised byte counts equal recomputation from the raw callable
    for (lo, hi), cached in tree._data_bytes_cache.items():
        assert cached == raw(lo, hi)
    for leaf in tree.leaves():
        assert tree.data_bytes(leaf.extent.offset, leaf.extent.end) == raw(
            leaf.extent.offset, leaf.extent.end
        )


@given(tree_workloads())
@settings(max_examples=100, deadline=None)
def test_leaves_disjoint_and_bounded(workload):
    region, patterns, msg_ind, stripe, picks = workload
    tree = PartitionTree(
        region, _pattern_data_fn(patterns), msg_ind=msg_ind, stripe_size=stripe
    )
    for pick in picks:
        leaves = tree.leaves()
        if len(leaves) <= 1:
            break
        tree.remerge(leaves[pick % len(leaves)])
    leaves = tree.leaves()
    for a, b in zip(leaves, leaves[1:]):
        assert a.extent.end == b.extent.offset  # adjacent, no overlap
    assert leaves[0].extent.offset == region.offset
    assert leaves[-1].extent.end == region.end
    assert tree.n_leaves == len(leaves)


def test_remerge_single_leaf_rejected():
    tree = PartitionTree(Extent(0, 10), lambda lo, hi: 0, msg_ind=100)
    with pytest.raises(ValueError):
        tree.remerge(tree.leaves()[0])


# ---------------------------------------------------------------------------
# simulation kernel event ordering
# ---------------------------------------------------------------------------
@st.composite
def timeout_schedules(draw):
    """Delays (quantised so distinct floats never collide spuriously)."""
    n = draw(st.integers(min_value=1, max_value=24))
    delays = draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=n,
            max_size=n,
        )
    )
    use_sleep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return [
        (d / 8.0, s) for d, s in zip(delays, use_sleep)
    ]


@given(timeout_schedules())
@settings(max_examples=150, deadline=None)
def test_event_order_is_time_then_sequence(schedule):
    """Fire order sorts by (time, priority, sequence) — never by identity.

    Processes are created in schedule order, so equal-time events must
    resolve in creation order regardless of whether each waiter used a
    plain timeout or a pooled sleep.
    """
    env = Environment()
    log = []

    def waiter(idx, delay, use_sleep):
        yield (env.sleep(delay) if use_sleep else env.timeout(delay))
        log.append((env.now, idx))

    for idx, (delay, use_sleep) in enumerate(schedule):
        env.process(waiter(idx, delay, use_sleep))
    env.run()

    assert len(log) == len(schedule)
    # equal times resolve in creation (= scheduling) order
    assert log == sorted(log, key=lambda pair: (pair[0], pair[1]))
    # and each waiter fired at exactly its requested delay
    for fired_at, idx in log:
        assert fired_at == schedule[idx][0]


@given(timeout_schedules())
@settings(max_examples=100, deadline=None)
def test_sleep_matches_timeout_schedule_exactly(schedule):
    """A run on pooled sleeps reproduces a plain-timeout run event-for-event."""

    def run(force_timeout):
        env = Environment()
        log = []

        def waiter(idx, delay, use_sleep):
            if force_timeout or not use_sleep:
                yield env.timeout(delay)
            else:
                yield env.sleep(delay)
            log.append((env.now, idx))

        for idx, (delay, use_sleep) in enumerate(schedule):
            env.process(waiter(idx, delay, use_sleep))
        env.run()
        return log, env.now

    assert run(force_timeout=True) == run(force_timeout=False)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),  # victim delay (eighths)
            st.integers(min_value=0, max_value=40),  # interrupt time (eighths)
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=100, deadline=None)
def test_interleaved_interrupts_keep_total_order(pairs):
    """Interrupted sleepers and surviving sleepers fire in global order."""
    env = Environment()
    log = []

    def victim(idx, delay):
        try:
            yield env.sleep(delay)
            log.append(("slept", idx, env.now))
        except Interrupt:
            log.append(("interrupted", idx, env.now))

    def interrupter(proc, at):
        yield env.timeout(at)
        if proc.is_alive:
            proc.interrupt("cut")

    for idx, (delay_q, at_q) in enumerate(pairs):
        proc = env.process(victim(idx, delay_q / 8.0))
        env.process(interrupter(proc, at_q / 8.0))
    env.run()

    assert len(log) == len(pairs)
    times = [entry[2] for entry in log]
    assert times == sorted(times)
    for kind, idx, at in log:
        delay, cut = pairs[idx][0] / 8.0, pairs[idx][1] / 8.0
        if kind == "slept":
            assert at == delay and not cut < delay
        else:
            assert at == cut and cut < delay


def test_sleep_pool_recycles_objects():
    """Processed sleeps return to the pool and are handed out again."""
    env = Environment()
    seen = []

    def sleeper():
        for _ in range(5):
            ev = env.sleep(1.0)
            seen.append(id(ev))
            yield ev

    env.process(sleeper())
    env.run()
    assert len(seen) == 5
    # the next sleep is allocated inside the resume callback, *before*
    # the fired one returns to the pool — so a serial sleeper alternates
    # between two recycled objects rather than allocating five
    assert len(set(seen)) == 2


def test_sleep_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.sleep(-1.0)
    # ... also once the pool is warm (the reset path validates too)
    def sleeper():
        yield env.sleep(0.0)

    env.process(sleeper())
    env.run()
    assert env._sleep_pool
    with pytest.raises(ValueError):
        env.sleep(-1.0)
