"""Tests for independent I/O and data sieving baselines."""

import numpy as np
import pytest

from repro.core import DataSievingIO, IndependentIO, TwoPhaseCollectiveIO
from repro.core.request import AccessPattern
from repro.mpi import vector_view

from tests.helpers import make_stack, rank_payload


def sparse_pattern(rank, n_ranks=4, block=16, count=8):
    return vector_view(
        offset=rank * block, count=count, block=block, stride=n_ranks * block
    )


class TestIndependentIO:
    def test_write_read_roundtrip(self):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = IndependentIO(stack.comm, stack.pfs)
        payloads = {r: rank_payload(r, 16 * 8) for r in range(4)}

        def writer(ctx):
            yield from engine.write(ctx, sparse_pattern(ctx.rank),
                                    payloads[ctx.rank].copy())

        stack.run_spmd(writer)

        def reader(ctx):
            return (yield from engine.read(ctx, sparse_pattern(ctx.rank)))

        results = stack.run_spmd(reader)
        for r in range(4):
            assert (results[r] == payloads[r]).all()

    def test_stats_recorded(self):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = IndependentIO(stack.comm, stack.pfs)

        def writer(ctx):
            yield from engine.write(ctx, sparse_pattern(ctx.rank))

        stack.run_spmd(writer)
        assert len(engine.history) == 1
        stats = engine.history[0]
        assert stats.strategy == "independent"
        assert stats.total_bytes == 4 * 16 * 8
        assert stats.bandwidth > 0

    def test_read_fills_provided_payload(self):
        stack = make_stack(n_ranks=2, n_nodes=1)
        engine = IndependentIO(stack.comm, stack.pfs)
        stack.pfs.datastore.write(0, rank_payload(0, 64))
        out = np.zeros(64, dtype=np.uint8)

        def reader(ctx):
            if ctx.rank == 0:
                got = yield from engine.read(ctx, AccessPattern.contiguous(0, 64), out)
                return got is out
            yield from engine.read(ctx, AccessPattern(()))
            return None

        results = stack.run_spmd(reader)
        assert results[0] is True
        assert (out == rank_payload(0, 64)).all()


class TestDataSieving:
    def test_read_extracts_from_hull(self):
        stack = make_stack(n_ranks=2, n_nodes=1)
        engine = DataSievingIO(stack.comm, stack.pfs)
        # lay down a known file
        base = rank_payload(9, 256)
        stack.pfs.datastore.write(0, base)

        def reader(ctx):
            if ctx.rank == 0:
                pattern = sparse_pattern(0, n_ranks=2, block=16, count=4)
                data = yield from engine.read(ctx, pattern)
                return (pattern, data)
            yield from engine.read(ctx, AccessPattern(()))
            return None

        pattern, data = stack.run_spmd(reader)[0]
        expected = np.concatenate(
            [base[off : off + ln] for off, ln, _ in pattern.iter_mapped_extents()]
        )
        assert (data == expected).all()

    def test_write_preserves_holes(self):
        """Read-modify-write must not clobber other ranks' interleaved data."""
        stack = make_stack(n_ranks=2, n_nodes=1)
        engine = DataSievingIO(stack.comm, stack.pfs)
        base = rank_payload(7, 128)
        stack.pfs.datastore.write(0, base)
        mine = rank_payload(1, 64)

        def writer(ctx):
            if ctx.rank == 0:
                pattern = sparse_pattern(0, n_ranks=2, block=16, count=4)
                yield from engine.write(ctx, pattern, mine.copy())
            else:
                yield from engine.write(ctx, AccessPattern(()))

        stack.run_spmd(writer)
        got = stack.pfs.datastore.read(0, 128)
        # rank 0's blocks at 0,32,64,96 updated; holes untouched
        for i in range(4):
            assert (got[i * 32 : i * 32 + 16] == mine[i * 16 : (i + 1) * 16]).all()
            assert (got[i * 32 + 16 : i * 32 + 32] == base[i * 32 + 16 : i * 32 + 32]).all()

    def test_sieving_beats_independent_for_dense_patterns(self):
        """Dense noncontiguous requests: one hull op beats many small ops."""

        def elapsed(engine_cls):
            stack = make_stack(n_ranks=4, n_nodes=2, request_overhead=5e-3,
                               with_data=False)
            engine = engine_cls(stack.comm, stack.pfs)

            def writer(ctx):
                pattern = sparse_pattern(ctx.rank, block=64, count=32)
                yield from engine.write(ctx, pattern)

            stack.run_spmd(writer)
            return engine.history[0].elapsed

        assert elapsed(DataSievingIO) < elapsed(IndependentIO)

    def test_collective_beats_both_for_interleaved(self):
        """The paper's premise: collective I/O wins on shared interleaved files."""

        def bandwidth(engine_factory):
            stack = make_stack(n_ranks=8, n_nodes=2, request_overhead=5e-3,
                               with_data=False)
            engine = engine_factory(stack)

            def writer(ctx):
                pattern = sparse_pattern(ctx.rank, n_ranks=8, block=64, count=32)
                yield from engine.write(ctx, pattern)

            stack.run_spmd(writer)
            return engine.history[0].bandwidth

        collective = bandwidth(lambda s: TwoPhaseCollectiveIO(s.comm, s.pfs))
        independent = bandwidth(lambda s: IndependentIO(s.comm, s.pfs))
        assert collective > independent

    def test_empty_pattern_noop(self):
        stack = make_stack(n_ranks=2, n_nodes=1)
        engine = DataSievingIO(stack.comm, stack.pfs)

        def main(ctx):
            yield from engine.write(ctx, AccessPattern(()))
            got = yield from engine.read(ctx, AccessPattern(()))
            return got

        results = stack.run_spmd(main)
        assert results == [None, None]
        assert engine.history[0].total_bytes == 0
