"""Tests for the parameter-tuning sweeps."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core.tuning import (
    measure_node_throughput,
    measure_system_throughput,
    tune,
    tune_node,
    tune_system,
)


def small_spec(nic_bandwidth=1e8, servers=4, server_bandwidth=1e8,
               request_overhead=1e-4):
    return ClusterSpec(
        nodes=8,
        node=NodeSpec(
            cores=4,
            memory_bytes=10**9,
            memory_bandwidth=1e9,
            memory_channels=2,
            nic_bandwidth=nic_bandwidth,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=servers,
            server_bandwidth=server_bandwidth,
            request_overhead=request_overhead,
            stripe_size=4096,
        ),
    )


def test_node_throughput_positive_and_bounded():
    spec = small_spec()
    t = measure_node_throughput(spec, n_aggs=1, msg_size=65536)
    assert 0 < t <= spec.node.nic_bandwidth * 1.01


def test_more_aggregators_do_not_hurt_node_throughput():
    spec = small_spec()
    t1 = measure_node_throughput(spec, n_aggs=1, msg_size=16384)
    t2 = measure_node_throughput(spec, n_aggs=4, msg_size=16384)
    assert t2 >= t1 * 0.99


def test_larger_messages_amortize_overhead():
    spec = small_spec(request_overhead=1e-2)
    small = measure_node_throughput(spec, n_aggs=1, msg_size=4096)
    large = measure_node_throughput(spec, n_aggs=1, msg_size=262144)
    assert large > small


def test_measure_validation():
    spec = small_spec()
    with pytest.raises(ValueError):
        measure_node_throughput(spec, n_aggs=0, msg_size=1024)
    with pytest.raises(ValueError):
        measure_system_throughput(spec, n_agg_nodes=0, nah=1, msg_ind=1024)


def test_tune_node_picks_cheapest_saturating_config():
    spec = small_spec()
    result = tune_node(
        spec,
        nah_candidates=[1, 2, 4],
        msg_candidates=[4096, 65536, 262144],
    )
    assert result.nah in (1, 2, 4)
    assert result.msg_ind in (4096, 65536, 262144)
    assert result.throughput > 0
    assert result.node_mem_min == result.nah * result.msg_ind
    assert result.mem_min == result.msg_ind
    # cheapest: a strictly larger config must not be required
    best = max(
        measure_node_throughput(spec, n, m)
        for n in (1, 2, 4)
        for m in (4096, 65536, 262144)
    )
    assert result.throughput >= 0.95 * best


def test_system_throughput_grows_until_storage_saturates():
    spec = small_spec(nic_bandwidth=1e8, servers=4, server_bandwidth=1e8)
    t1, _ = measure_system_throughput(spec, 1, nah=1, msg_ind=262144)
    t4, _ = measure_system_throughput(spec, 4, nah=1, msg_ind=262144)
    assert t4 > t1  # more nodes -> more aggregate injection
    # and bounded by the storage aggregate
    assert t4 <= spec.storage.aggregate_bandwidth * 1.01


def test_tune_system_returns_consistent_msg_group():
    spec = small_spec()
    result = tune_system(spec, nah=2, msg_ind=65536, max_agg_nodes=8)
    assert 1 <= result.agg_nodes <= 8
    assert result.msg_group == result.agg_nodes * 2 * 65536
    assert result.throughput > 0
    assert result.finish_time_std >= 0


def test_full_tune_produces_valid_config():
    spec = small_spec()
    cfg = tune(spec, cb_buffer_size=32768)
    assert cfg.cb_buffer_size == 32768
    assert cfg.msg_ind <= cfg.msg_group
    assert cfg.nah >= 1
    # the tuned memory floor flows into min_buffer, not mem_min
    assert cfg.mem_min == 0
    assert cfg.min_buffer == max(1, cfg.msg_ind // 4)


def test_threshold_validation():
    spec = small_spec()
    with pytest.raises(ValueError):
        tune_node(spec, threshold=0)
    with pytest.raises(ValueError):
        tune_system(spec, nah=1, msg_ind=1024, threshold=1.5)


def test_tuning_deterministic():
    spec = small_spec()
    a = tune_node(spec, nah_candidates=[1, 2], msg_candidates=[4096, 65536])
    b = tune_node(spec, nah_candidates=[1, 2], msg_candidates=[4096, 65536])
    assert a == b
