"""Golden-trace replay for the node-level vectorized driver.

The fixtures in ``tests/goldens/goldens_vectorized.json`` pin four
cells — ``{write, read} x {remerge, borrow}`` (see
:mod:`tests.goldens.vectorized_cases`):

* the accepted-path cells pin the vectorized driver's own stats and
  simulated clock, so changes to its batched-transfer arithmetic,
  window staging, or barrier charges are diff-detectable;
* the refused-path cells pin the ``lender-domains`` refusal and the
  per-rank borrow fallback it triggers, so the refusal seam cannot
  silently drift.

Regenerate only by deliberate decision via
``python -m tests.goldens.generate_vectorized``.
"""

import json
from pathlib import Path

import pytest

from tests.goldens.vectorized_cases import (
    OPS,
    VEC_CASES,
    run_vectorized_case,
    vectorized_case_id,
)

GOLDEN_PATH = Path(__file__).parents[1] / "goldens" / "goldens_vectorized.json"

with GOLDEN_PATH.open() as fh:
    GOLDENS = json.load(fh)

CELLS = [(case, op) for case in VEC_CASES for op in OPS]


@pytest.mark.parametrize(
    "case,op", CELLS, ids=[vectorized_case_id(c, o) for c, o in CELLS]
)
def test_vectorized_golden_bit_identical(case, op):
    key = vectorized_case_id(case, op)
    assert key in GOLDENS, (
        f"no golden recorded for {key}; run "
        "`python -m tests.goldens.generate_vectorized` on the reference driver"
    )
    expected = GOLDENS[key]
    actual = run_vectorized_case(case, op)

    # compare stats field-by-field first for a readable failure
    for field, want in expected["stats"].items():
        got = actual["stats"][field]
        assert got == want, (
            f"{key}: stats.{field} diverged: got {got!r}, golden {want!r}"
        )
    assert set(actual["stats"]) == set(expected["stats"]), (
        f"{key}: recorded stats fields changed; regenerate deliberately"
    )
    assert actual["final_now_hex"] == expected["final_now_hex"], (
        f"{key}: final simulated clock diverged "
        f"(got {float.fromhex(actual['final_now_hex'])}, "
        f"golden {float.fromhex(expected['final_now_hex'])})"
    )


def test_vectorized_golden_matrix_is_complete():
    """Every vectorized cell has a recorded fixture and vice versa."""
    expected_keys = {vectorized_case_id(c, o) for c, o in CELLS}
    assert expected_keys == set(GOLDENS), (
        "vectorized golden fixture set does not match the case matrix; "
        "regenerate"
    )


def test_goldens_pin_both_paths():
    """The matrix must cover an accepted and a refused vectorization."""
    modes = {rec["stats"]["execution_mode"] for rec in GOLDENS.values()}
    assert modes == {"vectorized", "per-rank"}
    refused = [r for r in GOLDENS.values() if r["stats"]["vectorized_refusals"]]
    assert len(refused) == 2
    assert all(
        r["stats"]["extra"]["vectorized_refusal"] == "lender-domains"
        for r in refused
    )
    assert all(r["stats"]["leases_granted"] > 0 for r in refused)
