"""Tests for the binary partition tree and the Figure 5 remerge cases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition_tree import PartitionTree
from repro.core.request import Extent


def dense(lo, hi):
    """Every byte of the region is requested."""
    return hi - lo


def make_tree(length=1024, msg_ind=100, stripe=0, offset=0, data=dense):
    return PartitionTree(
        Extent(offset, length), data, msg_ind=msg_ind, stripe_size=stripe
    )


class TestConstruction:
    def test_small_region_single_leaf(self):
        tree = make_tree(length=50, msg_ind=100)
        assert tree.n_leaves == 1
        assert tree.leaves()[0].extent == Extent(0, 50)

    def test_dense_region_splits_to_msg_ind(self):
        tree = make_tree(length=1024, msg_ind=128)
        leaves = tree.leaves()
        assert len(leaves) == 8
        assert all(leaf.extent.length <= 128 for leaf in leaves)
        tree.check_invariant()

    def test_termination_by_data_not_width(self):
        # only the first 100 bytes carry data: one split suffices even
        # though the region is wide
        def sparse(lo, hi):
            return max(0, min(hi, 100) - lo)

        tree = PartitionTree(Extent(0, 1 << 20), sparse, msg_ind=50)
        leaves = tree.leaves()
        # leaves covering byte ranges beyond 100 hold no data and stay fat
        for leaf in leaves:
            assert sparse(leaf.extent.offset, leaf.extent.end) <= 50
        tree.check_invariant()

    def test_stripe_aligned_cuts(self):
        tree = make_tree(length=1000, msg_ind=100, stripe=64)
        for leaf in tree.leaves()[:-1]:
            assert leaf.extent.end % 64 == 0 or leaf.extent.end == 1000

    def test_offset_region(self):
        tree = make_tree(length=512, msg_ind=100, offset=777)
        tree.check_invariant()
        assert tree.leaves()[0].extent.offset == 777

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionTree(Extent(0, 0), dense, msg_ind=10)
        with pytest.raises(ValueError):
            make_tree(msg_ind=0)
        with pytest.raises(ValueError):
            PartitionTree(Extent(0, 10), dense, msg_ind=1, min_width=1)

    def test_min_width_stops_recursion(self):
        tree = PartitionTree(Extent(0, 16), dense, msg_ind=1, min_width=4)
        assert all(leaf.extent.length >= 2 for leaf in tree.leaves())
        tree.check_invariant()


class TestRemerge:
    def test_remerge_case1_sibling_leaf(self):
        """Figure 5a: sibling B is a leaf; parent becomes the merged leaf."""
        tree = make_tree(length=400, msg_ind=100)
        leaves = tree.leaves()
        a = leaves[0]
        b = leaves[1]
        assert a.sibling() is b  # adjacent leaves sharing a parent
        absorber = tree.remerge(a)
        assert absorber.extent == Extent(0, 200)
        assert tree.n_leaves == len(leaves) - 1
        tree.check_invariant()

    def test_remerge_case2_dfs_left(self):
        """Figure 5b: sibling is internal; DFS finds the adjacent leaf."""
        # data density: left half light (no split), right half heavy
        def data(lo, hi):
            light = max(0, min(hi, 512) - lo) // 8
            heavy = max(0, hi - max(lo, 512))
            return light + heavy

        tree = PartitionTree(Extent(0, 1024), data, msg_ind=128)
        leaves = tree.leaves()
        a = leaves[0]  # the light left half [0, 512)
        assert a.extent == Extent(0, 512)
        assert not a.sibling().is_leaf  # right side was split further
        n_before = tree.n_leaves
        absorber = tree.remerge(a)
        # the absorbing leaf is A's right neighbour: it must now start at 0
        assert absorber.extent.offset == 0
        assert tree.n_leaves == n_before - 1
        tree.check_invariant()

    def test_remerge_case2_dfs_right(self):
        """Departing right leaf is absorbed by its left neighbour."""
        def data(lo, hi):
            heavy = max(0, min(hi, 512) - lo)
            light = max(0, hi - max(lo, 512)) // 8
            return heavy + light

        tree = PartitionTree(Extent(0, 1024), data, msg_ind=128)
        leaves = tree.leaves()
        a = leaves[-1]  # the light right half
        assert a.extent == Extent(512, 512)
        assert not a.sibling().is_leaf
        absorber = tree.remerge(a)
        assert absorber.extent.end == 1024
        tree.check_invariant()

    def test_remerge_root_rejected(self):
        tree = make_tree(length=50, msg_ind=100)  # single leaf
        with pytest.raises(ValueError):
            tree.remerge(tree.leaves()[0])

    def test_remerge_internal_rejected(self):
        tree = make_tree(length=400, msg_ind=100)
        with pytest.raises(ValueError):
            tree.remerge(tree.root)

    def test_remerge_until_one_leaf(self):
        tree = make_tree(length=1024, msg_ind=64)
        while tree.n_leaves > 1:
            tree.remerge(tree.leaves()[0])
            tree.check_invariant()
        assert tree.leaves()[0].extent == Extent(0, 1024)

    def test_neighbour_adjacency(self):
        """The absorber is always file-adjacent to the departing leaf."""
        tree = make_tree(length=2048, msg_ind=100)
        leaves = tree.leaves()
        victim = leaves[3]
        lo, hi = victim.extent.offset, victim.extent.end
        absorber = tree.remerge(victim)
        assert absorber.extent.offset == lo or absorber.extent.end == hi  # swallowed
        assert absorber.extent.contains(lo) or absorber.extent.contains(hi - 1)


@given(
    length=st.integers(2, 4096),
    msg_ind=st.integers(1, 512),
    stripe=st.sampled_from([0, 16, 64]),
    seed=st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_partition_invariant_under_random_remerges(length, msg_ind, stripe, seed):
    """Leaves always partition the region, through any remerge sequence."""
    tree = PartitionTree(Extent(0, length), dense, msg_ind=msg_ind, stripe_size=stripe)
    tree.check_invariant()
    while tree.n_leaves > 1:
        leaves = tree.leaves()
        victim = leaves[seed.randrange(len(leaves))]
        tree.remerge(victim)
        tree.check_invariant()
    assert tree.leaves()[0].extent == Extent(0, length)


@given(
    length=st.integers(2, 8192),
    msg_ind=st.integers(1, 1024),
)
@settings(max_examples=100, deadline=None)
def test_leaf_data_bounded_by_msg_ind_or_min_width(length, msg_ind):
    """Every leaf holds <= msg_ind data, unless width hit the floor."""
    tree = PartitionTree(Extent(0, length), dense, msg_ind=msg_ind, min_width=2)
    for leaf in tree.leaves():
        data = dense(leaf.extent.offset, leaf.extent.end)
        assert data <= msg_ind or leaf.extent.length < 2
