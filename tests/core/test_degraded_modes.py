"""Graceful degradation: planning fallbacks and chaos determinism."""

import numpy as np
import pytest

import repro.core.engine as engine_mod
from repro.cluster.background import BackgroundLoad
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.aggregator_selection import PlacementError
from repro.core.request import AccessPattern, StridedSegment
from repro.faults import FaultInjector, FaultSchedule

from tests.helpers import make_stack, rank_payload

KIB = 1024
MIB = 1024 * 1024


def make_engine(stack, **kw):
    defaults = dict(
        msg_group=64 * MIB, msg_ind=64 * MIB, mem_min=0, nah=2,
        cb_buffer_size=64 * KIB,
    )
    defaults.update(kw)
    return MemoryConsciousCollectiveIO(
        stack.comm, stack.pfs, MCIOConfig(**defaults)
    )


def contiguous_patterns(n, width):
    return [AccessPattern.contiguous(r * width, width) for r in range(n)]


def roundtrip_write(stack, engine, make_pattern):
    payloads = {}

    def main(ctx):
        pattern = make_pattern(ctx.rank)
        payloads[ctx.rank] = rank_payload(ctx.rank, pattern.nbytes)
        yield from engine.write(ctx, pattern, payloads[ctx.rank].copy())

    stack.run_spmd(main)
    return payloads


def verify_contiguous(stack, payloads, width):
    for rank, payload in payloads.items():
        got = stack.pfs.datastore.read(rank * width, width)
        np.testing.assert_array_equal(
            got, payload, err_msg=f"rank {rank} data corrupt"
        )


class TestPlanFailurePaths:
    def test_mem_min_floor_raises_enriched_error(self):
        stack = make_stack()
        engine = make_engine(stack, mem_min=10**15, allow_paged_fallback=False)
        patterns = contiguous_patterns(stack.comm.size, 64 * KIB)
        memory = {n: 10**6 for n in range(3)}
        with pytest.raises(PlacementError) as exc_info:
            engine.plan(patterns, memory)
        err = exc_info.value
        assert err.group_id is not None
        assert err.domain is not None
        assert err.best_mem_avl is not None
        assert err.best_mem_avl < 10**15

    def test_paged_fallback_disabled_raises(self):
        stack = make_stack()
        engine = make_engine(stack, allow_paged_fallback=False)
        patterns = contiguous_patterns(stack.comm.size, 1 * MIB)
        # nothing fits anywhere: every placement would page
        memory = {n: 1024 for n in range(3)}
        with pytest.raises(PlacementError):
            engine.plan(patterns, memory)

    def test_paged_fallback_enabled_plans_anyway(self):
        stack = make_stack()
        engine = make_engine(stack)
        patterns = contiguous_patterns(stack.comm.size, 1 * MIB)
        memory = {n: 1024 for n in range(3)}
        plan = engine.plan(patterns, memory)
        assert any(d.paged for d in plan.domains)

    def test_failed_nodes_soft_excluded(self):
        stack = make_stack()
        engine = make_engine(stack)
        patterns = contiguous_patterns(stack.comm.size, 256 * KIB)
        memory = {n: 10**8 for n in range(3)}
        plan = engine.plan(patterns, memory, failed_nodes=frozenset({0}))
        for d in plan.domains:
            assert stack.comm.placement[d.aggregator_rank] != 0


class TestFallbackChain:
    WIDTH = 256 * KIB

    def test_placement_failure_degrades_to_two_phase(self):
        stack = make_stack()
        engine = make_engine(
            stack, mem_min=10**15, allow_paged_fallback=False,
            fallback_chain=True,
        )
        payloads = roundtrip_write(
            stack, engine, lambda r: AccessPattern.contiguous(
                r * self.WIDTH, self.WIDTH)
        )
        stats = engine.history[-1]
        assert stats.degraded_tier == "two-phase"
        assert stats.tier == "two-phase"
        assert stats.extra.get("fallback_reason")
        verify_contiguous(stack, payloads, self.WIDTH)

    def test_placement_failure_without_chain_raises(self):
        stack = make_stack()
        engine = make_engine(
            stack, mem_min=10**15, allow_paged_fallback=False,
            fallback_chain=False,
        )
        with pytest.raises(PlacementError):
            roundtrip_write(
                stack, engine, lambda r: AccessPattern.contiguous(
                    r * self.WIDTH, self.WIDTH)
            )

    def test_two_phase_failure_degrades_to_independent(self, monkeypatch):
        stack = make_stack()
        engine = make_engine(
            stack, mem_min=10**15, allow_paged_fallback=False,
            fallback_chain=True,
        )
        monkeypatch.setattr(
            engine, "_two_phase_plan", lambda *a, **kw: None
        )
        payloads = roundtrip_write(
            stack, engine, lambda r: AccessPattern.contiguous(
                r * self.WIDTH, self.WIDTH)
        )
        stats = engine.history[-1]
        assert stats.degraded_tier == "independent"
        verify_contiguous(stack, payloads, self.WIDTH)


class TestUnionBlockLimit:
    def test_covering_extent_fallback_preserves_data(self, monkeypatch):
        """Forcing the per-round union past the limit must only cost
        accuracy of the I/O accounting, never correctness."""
        monkeypatch.setattr(engine_mod, "_UNION_BLOCK_LIMIT", 2)
        stack = make_stack()
        engine = make_engine(stack)
        chunk, blocks = 4 * KIB, 16
        n = stack.comm.size

        def pattern(rank):
            return AccessPattern(
                (StridedSegment(rank * chunk, chunk, n * chunk, blocks),)
            )

        payloads = roundtrip_write(stack, engine, pattern)
        for rank, payload in payloads.items():
            for i in range(blocks):
                got = stack.pfs.datastore.read(
                    rank * chunk + i * n * chunk, chunk
                )
                np.testing.assert_array_equal(
                    got, payload[i * chunk:(i + 1) * chunk]
                )


class TestChaosDeterminism:
    """Same seed => byte-identical stats, even under background churn
    and injected faults."""

    WIDTH = 256 * KIB

    def _chaos_run(self, seed):
        stack = make_stack(seed=seed, memory_bytes=10**7)
        load = BackgroundLoad(
            stack.cluster, mean_bytes=8 * 10**6, sigma_bytes=10**6,
            period=0.05,
        )
        load.start()
        schedule = FaultSchedule.generate(
            seed,
            horizon=5.0,
            n_servers=len(stack.pfs.servers),
            n_nodes=3,
            server_slowdown_rate=0.5,
            server_outage_rate=0.2,
            memory_shock_rate=0.5,
            node_failure_rate=0.2,
            failure_duration=1.0,
            spare_nodes=(2,),
        )
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        injector.start()
        from repro.pfs import RetryPolicy

        stack.pfs.retry = RetryPolicy(
            request_timeout=30.0, backoff_base=0.01, backoff_cap=0.2,
            max_retries=25,
        )
        engine = make_engine(stack, nah=4)
        roundtrip_write(
            stack, engine, lambda r: AccessPattern.contiguous(
                r * self.WIDTH, self.WIDTH)
        )
        injector.stop()
        load.stop()
        return engine.history[-1]

    def test_same_seed_identical_stats(self):
        a = self._chaos_run(11)
        b = self._chaos_run(11)
        assert a == b

    def test_different_seed_differs(self):
        a = self._chaos_run(11)
        b = self._chaos_run(12)
        assert a != b
