"""Golden-trace equivalence: the optimized engine vs the seed engine.

The fixtures under ``tests/goldens/`` were recorded by running the
pre-optimisation engine over the seeded workload matrix
``{mcio, two-phase, independent} x {read, write} x 3 cluster specs``
(see :mod:`tests.goldens.cases`).  This suite re-runs every cell on the
current engine and asserts the results are **bit-identical**:

* every :class:`~repro.core.metrics.CollectiveStats` field, with the
  elapsed time compared via ``float.hex`` (full precision, no tolerance);
* the final simulated clock;
* the PFS datastore byte image (sha256);
* for reads, every rank's returned payload bytes.

Any simulator optimisation that changes event ordering, cost arithmetic,
or planning output for fault-free runs fails here; regenerate only by
deliberate decision via ``python -m tests.goldens.generate``.
"""

import json
from pathlib import Path

import pytest

from tests.goldens.cases import CLUSTER_CASES, OPS, STRATEGIES, case_id, run_case

GOLDEN_PATH = Path(__file__).parents[1] / "goldens" / "goldens.json"

with GOLDEN_PATH.open() as fh:
    GOLDENS = json.load(fh)


CELLS = [
    (strategy, op, case)
    for case in CLUSTER_CASES
    for strategy in STRATEGIES
    for op in OPS
]


@pytest.mark.parametrize(
    "strategy,op,case",
    CELLS,
    ids=[case_id(s, o, c) for s, o, c in CELLS],
)
def test_golden_trace_bit_identical(strategy, op, case):
    key = case_id(strategy, op, case)
    assert key in GOLDENS, (
        f"no golden recorded for {key}; run `python -m tests.goldens.generate` "
        "on the reference engine"
    )
    expected = GOLDENS[key]
    actual = run_case(strategy, op, case)

    # compare stats field-by-field first for a readable failure
    for field, want in expected["stats"].items():
        got = actual["stats"][field]
        assert got == want, (
            f"{key}: stats.{field} diverged: got {got!r}, golden {want!r}"
        )
    assert actual["final_now_hex"] == expected["final_now_hex"], (
        f"{key}: final simulated clock diverged "
        f"(got {float.fromhex(actual['final_now_hex'])}, "
        f"golden {float.fromhex(expected['final_now_hex'])})"
    )
    assert actual["datastore_sha256"] == expected["datastore_sha256"], (
        f"{key}: PFS datastore bytes diverged"
    )
    assert actual.get("rank_payload_sha256") == expected.get(
        "rank_payload_sha256"
    ), f"{key}: a rank's read-back payload diverged"


MCIO_CELLS = [(s, o, c) for s, o, c in CELLS if s == "mcio"]


@pytest.mark.parametrize(
    "strategy,op,case",
    MCIO_CELLS,
    ids=[case_id(s, o, c) + "/plan-cache" for s, o, c in MCIO_CELLS],
)
def test_golden_trace_with_plan_cache(strategy, op, case):
    """Enabling the plan cache must not perturb fault-free goldens.

    Plan reuse only skips host-side planning work; simulated time, stats,
    and datastore bytes must stay bit-identical to the recorded traces.
    """
    expected = GOLDENS[case_id(strategy, op, case)]
    actual = run_case(strategy, op, case, mcio_overrides={"plan_cache": True})
    for field, want in expected["stats"].items():
        assert actual["stats"][field] == want, f"stats.{field} diverged"
    assert actual["final_now_hex"] == expected["final_now_hex"]
    assert actual["datastore_sha256"] == expected["datastore_sha256"]
    assert actual.get("rank_payload_sha256") == expected.get(
        "rank_payload_sha256"
    )


# the "pressure" case has skewed memory, so hybrid placement genuinely
# borrows there (covered by tests/core/test_borrow.py); the replay below
# asserts the *never-triggered* cells instead
NO_LENDER_CELLS = [(s, o, c) for s, o, c in MCIO_CELLS if c.name != "pressure"]


@pytest.mark.parametrize(
    "strategy,op,case",
    NO_LENDER_CELLS,
    ids=[case_id(s, o, c) + "/hybrid" for s, o, c in NO_LENDER_CELLS],
)
def test_golden_trace_with_hybrid_placement(strategy, op, case):
    """Borrow-*capable* placement must not perturb fault-free goldens.

    These cells are either uniformly memory-rich (no domain ever needs a
    remote buffer) or uniformly tight (adaptive shrinking wins before a
    lender is sought), so ``placement_policy="hybrid"`` takes the exact
    remerge code path: no lease is granted, no ``borrow.*`` event fires,
    and simulated time, stats, and datastore bytes stay bit-identical.
    """
    expected = GOLDENS[case_id(strategy, op, case)]
    actual = run_case(
        strategy, op, case, mcio_overrides={"placement_policy": "hybrid"}
    )
    for field, want in expected["stats"].items():
        assert actual["stats"][field] == want, f"stats.{field} diverged"
    assert actual["final_now_hex"] == expected["final_now_hex"]
    assert actual["datastore_sha256"] == expected["datastore_sha256"]
    assert actual.get("rank_payload_sha256") == expected.get(
        "rank_payload_sha256"
    )


def test_golden_matrix_is_complete():
    """Every matrix cell has a recorded fixture and vice versa."""
    expected_keys = {case_id(s, o, c) for s, o, c in CELLS}
    assert expected_keys == set(GOLDENS), (
        "golden fixture set does not match the case matrix; regenerate"
    )
