"""PatternArray vs generic AccessPattern code paths.

The array type promises pure speed: every planner question it answers
(`senders_in`, byte counts, extent unions, group division, plan
building, aggregator candidate hosts) must return exactly what the
generic per-pattern walk returns for the equivalent
``list[AccessPattern]``.  These tests pin that equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregator_selection import candidate_hosts
from repro.core.engine import ExecutionPlan, _union_extents
from repro.core.group_division import divide_groups
from repro.core.pattern_array import PatternArray
from repro.core.request import AccessPattern, Extent


def materialize(pa: PatternArray) -> list[AccessPattern]:
    """The equivalent list of real AccessPatterns."""
    return [pa[r] for r in range(len(pa))]


def assorted_arrays():
    """A spread of layouts: tiled, gappy, overlapping, with empty ranks."""
    rng = np.random.default_rng(7)
    yield "tiled", PatternArray.tiled(16, 1000)
    yield "tiled-offset", PatternArray.tiled(9, 640, base=12345)
    yield "gappy", PatternArray(
        starts=[0, 5000, 5000 + 700, 9000, 20000, 20000],
        lengths=[4096, 700, 0, 1, 300, 0],
    )
    starts = rng.integers(0, 50_000, size=40)
    lengths = rng.integers(0, 3_000, size=40)
    yield "random-overlapping", PatternArray(starts, lengths)
    yield "single", PatternArray([77], [123])
    yield "all-empty", PatternArray([10, 20, 30], [0, 0, 0])


def windows_for(pa: PatternArray):
    """Windows that cut through, cover, and miss the workload."""
    if not pa.any_active:
        return [(0, 100), (50, 60)]
    lo, hi = pa.bounds()
    span = hi - lo
    return [
        (lo, hi),
        (max(0, lo - 10), hi + 10),
        (lo + span // 3, lo + 2 * span // 3 + 1),
        (lo, lo + 1),
        (hi, hi + 100),          # entirely past the data
        (max(0, lo - 100), lo),  # entirely before it
    ]


# ---------------------------------------------------------------------------
# construction + sequence protocol


def test_getitem_materialises_equivalent_patterns():
    pa = PatternArray([0, 100, 250], [50, 0, 75])
    assert len(pa) == 3
    for r, p in enumerate(pa):
        assert isinstance(p, AccessPattern)
        assert p == pa[r]
    assert pa[0].nbytes == 50 and pa[0].start == 0 and pa[0].end == 50
    assert pa[1].empty
    assert pa[2].bytes_in(250, 300) == 50


def test_slice_returns_pattern_array():
    pa = PatternArray.tiled(10, 64)
    sub = pa[3:7]
    assert isinstance(sub, PatternArray)
    assert len(sub) == 4
    assert materialize(sub) == materialize(pa)[3:7]


def test_tiled_layout():
    pa = PatternArray.tiled(5, 128, base=1000)
    assert [p.start for p in pa] == [1000 + r * 128 for r in range(5)]
    assert pa.total_bytes == 5 * 128
    assert pa.bounds() == (1000, 1000 + 5 * 128)


@pytest.mark.parametrize(
    "starts, lengths, msg",
    [
        ([0, 1], [5], "equal length"),
        ([[0, 1]], [[5, 5]], "1-D"),
        ([-1], [5], "negative start"),
        ([0], [-5], "negative length"),
    ],
)
def test_rejects_malformed_arrays(starts, lengths, msg):
    with pytest.raises(ValueError, match=msg):
        PatternArray(starts, lengths)


def test_properties_match_generic():
    for name, pa in assorted_arrays():
        pats = materialize(pa)
        active = [p for p in pats if not p.empty]
        assert pa.total_bytes == sum(p.nbytes for p in pats), name
        assert pa.any_active == bool(active), name
        expected_seg = max((p.segment_count for p in active), default=0)
        assert pa.max_segment_count == expected_seg, name
        if active:
            assert pa.bounds() == (
                min(p.start for p in active),
                max(p.end for p in active),
            ), name
        else:
            with pytest.raises(ValueError, match="all-empty"):
                pa.bounds()


# ---------------------------------------------------------------------------
# window queries vs the generic per-pattern walk


def test_senders_and_byte_counts_match_generic():
    for name, pa in assorted_arrays():
        pats = materialize(pa)
        for lo, hi in windows_for(pa):
            want = [
                r
                for r, p in enumerate(pats)
                if not p.empty and p.bytes_in(lo, hi) > 0
            ]
            got = pa.senders_in(lo, hi).tolist()
            assert got == want, f"{name} senders_in({lo},{hi})"

            ranks = np.arange(len(pa))
            per_rank = pa.bytes_in_many(ranks, lo, hi).tolist()
            assert per_rank == [p.bytes_in(lo, hi) for p in pats], name

            assert pa.sum_bytes_in(lo, hi) == sum(
                p.bytes_in(lo, hi) for p in pats
            ), name
            assert pa.sum_bytes_in(lo, hi, ranks=want) == sum(
                pats[r].bytes_in(lo, hi) for r in want
            ), name
            assert pa.sum_bytes_in(lo, hi, ranks=[]) == 0, name


def test_union_extents_matches_engine_union():
    for name, pa in assorted_arrays():
        pats = materialize(pa)
        for lo, hi in windows_for(pa):
            senders = pa.senders_in(lo, hi).tolist()
            want = _union_extents(pats, senders, Extent(lo, hi - lo))
            got = pa.union_extents(senders, lo, hi)
            assert got == want, f"{name} union({lo},{hi})"


def test_union_merges_touching_blocks():
    # ranks 0 and 1 touch exactly at 100; rank 2 is disjoint
    pa = PatternArray([0, 100, 500], [100, 50, 10])
    assert pa.union_extents([0, 1, 2], 0, 1000) == [
        Extent(0, 150),
        Extent(500, 10),
    ]


def test_union_block_limit_collapses_to_covering_extent(monkeypatch):
    import repro.core.pattern_array as pa_mod

    monkeypatch.setattr(pa_mod, "_UNION_BLOCK_LIMIT", 3)
    pa = PatternArray([0, 10, 20, 30, 40], [5, 5, 5, 5, 5])
    assert pa.union_extents(range(5), 0, 100) == [Extent(0, 45)]


# ---------------------------------------------------------------------------
# planner dispatch: identical plans either way


def test_divide_groups_identical():
    for name, pa in assorted_arrays():
        pats = materialize(pa)
        for msg_group in (512, 4096, 1 << 20):
            placement = [r % 3 for r in range(len(pa))]
            want = divide_groups(pats, placement, msg_group, stripe_size=256)
            got = divide_groups(pa, placement, msg_group, stripe_size=256)
            assert got == want, f"{name} msg_group={msg_group}"


def test_execution_plan_build_identical():
    from repro.core.filedomain import FileDomain

    for name, pa in assorted_arrays():
        if not pa.any_active:
            continue
        pats = materialize(pa)
        lo, hi = pa.bounds()
        third = max(1, (hi - lo) // 3)
        domains = [
            FileDomain(
                extent=Extent(lo + i * third, min(third, hi - lo - i * third)),
                aggregator_rank=i % len(pa),
                buffer_bytes=1024,
            )
            for i in range(3)
            if hi - lo - i * third > 0
        ]
        want = ExecutionPlan.build(domains, pats)
        got = ExecutionPlan.build(domains, pa)
        assert got.senders == want.senders, name
        assert got.domains == want.domains, name


def test_candidate_hosts_identical():
    for name, pa in assorted_arrays():
        if not pa.any_active:
            continue
        pats = materialize(pa)
        lo, hi = pa.bounds()
        placement = [r % 4 for r in range(len(pa))]
        ranks = list(range(len(pa)))
        for domain in (Extent(lo, hi - lo), Extent(lo, max(1, (hi - lo) // 2))):
            want = candidate_hosts(domain, ranks, pats, placement)
            got = candidate_hosts(domain, ranks, pa, placement)
            assert got == want, name
