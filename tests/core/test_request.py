"""Tests for the extent algebra (Extent, StridedSegment, AccessPattern).

The property tests cross-check the O(1) strided arithmetic against naive
per-block expansion, which is the ground truth.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.request import (
    AccessPattern,
    Extent,
    StridedSegment,
    coalesce_extents,
)


# ---------------------------------------------------------------------------
# Extent
# ---------------------------------------------------------------------------
class TestExtent:
    def test_end_and_contains(self):
        e = Extent(10, 5)
        assert e.end == 15
        assert e.contains(10) and e.contains(14)
        assert not e.contains(15) and not e.contains(9)

    def test_intersect(self):
        assert Extent(0, 10).intersect(Extent(5, 10)) == Extent(5, 5)
        assert Extent(0, 10).intersect(Extent(10, 5)) is None
        assert Extent(0, 10).intersect(Extent(20, 5)) is None

    def test_clip(self):
        assert Extent(0, 100).clip(10, 20) == Extent(10, 10)
        assert Extent(0, 100).clip(100, 200) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Extent(-1, 5)
        with pytest.raises(ValueError):
            Extent(0, -5)

    def test_empty(self):
        assert Extent(5, 0).empty
        assert not Extent(5, 1).empty

    def test_coalesce_extents(self):
        out = coalesce_extents([Extent(10, 5), Extent(0, 5), Extent(5, 5), Extent(30, 1)])
        assert out == [Extent(0, 15), Extent(30, 1)]

    def test_coalesce_drops_empty(self):
        assert coalesce_extents([Extent(5, 0)]) == []

    def test_coalesce_overlapping(self):
        assert coalesce_extents([Extent(0, 10), Extent(5, 10)]) == [Extent(0, 15)]


# ---------------------------------------------------------------------------
# StridedSegment
# ---------------------------------------------------------------------------
def expand(seg: StridedSegment) -> set[int]:
    """Ground truth: the set of byte offsets a segment covers."""
    covered = set()
    for i in range(seg.count):
        start = seg.offset + i * seg.stride
        covered.update(range(start, start + seg.block))
    return covered


class TestStridedSegment:
    def test_basic_properties(self):
        s = StridedSegment(offset=10, block=4, stride=10, count=3)
        assert s.nbytes == 12
        assert s.start == 10
        assert s.end == 34
        assert not s.contiguous

    def test_contiguous_cases(self):
        assert StridedSegment(0, 8, 8, 4).contiguous
        assert StridedSegment(0, 8, 100, 1).contiguous

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedSegment(-1, 4, 8, 2)
        with pytest.raises(ValueError):
            StridedSegment(0, 0, 8, 2)
        with pytest.raises(ValueError):
            StridedSegment(0, 4, 8, 0)
        with pytest.raises(ValueError):
            StridedSegment(0, 8, 4, 2)  # stride < block

    def test_block_extent(self):
        s = StridedSegment(10, 4, 10, 3)
        assert s.block_extent(0) == Extent(10, 4)
        assert s.block_extent(2) == Extent(30, 4)
        with pytest.raises(IndexError):
            s.block_extent(3)

    def test_iter_extents(self):
        s = StridedSegment(0, 2, 5, 3)
        assert list(s.iter_extents()) == [Extent(0, 2), Extent(5, 2), Extent(10, 2)]

    def test_bytes_in_simple(self):
        s = StridedSegment(0, 4, 10, 3)  # [0,4) [10,14) [20,24)
        assert s.bytes_in(0, 100) == 12
        assert s.bytes_in(0, 4) == 4
        assert s.bytes_in(2, 12) == 4  # half of block0 + half of block1
        assert s.bytes_in(4, 10) == 0  # gap
        assert s.bytes_in(50, 60) == 0

    def test_clip_head_middle_tail(self):
        s = StridedSegment(0, 4, 10, 5)  # blocks at 0,10,20,30,40
        pieces = s.clip(2, 33)
        total = sum(p.nbytes for p in pieces)
        assert total == s.bytes_in(2, 33)
        # pieces must be inside the window and disjoint
        covered = set()
        for p in pieces:
            ext = expand(p)
            assert all(2 <= b < 33 for b in ext)
            assert not (covered & ext)
            covered |= ext
        assert covered == {b for b in expand(s) if 2 <= b < 33}

    def test_clip_empty_window(self):
        s = StridedSegment(0, 4, 10, 3)
        assert s.clip(5, 5) == []
        assert s.clip(100, 200) == []

    def test_position_of(self):
        s = StridedSegment(0, 4, 10, 3)
        assert s.position_of(0) == 0
        assert s.position_of(2) == 2
        assert s.position_of(4) == 4
        assert s.position_of(7) == 4  # inside the gap
        assert s.position_of(10) == 4
        assert s.position_of(12) == 6
        assert s.position_of(24) == 12
        assert s.position_of(1000) == 12


segment_strategy = st.builds(
    lambda offset, block, gap, count: StridedSegment(
        offset, block, block + gap, count
    ),
    offset=st.integers(0, 200),
    block=st.integers(1, 20),
    gap=st.integers(0, 30),
    count=st.integers(1, 12),
)


@given(seg=segment_strategy, lo=st.integers(0, 400), span=st.integers(0, 400))
def test_bytes_in_matches_bruteforce(seg, lo, span):
    hi = lo + span
    truth = len([b for b in expand(seg) if lo <= b < hi])
    assert seg.bytes_in(lo, hi) == truth


@given(seg=segment_strategy, lo=st.integers(0, 400), span=st.integers(0, 400))
def test_clip_matches_bruteforce(seg, lo, span):
    hi = lo + span
    truth = {b for b in expand(seg) if lo <= b < hi}
    pieces = seg.clip(lo, hi)
    covered: set[int] = set()
    for p in pieces:
        ext = expand(p)
        assert not (covered & ext), "clip pieces overlap"
        covered |= ext
    assert covered == truth


@given(seg=segment_strategy, pos=st.integers(0, 500))
def test_position_of_matches_bruteforce(seg, pos):
    truth = len([b for b in sorted(expand(seg)) if b < pos])
    assert seg.position_of(pos) == truth


# ---------------------------------------------------------------------------
# AccessPattern
# ---------------------------------------------------------------------------
def pattern_strategy():
    """Non-overlapping ordered segments built by stacking gaps."""

    @st.composite
    def build(draw):
        n = draw(st.integers(0, 5))
        segments = []
        cursor = draw(st.integers(0, 50))
        for _ in range(n):
            block = draw(st.integers(1, 10))
            gap = draw(st.integers(0, 15))
            count = draw(st.integers(1, 6))
            seg = StridedSegment(cursor, block, block + gap, count)
            segments.append(seg)
            cursor = seg.end + draw(st.integers(0, 20))
        return AccessPattern(tuple(segments))

    return build()


def expand_pattern(p: AccessPattern) -> list[int]:
    out: list[int] = []
    for seg in p.segments:
        out.extend(sorted(expand(seg)))
    return out


class TestAccessPattern:
    def test_contiguous_constructor(self):
        p = AccessPattern.contiguous(100, 50)
        assert p.nbytes == 50
        assert p.start == 100 and p.end == 150
        assert p.segment_count == 1

    def test_contiguous_zero_length(self):
        p = AccessPattern.contiguous(100, 0)
        assert p.empty
        assert p.nbytes == 0

    def test_from_extents(self):
        p = AccessPattern.from_extents([Extent(0, 4), Extent(10, 4)])
        assert p.nbytes == 8
        assert p.block_count == 2

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            AccessPattern(
                (StridedSegment(0, 10, 10, 1), StridedSegment(5, 10, 10, 1))
            )

    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError):
            AccessPattern(
                (StridedSegment(100, 10, 10, 1), StridedSegment(0, 10, 10, 1))
            )

    def test_bytes_in_across_segments(self):
        p = AccessPattern(
            (StridedSegment(0, 4, 10, 2), StridedSegment(100, 8, 8, 1))
        )
        assert p.bytes_in(0, 200) == 16
        assert p.bytes_in(12, 104) == 6  # 2 bytes of block1 + 4 of the run

    def test_clip_returns_subpattern(self):
        p = AccessPattern.contiguous(0, 100)
        q = p.clip(25, 75)
        assert q.nbytes == 50
        assert q.start == 25 and q.end == 75

    def test_buffer_position(self):
        p = AccessPattern(
            (StridedSegment(0, 4, 10, 2), StridedSegment(100, 8, 8, 1))
        )
        assert p.buffer_position(0) == 0
        assert p.buffer_position(3) == 3
        assert p.buffer_position(10) == 4
        assert p.buffer_position(100) == 8
        assert p.buffer_position(104) == 12
        assert p.buffer_position(10**9) == 16

    def test_iter_mapped_extents(self):
        p = AccessPattern((StridedSegment(0, 4, 10, 2),))
        assert list(p.iter_mapped_extents()) == [(0, 4, 0), (10, 4, 4)]

    def test_coalesce_contiguous_runs(self):
        p = AccessPattern(
            (StridedSegment(0, 10, 10, 1), StridedSegment(10, 10, 10, 1))
        )
        q = p.coalesce()
        assert q.segment_count == 1
        assert q.nbytes == 20

    def test_coalesce_strided_continuation(self):
        p = AccessPattern(
            (StridedSegment(0, 4, 10, 3), StridedSegment(30, 4, 10, 2))
        )
        q = p.coalesce()
        assert q.segment_count == 1
        assert q.segments[0].count == 5

    def test_coalesce_respects_geometry_mismatch(self):
        p = AccessPattern(
            (StridedSegment(0, 4, 10, 3), StridedSegment(30, 5, 10, 2))
        )
        assert p.coalesce().segment_count == 2

    @given(p=pattern_strategy(), lo=st.integers(0, 300), span=st.integers(0, 300))
    @settings(max_examples=200)
    def test_pattern_bytes_in_matches_bruteforce(self, p, lo, span):
        hi = lo + span
        truth = len([b for b in expand_pattern(p) if lo <= b < hi])
        assert p.bytes_in(lo, hi) == truth

    @given(p=pattern_strategy(), lo=st.integers(0, 300), span=st.integers(0, 300))
    @settings(max_examples=200)
    def test_pattern_clip_matches_bruteforce(self, p, lo, span):
        hi = lo + span
        truth = [b for b in expand_pattern(p) if lo <= b < hi]
        clipped = p.clip(lo, hi)
        assert expand_pattern(clipped) == truth
        assert clipped.nbytes == len(truth)

    @given(p=pattern_strategy())
    def test_pattern_coalesce_preserves_bytes(self, p):
        q = p.coalesce()
        assert expand_pattern(q) == expand_pattern(p)
        assert q.segment_count <= p.segment_count

    @given(p=pattern_strategy(), pos=st.integers(0, 400))
    def test_pattern_buffer_position_matches_bruteforce(self, p, pos):
        truth = len([b for b in expand_pattern(p) if b < pos])
        assert p.buffer_position(pos) == truth

    @given(p=pattern_strategy(), cut=st.integers(0, 300))
    def test_clip_split_is_partition(self, p, cut):
        """Splitting a pattern at any point loses no bytes."""
        left = p.clip(0, cut)
        right = p.clip(cut, max(p.end, cut) + 1)
        assert left.nbytes + right.nbytes == p.nbytes
