"""Reusable collective plans: hit/miss behaviour and invalidation rules.

The plan cache must be invisible in simulated results (planning costs no
simulated time) while reusing plans only when every planning input still
holds: identical access patterns + config + live-node set, and per-node
available memory in the same remerge-relevant bucket.  These tests cover

* repeated identical collectives hitting the cache (counters in
  :class:`~repro.core.metrics.CollectiveStats`);
* bit-identical traces cache-on vs cache-off;
* a :mod:`repro.faults` memory shock crossing a remerge threshold
  forcing a replan (both via the bucket digest and via the injector
  listener wired by ``watch_faults``);
* failover always invalidating;
* the :class:`~repro.core.plan_cache.PlanCache` unit surface (LRU,
  stale-digest demotion, bucket arithmetic).
"""

import hashlib

import numpy as np
import pytest

from repro.cluster.memory import availability_bucket
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO, PlanCache
from repro.core.request import AccessPattern, StridedSegment
from repro.faults import FaultEvent, FaultInjector, FaultSchedule

from tests.helpers import make_stack, rank_payload

KIB = 1024
MIB = 1024 * 1024


def cache_cfg(**kw):
    defaults = dict(
        msg_group=16 * KIB, msg_ind=2 * KIB, mem_min=0, nah=2,
        cb_buffer_size=2 * KIB, min_buffer=1, failover=False,
        plan_cache=True,
    )
    defaults.update(kw)
    return MCIOConfig(**defaults)


def _pattern(rank: int) -> AccessPattern:
    return AccessPattern(
        (StridedSegment(rank * 64, 64, 1024, 8),)
    )


def _run_repeats(config, repeats=4, n_ranks=16, n_nodes=4, between=None):
    """`repeats` identical collective writes; returns (stack, engine)."""
    stack = make_stack(n_ranks=n_ranks, n_nodes=n_nodes, cores=4)
    engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, config)

    def main(ctx):
        pattern = _pattern(ctx.rank)
        data = rank_payload(ctx.rank, pattern.nbytes)
        for i in range(repeats):
            yield from engine.write(ctx, pattern, data.copy())
            if between is not None and ctx.rank == 0:
                between(stack, i)

    stack.run_spmd(main)
    return stack, engine


class TestPlanCacheHits:
    def test_repeated_collectives_hit(self):
        _, engine = _run_repeats(cache_cfg(), repeats=4)
        assert engine.plan_cache.stats.misses == 1
        assert engine.plan_cache.stats.hits == 3
        assert engine.plan_cache.stats.invalidations == 0
        assert [h.plan_cached for h in engine.history] == [
            False, True, True, True,
        ]

    def test_counters_surface_in_stats(self):
        _, engine = _run_repeats(cache_cfg(), repeats=3)
        last = engine.history[-1]
        assert last.plan_cache_hits == 2
        assert last.plan_cache_misses == 1
        assert last.plan_cache_invalidations == 0
        # a hit reuses the partition trees: zero fresh evaluations
        assert engine.history[0].planning_tree_queries > 0
        assert last.planning_tree_queries == 0

    def test_disabled_by_default(self):
        _, engine = _run_repeats(cache_cfg(plan_cache=False), repeats=3)
        assert engine.plan_cache.stats.lookups == 0
        assert all(not h.plan_cached for h in engine.history)

    def test_different_patterns_miss(self):
        stack = make_stack(n_ranks=8, n_nodes=2, cores=4)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, cache_cfg()
        )

        def main(ctx):
            for count in (4, 8):
                pattern = AccessPattern(
                    (StridedSegment(ctx.rank * 64, 64, 512, count),)
                )
                data = rank_payload(ctx.rank, pattern.nbytes)
                yield from engine.write(ctx, pattern, data)

        stack.run_spmd(main)
        assert engine.plan_cache.stats.misses == 2
        assert engine.plan_cache.stats.hits == 0


class TestTraceEquivalence:
    def _trace(self, plan_cache: bool):
        stack, engine = _run_repeats(cache_cfg(plan_cache=plan_cache))
        end = max(_pattern(r).end for r in range(stack.comm.size))
        image = np.asarray(stack.pfs.datastore.read(0, end), dtype=np.uint8)
        return (
            float(stack.env.now).hex(),
            hashlib.sha256(image.tobytes()).hexdigest(),
            [
                (
                    float(h.elapsed).hex(), h.total_bytes, h.rounds_total,
                    h.aggregator_ranks, h.shuffle_intra_node_bytes,
                    h.shuffle_inter_node_bytes,
                )
                for h in engine.history
            ],
        )

    def test_cached_and_fresh_plans_bit_identical(self):
        assert self._trace(plan_cache=True) == self._trace(plan_cache=False)


class TestInvalidation:
    def test_memory_shock_crossing_bucket_forces_replan(self):
        """A digest-visible availability drop demotes the cached plan."""

        def shock(stack, i):
            if i == 1:
                # drop node 0 far below the nominal-buffer threshold —
                # several remerge-relevant buckets away
                stack.cluster.nodes[0].memory.apply_shock(10**9 - KIB)

        _, engine = _run_repeats(cache_cfg(), repeats=4, between=shock)
        assert engine.plan_cache.stats.invalidations >= 1
        assert "memory-bucket-crossed" in engine.plan_cache.invalidation_log
        # miss -> hit -> (shock) miss -> hit
        assert [h.plan_cached for h in engine.history] == [
            False, True, False, True,
        ]

    def test_sub_bucket_wiggle_still_hits(self):
        """Availability noise inside one bucket must not replan."""

        def wiggle(stack, i):
            node = stack.cluster.nodes[0]
            node.memory.set_available(node.memory.available - 100)

        _, engine = _run_repeats(cache_cfg(), repeats=4, between=wiggle)
        assert engine.plan_cache.stats.invalidations == 0
        assert engine.plan_cache.stats.hits == 3

    def test_injected_fault_invalidates_via_listener(self):
        """watch_faults wires injector events straight to the cache."""
        stack = make_stack(n_ranks=8, n_nodes=2, cores=4)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, cache_cfg()
        )
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, kind="memory_shock", target=1,
                        magnitude=float(64 * MIB), duration=10.0)]
        )
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        engine.watch_faults(injector)

        def main(ctx):
            pattern = _pattern(ctx.rank)
            data = rank_payload(ctx.rank, pattern.nbytes)
            yield from engine.write(ctx, pattern, data)

        # warm the cache, then let the injector fire before the next run
        stack.run_spmd(main)
        assert len(engine.plan_cache) == 1
        injector.start()
        stack.run_spmd(main)
        injector.stop()
        assert engine.plan_cache.stats.invalidations >= 1
        assert any(
            reason.startswith("fault:memory_shock")
            for reason in engine.plan_cache.invalidation_log
        )

    def test_failover_always_invalidates(self):
        """A mid-run aggregator failover clears every cached plan."""
        stack = make_stack(memory_bytes=3 * 10**6)
        nbytes = 1 * MIB
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            MCIOConfig(msg_ind=4 * MIB, mem_min=0, nah=4,
                       cb_buffer_size=64 * KIB, failover=True,
                       plan_cache=True),
        )
        schedule = FaultSchedule(
            [FaultEvent(time=0.05, kind="node_failure", target=0,
                        magnitude=16.0)]
        )
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        injector.start()

        def main(ctx):
            chunk = 64 * KIB
            pattern = AccessPattern(
                (StridedSegment(ctx.rank * chunk, chunk,
                                stack.comm.size * chunk, nbytes // chunk),)
            )
            yield from engine.write(
                ctx, pattern, rank_payload(ctx.rank, nbytes)
            )

        stack.run_spmd(main)
        injector.stop()
        assert engine.history[-1].failovers >= 1
        assert "failover" in engine.plan_cache.invalidation_log
        assert len(engine.plan_cache) == 0


class TestPlanCacheUnit:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store("a", (), 1)
        cache.store("b", (), 2)
        assert cache.lookup("a", ()) == 1  # refresh "a"
        cache.store("c", (), 3)  # evicts LRU "b"
        assert cache.lookup("b", ()) is None
        assert cache.lookup("a", ()) == 1
        assert cache.lookup("c", ()) == 3

    def test_stale_digest_counts_invalidation_then_miss(self):
        cache = PlanCache()
        cache.store("k", ("d1",), "plan")
        assert cache.lookup("k", ("d2",)) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert cache.invalidation_log == ["memory-bucket-crossed"]
        assert len(cache) == 0

    def test_disabled_cache_is_passthrough(self):
        cache = PlanCache(enabled=False)
        cache.store("k", (), "plan")
        assert cache.lookup("k", ()) is None
        assert cache.stats.lookups == 0
        assert len(cache) == 0

    def test_invalidate_counts_events_not_entries(self):
        cache = PlanCache()
        cache.store("a", (), 1)
        cache.store("b", (), 2)
        assert cache.invalidate("test") == 2
        assert cache.stats.invalidations == 1
        # an empty cache still counts the triggering event
        cache.invalidate("again")
        assert cache.stats.invalidations == 2

    def test_availability_bucket(self):
        thresholds = (1, 1024, 2048)
        assert availability_bucket(0, thresholds, 2048) == (0, 0)
        assert availability_bucket(1500, thresholds, 2048) == (2, 0)
        assert availability_bucket(4096, thresholds, 2048) == (3, 2)
        # same buckets for values the planner cannot distinguish
        assert availability_bucket(4096, thresholds, 2048) == (
            availability_bucket(4100, thresholds, 2048)
        )
        with pytest.raises(ValueError):
            availability_bucket(-1, thresholds, 2048)

    def test_hit_rate(self):
        cache = PlanCache()
        assert cache.stats.hit_rate == 0.0
        cache.store("k", (), 1)
        cache.lookup("k", ())
        cache.lookup("other", ())
        assert cache.stats.hit_rate == 0.5
