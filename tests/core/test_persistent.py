"""Persistent collectives: replay equivalence, invalidation, refusal seams.

``write_all_init``/``read_all_init`` freeze the MCIO plan after the first
``start()`` and replay it each timestep.  The contract under test:

* overlap-off replay matches a fresh blocking collective per timestep on
  every planned quantity (EQUIVALENT_FIELDS) and lands identical bytes;
* overlap-on replay keeps the same planned quantities and bytes while
  never being slower than blocking in the concentrated-aggregator regime;
* the plan really is frozen — exactly one planning pass across N epochs;
* seams that cannot compose record their reason: the vectorized/sharded
  drivers refuse ("persistent-collective"), borrow-lease plans and
  hook-less engines delegate whole epochs to the blocking path.
"""

import math

import numpy as np
import pytest

from repro.core import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
)
from repro.core.persistent import PersistentCollective
from repro.mpi import SimFile, contiguous_view

from tests.helpers import (
    EQUIVALENT_FIELDS,
    assert_stats_equivalent,
    make_stack,
    rank_payload,
)

KIB = 1024
N_RANKS = 8
BLOCK = 1200
STEPS = 3


def small_config(**overrides):
    base = dict(
        msg_group=16 * KIB,
        msg_ind=2 * KIB,
        mem_min=0,
        nah=2,
        cb_buffer_size=1024,
        min_buffer=1,
    )
    base.update(overrides)
    return MCIOConfig(**base)


def make_file(config=None, n_ranks=N_RANKS, n_nodes=2):
    stack = make_stack(n_ranks=n_ranks, n_nodes=n_nodes, cores=4)
    engine = MemoryConsciousCollectiveIO(
        stack.comm, stack.pfs, config or small_config()
    )
    return stack, engine, SimFile.open(stack.comm, engine)


def step_bytes(rank, step, nbytes=BLOCK):
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + step * 7) % 251).astype(np.uint8)


def run_write_loop(stack, fh, mode, steps=STEPS, block=BLOCK):
    """`mode`: "blocking" | "persistent" | "persistent+overlap"."""

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * block, block))
        pc = None
        if mode != "blocking":
            pc = fh.write_all_init(ctx, overlap=(mode == "persistent+overlap"))
        for step in range(steps):
            payload = step_bytes(ctx.rank, step, block)
            if pc is None:
                yield from fh.write_all(ctx, payload)
            else:
                pc.start(ctx, payload)
                yield from pc.wait(ctx)
        return pc

    results = stack.run_spmd(main)
    return results[0]


# ---------------------------------------------------------------------------
# per-timestep equivalence with fresh blocking collectives
# ---------------------------------------------------------------------------
def test_overlap_off_matches_blocking_per_timestep():
    s_blk, e_blk, f_blk = make_file()
    run_write_loop(s_blk, f_blk, "blocking")
    s_per, e_per, f_per = make_file()
    pc = run_write_loop(s_per, f_per, "persistent")

    assert len(e_blk.history) == len(e_per.history) == STEPS
    for blk, per in zip(e_blk.history, e_per.history):
        assert_stats_equivalent(blk, per)
    # frozen epochs skip both allgathers: the loop cannot be slower
    assert s_per.env.now <= s_blk.env.now
    # first epoch pays the same preamble as a blocking call
    assert math.isclose(
        e_per.history[0].elapsed, e_blk.history[0].elapsed, rel_tol=1e-9
    )
    end = N_RANKS * BLOCK
    assert np.array_equal(
        s_per.pfs.datastore.read(0, end), s_blk.pfs.datastore.read(0, end)
    )
    assert pc.replans == 1
    assert pc.delegations == 0
    assert [s.extra["persistent_replanned"] for s in e_per.history] == [
        True, False, False,
    ]


def test_persistent_read_returns_fresh_bytes_each_epoch():
    stack, engine, fh = make_file()

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * BLOCK, BLOCK))
        pc = fh.read_all_init(ctx, overlap=False)
        seen = []
        for step in range(STEPS):
            if ctx.rank == 0:
                # mutate the file between epochs (out-of-band)
                for r in range(N_RANKS):
                    stack.pfs.datastore.write(r * BLOCK, step_bytes(r, step))
            yield from stack.comm.barrier(ctx)
            pc.start(ctx)
            data = yield from pc.wait(ctx)
            seen.append(bool((data == step_bytes(ctx.rank, step)).all()))
        return seen

    results = stack.run_spmd(main)
    for r in range(N_RANKS):
        assert results[r] == [True] * STEPS


# ---------------------------------------------------------------------------
# overlap on the concentrated-aggregator (memory-variance) platform
# ---------------------------------------------------------------------------
def variance_file():
    stack = make_stack(
        n_ranks=16, n_nodes=16, cores=1,
        nic_bandwidth=1e6, server_bandwidth=1e6, servers=4,
    )
    stack.cluster.set_memory_availability((3_000_000, 3_000_000) + (100_000,) * 14)
    engine = MemoryConsciousCollectiveIO(
        stack.comm,
        stack.pfs,
        MCIOConfig(
            msg_group=10**9, msg_ind=256 * KIB, mem_min=200_000, nah=4,
            min_buffer=1, cb_buffer_size=64 * KIB,
        ),
    )
    return stack, engine, SimFile.open(stack.comm, engine)


def test_overlap_on_same_plan_same_bytes_not_slower():
    block, steps = 500_000, 2
    s_blk, e_blk, f_blk = variance_file()
    run_write_loop(s_blk, f_blk, "blocking", steps=steps, block=block)
    s_ov, e_ov, f_ov = variance_file()
    pc = run_write_loop(s_ov, f_ov, "persistent+overlap", steps=steps, block=block)

    for blk, ov in zip(e_blk.history, e_ov.history):
        assert_stats_equivalent(blk, ov)
        assert ov.elapsed <= blk.elapsed
    end = 16 * block
    assert np.array_equal(
        s_ov.pfs.datastore.read(0, end), s_blk.pfs.datastore.read(0, end)
    )
    # shuffle really ran over the PFS drain on the frozen epochs
    assert sum(s.extra.get("pipeline_overlapped", 0) for s in e_ov.history) > 0
    assert pc.replans == 1
    assert s_ov.env.now < s_blk.env.now


# ---------------------------------------------------------------------------
# refusal and delegation seams
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "mode,key",
    [
        ("vectorized", "vectorized_refusal"),
        ("auto", "vectorized_refusal"),
        ("sharded", "sharding_refusal"),
    ],
)
def test_execution_mode_refusal_recorded(mode, key):
    stack, engine, fh = make_file(small_config(execution_mode=mode))
    run_write_loop(stack, fh, "persistent")
    for stats in engine.history:
        assert stats.extra[key] == "persistent-collective"
    # the refusal one-shot must not leak into later blocking operations
    payloads = {r: rank_payload(r, 64) for r in range(N_RANKS)}

    def main(ctx):
        fh.set_view(ctx, contiguous_view(N_RANKS * BLOCK + ctx.rank * 64, 64))
        yield from fh.write_all(ctx, payloads[ctx.rank].copy())

    stack.run_spmd(main)
    assert engine.history[-1].extra.get(key) != "persistent-collective"


def test_two_phase_engine_delegates_every_epoch():
    stack = make_stack(n_ranks=N_RANKS, n_nodes=2, cores=4)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)
    pc = run_write_loop(stack, fh, "persistent")
    assert not pc.managed
    assert pc.replans == 0
    assert pc.delegations == STEPS
    assert pc.last_delegation == "engine-unsupported"
    for r in range(N_RANKS):
        got = stack.pfs.datastore.read(r * BLOCK, BLOCK)
        assert np.array_equal(got, step_bytes(r, STEPS - 1))


def test_borrow_lease_plans_delegate():
    stack = make_stack(n_ranks=12, n_nodes=3, cores=4)
    for node in stack.cluster.nodes:
        node.memory.set_available(10**9 if node.node_id == 2 else 6000)
    engine = MemoryConsciousCollectiveIO(
        stack.comm,
        stack.pfs,
        MCIOConfig(
            placement_policy="borrow", adaptive_buffer=False, mem_min=0,
            cb_buffer_size=8 * KIB, msg_ind=4 * KIB, msg_group=1 << 30,
            nah=2, min_buffer=1,
        ),
    )
    fh = SimFile.open(stack.comm, engine)
    pc = run_write_loop(stack, fh, "persistent", block=4 * KIB)
    # every epoch delegates, and each delegated epoch's lease grant/
    # release traffic invalidates the frozen plan, forcing a re-plan
    assert pc.replans == STEPS
    assert pc.delegations == STEPS
    assert pc.last_delegation == "borrow-lease"
    assert any(r.startswith("lease-") for r in pc.invalidations)
    for r in range(12):
        got = stack.pfs.datastore.read(r * 4 * KIB, 4 * KIB)
        assert np.array_equal(got, step_bytes(r, STEPS - 1, 4 * KIB))


# ---------------------------------------------------------------------------
# handle lifecycle errors
# ---------------------------------------------------------------------------
def test_init_op_mismatch_raises():
    stack, engine, fh = make_file()

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * BLOCK, BLOCK))
        if ctx.rank == 0:
            fh.write_all_init(ctx)
        yield from stack.comm.barrier(ctx)
        if ctx.rank != 0:
            with pytest.raises(ValueError, match="mismatches"):
                fh.read_all_init(ctx)

    stack.run_spmd(main)


def test_double_start_and_bare_wait_raise():
    stack, engine, fh = make_file()

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * BLOCK, BLOCK))
        pc = fh.write_all_init(ctx, overlap=False)
        with pytest.raises(RuntimeError, match="without start"):
            yield from pc.wait(ctx)
        pc.start(ctx, step_bytes(ctx.rank, 0))
        with pytest.raises(RuntimeError, match="still in flight"):
            pc.start(ctx, step_bytes(ctx.rank, 0))
        with pytest.raises(RuntimeError, match="in flight"):
            pc.free()
        yield from pc.wait(ctx)
        return pc

    results = stack.run_spmd(main)
    pc = results[0]
    pc.free()  # idle handle frees cleanly and unsubscribes
    assert pc._on_invalidate not in engine._invalidation_listeners


def test_bad_op_rejected():
    stack, engine, fh = make_file()
    with pytest.raises(ValueError, match="bad op"):
        PersistentCollective(fh, "append")
