"""Tests for aggregation group division (paper §3.1, Figure 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.group_division import divide_groups
from repro.core.request import AccessPattern
from repro.mpi import vector_view


def serial_patterns(n_ranks, bytes_per_rank=100):
    """Rank r owns [r*b, (r+1)*b) — serially distributed data."""
    return [
        AccessPattern.contiguous(r * bytes_per_rank, bytes_per_rank)
        for r in range(n_ranks)
    ]


def interleaved_patterns(n_ranks, xfer=10, blocks=8):
    """IOR-style: rank r owns blocks at (k*P + r)*xfer."""
    return [
        vector_view(offset=r * xfer, count=blocks, block=xfer, stride=n_ranks * xfer)
        for r in range(n_ranks)
    ]


def check_tiling(groups, patterns):
    """Regions disjoint and tiling; every rank with data in >= 1 group."""
    regions = [g.region for g in groups]
    for a, b in zip(regions, regions[1:]):
        assert a.end == b.offset, "regions must tile without gaps"
    active = [p for p in patterns if not p.empty]
    assert regions[0].offset == min(p.start for p in active)
    assert regions[-1].end == max(p.end for p in active)
    covered_ranks = set()
    for g in groups:
        covered_ranks.update(g.ranks)
    expected = {r for r, p in enumerate(patterns) if not p.empty}
    assert covered_ranks == expected


def test_paper_figure4_example():
    """9 processes on 3 nodes, serial data: groups cut at node boundaries,
    group one extended to the ending offset of node one's last process."""
    patterns = serial_patterns(9, bytes_per_rank=100)
    placement = [0, 0, 0, 1, 1, 1, 2, 2, 2]
    groups = divide_groups(patterns, placement, msg_group=250)
    assert len(groups) == 3
    assert groups[0].ranks == (0, 1, 2)
    assert groups[0].region.offset == 0
    assert groups[0].region.end == 300  # end of rank 2 (node 0's last proc)
    assert groups[1].ranks == (3, 4, 5)
    assert groups[2].ranks == (6, 7, 8)
    check_tiling(groups, patterns)


def test_node_boundary_blocks_midnode_cut():
    """Even when Msg_group is reached mid-node, the cut waits for the
    node boundary so one node never feeds two groups."""
    patterns = serial_patterns(9, bytes_per_rank=100)
    placement = [0, 0, 0, 1, 1, 1, 2, 2, 2]
    groups = divide_groups(patterns, placement, msg_group=150)
    # cuts only at rank 2/3 and 5/6 boundaries
    assert [g.ranks for g in groups] == [(0, 1, 2), (3, 4, 5), (6, 7, 8)]


def test_msg_group_larger_than_node_spans_nodes():
    patterns = serial_patterns(9, bytes_per_rank=100)
    placement = [0, 0, 0, 1, 1, 1, 2, 2, 2]
    groups = divide_groups(patterns, placement, msg_group=550)
    assert len(groups) == 2
    assert groups[0].ranks == (0, 1, 2, 3, 4, 5)
    check_tiling(groups, patterns)


def test_single_group_when_msg_group_huge():
    patterns = serial_patterns(6)
    placement = [0, 0, 0, 1, 1, 1]
    groups = divide_groups(patterns, placement, msg_group=10**9)
    assert len(groups) == 1
    assert groups[0].ranks == (0, 1, 2, 3, 4, 5)


def test_interleaved_falls_back_to_chunking():
    """IOR-interleaved patterns span the whole file per rank; auto mode
    must fall back to fixed-size chunks."""
    patterns = interleaved_patterns(n_ranks=4, xfer=10, blocks=8)
    placement = [0, 0, 1, 1]
    groups = divide_groups(patterns, placement, msg_group=80)
    assert len(groups) > 1
    for g in groups:
        assert g.region.length <= 80
        # every rank has data in every chunk for this pattern
        assert g.ranks == (0, 1, 2, 3)
    check_tiling(groups, patterns)


def test_interleaved_chunks_stripe_aligned():
    patterns = interleaved_patterns(n_ranks=4, xfer=10, blocks=100)
    placement = [0, 0, 1, 1]
    groups = divide_groups(
        patterns, placement, msg_group=100, stripe_size=64, mode="interleaved"
    )
    for g in groups[:-1]:
        assert g.region.end % 64 == 0


def test_forced_serial_mode():
    patterns = serial_patterns(4)
    groups = divide_groups(patterns, [0, 0, 1, 1], msg_group=150, mode="serial")
    assert len(groups) == 2


def test_empty_patterns_skipped():
    patterns = [
        AccessPattern.contiguous(0, 100),
        AccessPattern(()),
        AccessPattern.contiguous(100, 100),
    ]
    groups = divide_groups(patterns, [0, 0, 1], msg_group=50)
    all_ranks = set()
    for g in groups:
        all_ranks.update(g.ranks)
    assert 1 not in all_ranks


def test_no_data_returns_empty():
    patterns = [AccessPattern(()), AccessPattern(())]
    assert divide_groups(patterns, [0, 0], msg_group=100) == []


def test_gap_between_ranks_folded():
    """A file gap between rank data stays inside the tiling."""
    patterns = [
        AccessPattern.contiguous(0, 100),
        AccessPattern.contiguous(10_000, 100),
    ]
    groups = divide_groups(patterns, [0, 1], msg_group=50)
    check_tiling(groups, patterns)


def test_validation():
    patterns = serial_patterns(2)
    with pytest.raises(ValueError):
        divide_groups(patterns, [0], msg_group=100)
    with pytest.raises(ValueError):
        divide_groups(patterns, [0, 0], msg_group=0)


@given(
    n_nodes=st.integers(1, 6),
    ranks_per_node=st.integers(1, 4),
    bytes_per_rank=st.integers(1, 500),
    msg_group=st.integers(1, 3000),
)
@settings(max_examples=120, deadline=None)
def test_serial_division_properties(n_nodes, ranks_per_node, bytes_per_rank, msg_group):
    n = n_nodes * ranks_per_node
    patterns = serial_patterns(n, bytes_per_rank)
    placement = [r // ranks_per_node for r in range(n)]
    groups = divide_groups(patterns, placement, msg_group=msg_group)
    check_tiling(groups, patterns)
    # serial data: every rank is in exactly one group
    seen: dict[int, int] = {}
    for g in groups:
        for r in g.ranks:
            assert r not in seen, "rank split across groups in serial mode"
            seen[r] = g.group_id
    # node-boundary property: a node's ranks all map to one group
    for node in range(n_nodes):
        node_groups = {seen[r] for r in range(n) if placement[r] == node}
        assert len(node_groups) == 1


@given(
    n_ranks=st.integers(2, 8),
    xfer=st.integers(1, 20),
    blocks=st.integers(2, 10),
    msg_group=st.integers(1, 500),
)
@settings(max_examples=80, deadline=None)
def test_interleaved_division_properties(n_ranks, xfer, blocks, msg_group):
    patterns = interleaved_patterns(n_ranks, xfer, blocks)
    placement = [0] * n_ranks
    groups = divide_groups(patterns, placement, msg_group=msg_group)
    check_tiling(groups, patterns)
    # group byte conservation: per-group member bytes sum to total
    total = sum(p.nbytes for p in patterns)
    got = sum(
        patterns[r].bytes_in(g.region.offset, g.region.end)
        for g in groups
        for r in g.ranks
    )
    assert got == total
