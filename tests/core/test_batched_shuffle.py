"""The ``"batched"`` shuffle granularity: correctness, accounting, fallback.

Batched execution keeps the lockstep round structure but aggregates each
round's inter-node shuffle into one wire transfer per (source node,
aggregator) pair.  These tests pin what the fast path must preserve:

* every byte lands where the per-message path would put it (writes and
  reads, both engines);
* shuffle byte accounting and inter-node message counts match the
  per-message path;
* far fewer wire events actually cross the network;
* fault machinery (failover enabled, failed hosts) silently falls back
  to the exact per-message path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import MCIOConfig, TwoPhaseConfig
from tests.goldens.cases import (
    CLUSTER_CASES,
    build_patterns,
    make_engine,
    _prefill,
)
from tests.helpers import make_stack, rank_payload


def _stack_for(case):
    stack = make_stack(
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        stripe_size=case.stripe_size,
    )
    if case.memory_availability is not None:
        stack.cluster.set_memory_availability(case.memory_availability)
    return stack


def _run(case, strategy, op, granularity, engine_factory=None):
    """One collective; returns (stack, engine, patterns, payloads, results)."""
    case = replace(case, granularity=granularity)
    patterns = build_patterns(case)
    stack = _stack_for(case)
    engine = (
        engine_factory(stack, case)
        if engine_factory is not None
        else make_engine(strategy, stack, case)
    )
    end = max(p.end for p in patterns if not p.empty)
    if op == "write":
        payloads = {
            r: rank_payload(r, patterns[r].nbytes) for r in range(case.n_ranks)
        }

        def main(ctx):
            yield from engine.write(
                ctx, patterns[ctx.rank], payloads[ctx.rank].copy()
            )

        stack.run_spmd(main)
        results = None
    else:
        payloads = None
        _prefill(stack.pfs.datastore, end)

        def main(ctx):
            return (yield from engine.read(ctx, patterns[ctx.rank]))

        results = stack.run_spmd(main)
    return stack, engine, patterns, payloads, results


def _file_bytes(stack, pattern):
    if pattern.empty:
        return np.array([], dtype=np.uint8)
    return np.concatenate(
        [
            np.asarray(stack.pfs.datastore.read(off, ln), dtype=np.uint8)
            for off, ln, _ in pattern.iter_mapped_extents()
        ]
    )


@pytest.mark.parametrize("case", CLUSTER_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("op", ["write", "read"])
def test_two_phase_batched_is_byte_exact(case, op):
    stack, _, patterns, payloads, results = _run(case, "two-phase", op, "batched")
    for r in range(case.n_ranks):
        want = (
            payloads[r] if op == "write" else _file_bytes(stack, patterns[r])
        )
        got = (
            _file_bytes(stack, patterns[r])
            if op == "write"
            else np.asarray(results[r], dtype=np.uint8)
        )
        assert np.array_equal(got, want), f"rank {r} bytes diverged"


@pytest.mark.parametrize("op", ["write", "read"])
def test_mcio_batched_is_byte_exact(op):
    """MCIO on the true batched path (failover off so it is not bypassed)."""
    case = CLUSTER_CASES[0]

    # make_engine builds MCIOConfig with failover default (True); rebuild
    # explicitly with failover disabled so the batched path actually runs
    from repro.core import MemoryConsciousCollectiveIO

    def factory(stack, c):
        return MemoryConsciousCollectiveIO(
            stack.comm,
            stack.pfs,
            MCIOConfig(
                msg_group=16 * 1024,
                msg_ind=2 * 1024,
                mem_min=0,
                nah=2,
                cb_buffer_size=c.cb_buffer_size,
                min_buffer=1,
                shuffle_granularity="batched",
                failover=False,
            ),
        )

    stack, _, patterns, payloads, results = _run(
        case, "mcio", op, "batched", engine_factory=factory
    )
    for r in range(case.n_ranks):
        want = (
            payloads[r] if op == "write" else _file_bytes(stack, patterns[r])
        )
        got = (
            _file_bytes(stack, patterns[r])
            if op == "write"
            else np.asarray(results[r], dtype=np.uint8)
        )
        assert np.array_equal(got, want), f"rank {r} bytes diverged"


@pytest.mark.parametrize("op", ["write", "read"])
def test_batched_preserves_shuffle_accounting(op):
    """Bytes and message counts match the per-message reference run."""
    case = CLUSTER_CASES[0]
    _, ref_engine, *_ = _run(case, "two-phase", op, "round")
    _, fast_engine, *_ = _run(case, "two-phase", op, "batched")
    ref, fast = ref_engine.history[0], fast_engine.history[0]
    assert fast.total_bytes == ref.total_bytes
    assert fast.shuffle_intra_node_bytes == ref.shuffle_intra_node_bytes
    assert fast.shuffle_inter_node_bytes == ref.shuffle_inter_node_bytes
    assert fast.rounds_total == ref.rounds_total
    assert fast.aggregator_ranks == ref.aggregator_ranks


def test_batched_network_message_accounting_matches():
    """inter_node_messages counts constituent messages, not batches."""
    case = CLUSTER_CASES[0]
    ref_stack, *_ = _run(case, "two-phase", "write", "round")
    fast_stack, *_ = _run(case, "two-phase", "write", "batched")
    ref_net, fast_net = ref_stack.cluster.network, fast_stack.cluster.network
    assert fast_net.inter_node_messages == ref_net.inter_node_messages
    # staging contributions through node leaders adds intra-node traffic,
    # it never *removes* inter-node bytes
    assert fast_net.inter_node_bytes == ref_net.inter_node_bytes


def test_batched_reduces_simulation_events():
    """The point of the fast path: far fewer kernel events per collective."""
    case = CLUSTER_CASES[1]  # 16 ranks / 4 nodes, interleaved

    def count_events(granularity):
        c = replace(case, granularity=granularity)
        patterns = build_patterns(c)
        stack = _stack_for(c)
        engine = make_engine("two-phase", stack, c)
        payloads = {
            r: rank_payload(r, patterns[r].nbytes) for r in range(c.n_ranks)
        }

        def main(ctx):
            yield from engine.write(
                ctx, patterns[ctx.rank], payloads[ctx.rank].copy()
            )

        stack.run_spmd(main)
        return stack.env._seq  # monotone event-sequence counter

    assert count_events("batched") < count_events("round")


def test_batched_falls_back_when_failover_enabled():
    """failover_config forces the exact per-message path (same trace)."""
    case = CLUSTER_CASES[0]

    from repro.core import MemoryConsciousCollectiveIO

    def factory(granularity):
        def build(stack, c):
            return MemoryConsciousCollectiveIO(
                stack.comm,
                stack.pfs,
                MCIOConfig(
                    msg_group=16 * 1024,
                    msg_ind=2 * 1024,
                    mem_min=0,
                    nah=2,
                    cb_buffer_size=c.cb_buffer_size,
                    min_buffer=1,
                    shuffle_granularity=granularity,
                    failover=True,
                ),
            )

        return build

    ref_stack, ref_engine, *_ = _run(
        case, "mcio", "write", "round", engine_factory=factory("round")
    )
    fb_stack, fb_engine, *_ = _run(
        case, "mcio", "write", "batched", engine_factory=factory("batched")
    )
    # identical simulated trace: the batched request degraded to "round"
    assert float(fb_stack.env.now).hex() == float(ref_stack.env.now).hex()
    assert (
        float(fb_engine.history[0].elapsed).hex()
        == float(ref_engine.history[0].elapsed).hex()
    )


def test_batched_falls_back_when_hosts_failed():
    """Pre-failed hosts route execution onto the per-message path."""
    case = CLUSTER_CASES[0]
    c = replace(case, granularity="batched")
    patterns = build_patterns(c)
    stack = _stack_for(c)
    stack.cluster.nodes[1].fail(slowdown=4.0)
    engine = make_engine("two-phase", stack, c)
    payloads = {
        r: rank_payload(r, patterns[r].nbytes) for r in range(c.n_ranks)
    }

    def main(ctx):
        yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank].copy())

    stack.run_spmd(main)
    for r in range(c.n_ranks):
        assert np.array_equal(_file_bytes(stack, patterns[r]), payloads[r])


def test_bad_granularity_rejected():
    with pytest.raises(ValueError):
        TwoPhaseConfig(shuffle_granularity="bogus")
    with pytest.raises(ValueError):
        MCIOConfig(shuffle_granularity="bogus")
