"""Tests for memory-aware aggregator placement (paper §3.3)."""

import pytest

from repro.core.aggregator_selection import (
    PlacementError,
    candidate_hosts,
    place_aggregators,
)
from repro.core.config import MCIOConfig
from repro.core.partition_tree import PartitionTree
from repro.core.request import AccessPattern, Extent


def serial_patterns(n, width=100):
    return [AccessPattern.contiguous(r * width, width) for r in range(n)]


def dense_of(patterns, ranks):
    def data(lo, hi):
        return sum(patterns[r].bytes_in(lo, hi) for r in ranks)

    return data


def make_tree(patterns, ranks, region, msg_ind):
    return PartitionTree(region, dense_of(patterns, ranks), msg_ind=msg_ind)


def cfg(**kw):
    defaults = dict(
        msg_group=10**9,
        msg_ind=100,
        mem_min=0,
        nah=2,
        cb_buffer_size=100,
    )
    defaults.update(kw)
    return MCIOConfig(**defaults)


def test_candidate_hosts_only_with_data():
    patterns = serial_patterns(4)
    hosts = candidate_hosts(Extent(0, 200), ranks=[0, 1, 2, 3],
                            patterns=patterns, placement=[0, 0, 1, 1])
    assert hosts == {0: [0, 1]}


def test_picks_host_with_max_available_memory():
    patterns = serial_patterns(4, width=100)
    ranks = [0, 1, 2, 3]
    placement = [0, 0, 1, 1]
    tree = make_tree(patterns, ranks, Extent(0, 400), msg_ind=400)
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 50, 1: 500},
        config=cfg(cb_buffer_size=100),
    )
    assert len(domains) == 1
    # node 1 has more memory: aggregator must be one of its ranks
    assert domains[0].aggregator_rank in (2, 3)
    assert not domains[0].paged


def test_nah_caps_aggregators_per_host():
    patterns = serial_patterns(8, width=100)
    ranks = list(range(8))
    placement = [0] * 4 + [1] * 4
    tree = make_tree(patterns, ranks, Extent(0, 800), msg_ind=200)
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 10**6, 1: 10**6},
        config=cfg(nah=2, cb_buffer_size=200, msg_ind=200),
    )
    assert len(domains) == 4
    per_host = {}
    for d in domains:
        host = placement[d.aggregator_rank]
        per_host[host] = per_host.get(host, 0) + 1
    assert all(v <= 2 for v in per_host.values())
    # distinct processes serve as aggregators on one host
    assert len({d.aggregator_rank for d in domains}) == 4


def test_memory_shortage_triggers_remerge():
    """Four domains, but only one host has memory for just two buffers:
    domains must remerge until the memory fits."""
    patterns = serial_patterns(4, width=100)
    ranks = [0, 1, 2, 3]
    placement = [0, 0, 1, 1]
    tree = make_tree(patterns, ranks, Extent(0, 400), msg_ind=100)
    assert tree.n_leaves == 4
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 100, 1: 100},  # one buffer each
        config=cfg(cb_buffer_size=100, msg_ind=100, nah=2),
    )
    # reserved memory per host never exceeds availability, no paging
    assert all(not d.paged for d in domains)
    reserved = {}
    for d in domains:
        host = placement[d.aggregator_rank]
        reserved[host] = reserved.get(host, 0) + d.buffer_bytes
    assert all(reserved[h] <= {0: 100, 1: 100}[h] for h in reserved)
    assert len(domains) == 2  # remerged from 4 to 2


def test_total_memory_crunch_falls_back_paged():
    patterns = serial_patterns(2, width=100)
    ranks = [0, 1]
    placement = [0, 1]
    tree = make_tree(patterns, ranks, Extent(0, 200), msg_ind=100)
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 10, 1: 10},
        config=cfg(cb_buffer_size=200),
    )
    assert len(domains) == 1
    assert domains[0].paged


def test_total_memory_crunch_raises_when_fallback_disabled():
    patterns = serial_patterns(2, width=100)
    ranks = [0, 1]
    placement = [0, 1]
    tree = make_tree(patterns, ranks, Extent(0, 200), msg_ind=100)
    with pytest.raises(PlacementError):
        place_aggregators(
            tree, 0, ranks, patterns, placement,
            memory_available={0: 10, 1: 10},
            config=cfg(cb_buffer_size=200, allow_paged_fallback=False),
        )


def test_mem_min_floor_enforced():
    """A host with enough for the buffer but below mem_min is rejected."""
    patterns = serial_patterns(4, width=100)
    ranks = [0, 1, 2, 3]
    placement = [0, 0, 1, 1]
    tree = make_tree(patterns, ranks, Extent(0, 400), msg_ind=200)
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 250, 1: 80},  # node 1 below mem_min
        config=cfg(cb_buffer_size=50, mem_min=100, msg_ind=200),
    )
    hosts = {placement[d.aggregator_rank] for d in domains}
    assert hosts == {0}


def test_domains_cover_region_after_placement():
    patterns = serial_patterns(6, width=100)
    ranks = list(range(6))
    placement = [0, 0, 1, 1, 2, 2]
    tree = make_tree(patterns, ranks, Extent(0, 600), msg_ind=150)
    domains = place_aggregators(
        tree, 0, ranks, patterns, placement,
        memory_available={0: 300, 1: 0, 2: 300},
        config=cfg(cb_buffer_size=150, msg_ind=150),
    )
    pos = 0
    for d in domains:
        assert d.extent.offset == pos
        pos = d.extent.end
    assert pos == 600
    # node 1 (no memory) never hosts an aggregator
    assert all(placement[d.aggregator_rank] != 1 for d in domains)


def test_group_id_recorded():
    patterns = serial_patterns(2)
    tree = make_tree(patterns, [0, 1], Extent(0, 200), msg_ind=200)
    domains = place_aggregators(
        tree, 7, [0, 1], patterns, [0, 1],
        memory_available={0: 10**6, 1: 10**6},
        config=cfg(),
    )
    assert all(d.group_id == 7 for d in domains)


def test_buffer_capped_by_domain_size():
    patterns = serial_patterns(2, width=10)
    tree = make_tree(patterns, [0, 1], Extent(0, 20), msg_ind=100)
    domains = place_aggregators(
        tree, 0, [0, 1], patterns, [0, 1],
        memory_available={0: 10**6, 1: 10**6},
        config=cfg(cb_buffer_size=10**6),
    )
    assert domains[0].buffer_bytes == 20
