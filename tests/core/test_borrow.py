"""Remote-memory borrowing: placement, lease protocol, failure semantics.

The scenario throughout: a 3-node cluster where two nodes are
memory-poor and one is memory-rich.  Under ``placement_policy="borrow"``
or ``"hybrid"`` the placer keeps aggregators wide by leasing buffer
capacity from the rich node; under ``"remerge"`` (the default) it folds
domains exactly as before this feature existed.
"""

import numpy as np
import pytest

from tests.helpers import make_stack, rank_payload

from repro.core import (
    ConservationAuditor,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
)
from repro.core.request import AccessPattern, StridedSegment
from repro.obs import Tracer

KIB = 1024
N_RANKS = 12
N_NODES = 3
NBYTES = 4 * KIB
RICH = 2


def make_borrow_stack(rich_bytes=10**9, poor_bytes=6000):
    stack = make_stack(n_ranks=N_RANKS, n_nodes=N_NODES, cores=4)
    for node in stack.cluster.nodes:
        node.memory.set_available(
            rich_bytes if node.node_id == RICH else poor_bytes
        )
    return stack


def mcio_cfg(policy="remerge", **overrides):
    base = dict(
        placement_policy=policy,
        adaptive_buffer=False,
        mem_min=0,
        cb_buffer_size=8 * KIB,
        msg_ind=4 * KIB,
        msg_group=1 << 30,
        nah=2,
        min_buffer=1,
        failover=True,
    )
    base.update(overrides)
    return MCIOConfig(**base)


def block_patterns(nbytes=NBYTES):
    return [
        AccessPattern((StridedSegment(r * nbytes, nbytes, nbytes, 1),))
        for r in range(N_RANKS)
    ]


def run_write(stack, engine, patterns, payloads, fault=None, fault_at=None):
    def main(ctx):
        if fault is not None and ctx.rank == 0:
            def saboteur():
                yield ctx.env.sleep(fault_at)
                fault()
            ctx.spawn(saboteur(), name="saboteur")
        yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])

    stack.run_spmd(main)
    return engine.history[-1]


def assert_image(stack, patterns, payloads):
    for r, p in enumerate(patterns):
        got = stack.pfs.datastore.read(p.start, p.nbytes)
        assert np.array_equal(got, payloads[r]), f"rank {r} image mismatch"


class TestPlacement:
    def test_remerge_policy_never_assigns_lenders(self):
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("remerge")
        )
        mem = {n.node_id: n.memory.free_available for n in stack.cluster.nodes}
        plan = engine.plan(block_patterns(), dict(mem))
        assert all(d.lender_node is None for d in plan.domains)

    def test_borrow_policy_assigns_rich_lender(self):
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        mem = {n.node_id: n.memory.free_available for n in stack.cluster.nodes}
        plan = engine.plan(block_patterns(), dict(mem))
        borrowed = [d for d in plan.domains if d.lender_node is not None]
        assert borrowed, "expected at least one borrowed domain"
        assert all(d.lender_node == RICH for d in borrowed)
        # a lender never lends to an aggregator on its own host
        for d in borrowed:
            assert stack.comm.placement[d.aggregator_rank] != d.lender_node

    def test_hybrid_without_viable_lender_matches_remerge(self):
        """Uniformly poor cluster: hybrid finds no lender and remerges."""
        stack = make_borrow_stack(rich_bytes=6000)  # rich node also poor
        mem = {n.node_id: n.memory.free_available for n in stack.cluster.nodes}
        plans = {}
        for policy in ("remerge", "hybrid"):
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs, mcio_cfg(policy)
            )
            plans[policy] = engine.plan(block_patterns(), dict(mem))
        assert plans["hybrid"].domains == plans["remerge"].domains


class TestByteEquivalence:
    @pytest.mark.parametrize("policy", ["remerge", "borrow", "hybrid"])
    def test_write_image_identical_across_policies(self, policy):
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg(policy)
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        stats = run_write(stack, engine, patterns, payloads)
        assert_image(stack, patterns, payloads)
        if policy == "remerge":
            assert stats.leases_granted == 0 and stats.borrow_bytes == 0
        else:
            assert stats.leases_granted > 0 and stats.borrow_bytes > 0
        assert stack.cluster.memory_ledger.outstanding == 0

    @pytest.mark.parametrize("policy", ["borrow", "hybrid"])
    def test_read_payloads_identical_to_remerge(self, policy):
        def read_all(policy):
            stack = make_borrow_stack()
            patterns = block_patterns()
            for r, p in enumerate(patterns):
                stack.pfs.datastore.write(p.start, rank_payload(r, NBYTES))
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs, mcio_cfg(policy)
            )
            out = {}

            def main(ctx):
                out[ctx.rank] = yield from engine.read(ctx, patterns[ctx.rank])

            stack.run_spmd(main)
            return out

        baseline = read_all("remerge")
        got = read_all(policy)
        for r in range(N_RANKS):
            assert np.array_equal(got[r], baseline[r]), f"rank {r} read diverged"


class TestLeaseProtocolObservability:
    def test_counters_and_spans_on_healthy_borrow(self):
        stack = make_borrow_stack()
        tracer = Tracer(capacity=1 << 18)
        tracer.install(stack.env)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        stats = run_write(stack, engine, patterns, payloads)
        ledger = stack.cluster.memory_ledger
        assert stats.leases_granted == ledger.granted > 0
        assert stats.leases_revoked == 0 and stats.borrow_fallbacks == 0
        assert ledger.released == ledger.granted
        names = {ev.name for ev in tracer.events()}
        assert "borrow.acquire" in names
        assert "borrow.stage" in names
        assert "borrow.release" in names
        assert "borrow.abort" not in names

    def test_lease_renewal_on_long_collective(self):
        """A lease term shorter than the run forces mid-flight renewals.

        The term is sized from a fault-free probe so a round boundary
        lands inside the renewal window (less than half a term left)
        while the lease is still sound: the borrower must renew rather
        than expire.
        """
        probe_stack = make_borrow_stack()
        probe = MemoryConsciousCollectiveIO(
            probe_stack.comm, probe_stack.pfs, mcio_cfg("borrow")
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        elapsed = run_write(probe_stack, probe, patterns, payloads).elapsed

        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow", lease_term=elapsed * 0.8)
        )
        stats = run_write(stack, engine, patterns, payloads)
        assert stats.leases_renewed > 0
        assert stats.leases_expired == 0
        assert stats.borrow_fallbacks == 0
        assert_image(stack, patterns, payloads)


class TestLenderFailure:
    def probe_elapsed(self, policy="borrow"):
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg(policy)
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        return run_write(stack, engine, patterns, payloads).elapsed

    def test_lender_crash_mid_round_degrades_to_remerge(self):
        fault_at = self.probe_elapsed() * 0.4
        stack = make_borrow_stack()
        tracer = Tracer(capacity=1 << 18)
        tracer.install(stack.env)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        auditor = ConservationAuditor().attach(engine)
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        stats = run_write(
            stack, engine, patterns, payloads,
            fault=lambda: stack.cluster.node_of(RICH).fail(),
            fault_at=fault_at,
        )
        # no hang, deterministic degradation, no lost bytes
        assert stats.tier == "remerge"
        assert stats.borrow_fallbacks == 1
        assert stats.leases_revoked >= 1
        assert "lender-failed" in stats.extra.get("borrow_fallback_reason", "")
        assert_image(stack, patterns, payloads)
        auditor.verify(patterns)
        assert stack.cluster.memory_ledger.outstanding == 0
        names = {ev.name for ev in tracer.events()}
        assert "borrow.abort" in names

    def test_memory_shock_revokes_leases_mid_round(self):
        fault_at = self.probe_elapsed() * 0.4
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        auditor = ConservationAuditor().attach(engine)
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        node = stack.cluster.node_of(RICH)
        stats = run_write(
            stack, engine, patterns, payloads,
            fault=lambda: node.memory.apply_shock(node.memory.available),
            fault_at=fault_at,
        )
        assert stats.tier == "remerge"
        assert stats.borrow_fallbacks == 1
        assert stats.leases_revoked >= 1
        assert "memory-squeeze" in stats.extra.get("borrow_fallback_reason", "")
        assert_image(stack, patterns, payloads)
        auditor.verify(patterns)
        assert stack.cluster.memory_ledger.outstanding == 0

    def test_fault_free_borrow_needs_single_attempt(self):
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        auditor = ConservationAuditor().attach(engine)
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        run_write(stack, engine, patterns, payloads)
        record = auditor.verify(patterns)
        assert record.attempts == 1


class TestAcquisitionContention:
    """A contender squeezes the lender *between* planning and acquisition.

    The planner reads per-node memory in the planning allgather; lease
    acquisition happens a few microseconds later.  A contender that
    allocates inside that window invalidates the plan's assumption
    without changing the plan itself — exactly the race the retry/backoff
    loop exists for.  The window bounds come from a fault-free probe's
    trace (memory snapshot = last planning allgather, acquisition =
    first ``borrow.acquire`` span).
    """

    def acquire_window(self):
        """(memory-snapshot time, acquisition time) from a probe trace."""
        stack = make_borrow_stack()
        tracer = Tracer(capacity=1 << 18)
        tracer.install(stack.env)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]
        run_write(stack, engine, patterns, payloads)
        events = list(tracer.events())
        acquire_ts = min(
            ev.ts for ev in events if ev.name == "borrow.acquire"
        )
        snapshot_ts = max(
            ev.ts
            for ev in events
            if ev.name == "coll.allgather" and ev.ts < acquire_ts
        )
        assert snapshot_ts < acquire_ts
        return snapshot_ts, acquire_ts

    def contended_run(self, release_at=None):
        """Run a borrow write whose lender is squeezed pre-acquisition."""
        snapshot_ts, acquire_ts = self.acquire_window()
        stack = make_borrow_stack()
        node = stack.cluster.node_of(RICH)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow")
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]

        def main(ctx):
            if ctx.rank == 0:
                def contender():
                    # land after the planner's memory snapshot but
                    # before the first grant attempt
                    yield ctx.env.sleep((snapshot_ts + acquire_ts) / 2)
                    blob = node.memory.alloc(
                        node.memory.free_available - 4 * KIB,
                        label="contender",
                    )
                    if release_at is not None:
                        yield ctx.env.sleep(release_at)
                        node.memory.free(blob)
                ctx.spawn(contender(), name="contender")
            yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])

        stack.run_spmd(main)
        return stack, engine.history[-1], patterns, payloads

    def test_backoff_retry_wins_after_contender_releases(self):
        # released inside the capped-backoff window (~1.5 ms for the
        # default base 1e-4 / limit 4), so a later retry sees free memory
        stack, stats, patterns, payloads = self.contended_run(release_at=3e-4)
        assert stats.leases_granted > 0
        assert stack.cluster.memory_ledger.denied > 0
        assert stats.borrow_fallbacks == 0
        assert stack.cluster.memory_ledger.outstanding == 0
        assert_image(stack, patterns, payloads)

    def test_exhausted_retries_degrade_before_any_byte_moves(self):
        stack, stats, patterns, payloads = self.contended_run(release_at=None)
        assert stats.borrow_fallbacks == 1
        assert stats.extra.get("borrow_fallback_round") == -1
        assert "acquire-exhausted" in stats.extra.get(
            "borrow_fallback_reason", ""
        )
        assert stats.borrow_bytes == 0
        assert stack.cluster.memory_ledger.denied > 0
        assert stack.cluster.memory_ledger.outstanding == 0
        assert_image(stack, patterns, payloads)


class TestPlanCacheLeaseInvalidation:
    def test_signature_includes_lease_digest(self):
        from repro.core import PlanCache

        patterns = tuple(block_patterns())
        cfg = mcio_cfg("borrow")
        base = PlanCache.signature(patterns, cfg, frozenset(), 256)
        leased = PlanCache.signature(
            patterns, cfg, frozenset(), 256, lease_digest=((0, 2, 8192),)
        )
        assert base != leased

    def test_grant_and_revoke_invalidate_cached_plans(self):
        from repro.core import PlanCache

        cache = PlanCache(enabled=True)
        cache.store(("k",), (), ("plan", None, None))
        assert len(cache) == 1

        class FakeLease:
            lease_id = 0

        cache.on_lease_event(FakeLease(), "release")
        assert len(cache) == 1, "release must not invalidate"
        cache.on_lease_event(FakeLease(), "grant")
        assert len(cache) == 0
        assert cache.invalidation_log[-1] == "lease:grant"
        cache.store(("k",), (), ("plan", None, None))
        cache.on_lease_event(FakeLease(), "revoke")
        assert len(cache) == 0
        assert cache.invalidation_log[-1] == "lease:revoke"

    def test_borrowing_engine_with_cache_stays_correct(self):
        """End-to-end: plan cache + lease churn still produces right bytes."""
        stack = make_borrow_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg("borrow", plan_cache=True)
        )
        patterns = block_patterns()
        payloads = [rank_payload(r, NBYTES) for r in range(N_RANKS)]

        def main(ctx):
            yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])
            yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])

        stack.run_spmd(main)
        assert len(engine.history) == 2
        assert_image(stack, patterns, payloads)
        # every grant invalidated the cache, so borrowed plans never alias
        assert cacheable_invalidations(engine) > 0


def cacheable_invalidations(engine):
    return engine.plan_cache.stats.invalidations
