"""Persistent collectives under faults: invalidation and mid-pipeline drain.

A frozen plan names concrete hosts and buffer sizes, so lease traffic and
host faults must (a) never perturb the epoch already in flight and
(b) force a re-plan at the *next* ``start()``.  A failure noticed in the
middle of a pipelined epoch drains the in-flight PFS windows, finishes
the epoch at blocking fidelity behind the failover machinery, and keeps
the byte-conservation ledger green throughout.
"""

import numpy as np

from repro.core import (
    ConservationAuditor,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
)
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.mpi import SimFile, contiguous_view

from tests.helpers import make_stack

KIB = 1024


def step_bytes(rank, step, nbytes):
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + step * 7) % 251).astype(np.uint8)


# ---------------------------------------------------------------------------
# lease events between start() and wait()
# ---------------------------------------------------------------------------
def test_lease_event_in_flight_replans_next_epoch():
    stack = make_stack(n_ranks=8, n_nodes=2, cores=4)
    engine = MemoryConsciousCollectiveIO(
        stack.comm,
        stack.pfs,
        MCIOConfig(msg_group=16 * KIB, msg_ind=2 * KIB, mem_min=0, nah=2,
                   cb_buffer_size=1024, min_buffer=1),
    )
    fh = SimFile.open(stack.comm, engine)
    block, steps = 1200, 3
    ledger = stack.cluster.memory_ledger

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * block, block))
        pc = fh.write_all_init(ctx, overlap=False)
        if ctx.rank == 0:
            def saboteur():
                # fires while epoch 0 is between start() and wait():
                # a foreign tenant leases (and returns) lender memory
                yield ctx.env.sleep(1e-6)
                lease = ledger.grant(0, 99, 4 * KIB, now=ctx.env.now, term=1.0)
                assert lease is not None
                ledger.release(lease, now=ctx.env.now)
            ctx.spawn(saboteur(), name="saboteur")
        for step in range(steps):
            pc.start(ctx, step_bytes(ctx.rank, step, block))
            yield from pc.wait(ctx)
        return pc

    pc = stack.run_spmd(main)[0]
    # epoch 0 planned; the in-flight lease events staled the handle, so
    # epoch 1 re-planned; epoch 2 replayed frozen
    assert pc.replans == 2
    assert any(r.startswith("lease-") for r in pc.invalidations)
    assert [s.extra["persistent_replanned"] for s in engine.history] == [
        True, True, False,
    ]
    # the in-flight epoch itself was never perturbed
    assert engine.history[0].failovers == 0
    for r in range(8):
        got = stack.pfs.datastore.read(r * block, block)
        assert np.array_equal(got, step_bytes(r, steps - 1, block))


# ---------------------------------------------------------------------------
# host failure in the middle of a pipelined epoch
# ---------------------------------------------------------------------------
def test_node_failure_mid_pipeline_drains_then_fails_over():
    block, steps = 500_000, 2
    stack = make_stack(
        n_ranks=16, n_nodes=16, cores=1,
        nic_bandwidth=1e6, server_bandwidth=1e6, servers=4,
    )
    stack.cluster.set_memory_availability(
        (3_000_000, 3_000_000) + (100_000,) * 14
    )
    engine = MemoryConsciousCollectiveIO(
        stack.comm,
        stack.pfs,
        MCIOConfig(
            msg_group=10**9, msg_ind=256 * KIB, mem_min=200_000, nah=4,
            min_buffer=1, cb_buffer_size=64 * KIB, failover=True,
        ),
    )
    auditor = ConservationAuditor().attach(engine)
    fh = SimFile.open(stack.comm, engine)
    # node 0 hosts half the aggregation buffers; it dies mid-epoch-0
    schedule = FaultSchedule(
        [FaultEvent(time=5.0, kind="node_failure", target=0,
                    duration=None, magnitude=4.0)]
    )
    injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
    engine.watch_faults(injector)
    injector.start()

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * block, block))
        pc = fh.write_all_init(ctx, overlap=True)
        for step in range(steps):
            pc.start(ctx, step_bytes(ctx.rank, step, block))
            yield from pc.wait(ctx)
        return pc

    pc = stack.run_spmd(main)[0]
    injector.stop()
    e0, e1 = engine.history

    # epoch 0: in-flight windows drained, then failover carried it home
    assert "pipeline_drained_at" in e0.extra
    assert e0.failovers >= 1
    # the fault (and the failover itself) staled the handle: epoch 1
    # re-planned around the dead host and refused to pipeline over it
    assert pc.replans == 2
    assert any(r.startswith("fault-") for r in pc.invalidations)
    assert e1.extra["persistent_replanned"] is True
    assert e1.extra.get("pipeline_fallback") == "failed-nodes"
    assert 0 not in {
        stack.comm.placement[a] for a in e1.aggregator_ranks
    }

    # no bytes lost in either epoch, leases balanced, memory clean
    patterns = [contiguous_view(r * block, block) for r in range(16)]
    assert len(auditor.records) == steps
    for rec in auditor.records:
        auditor.verify(patterns, record=rec)
    for r in range(16):
        got = stack.pfs.datastore.read(r * block, block)
        assert np.array_equal(got, step_bytes(r, steps - 1, block))
