"""Integration tests: memory-conscious collective I/O end-to-end."""

import numpy as np
import pytest

from repro.core import (
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.request import AccessPattern
from repro.mpi import block_decompose_3d, subarray_view_3d, vector_view

from tests.helpers import make_stack, rank_payload


def serial_pattern(rank, width=500):
    return AccessPattern.contiguous(rank * width, width)


def interleaved_pattern(rank, n_ranks, xfer=64, blocks=6):
    return vector_view(offset=rank * xfer, count=blocks, block=xfer,
                       stride=n_ranks * xfer)


def mcio_cfg(**kw):
    defaults = dict(
        msg_group=4096,
        msg_ind=1024,
        mem_min=0,
        nah=2,
        cb_buffer_size=1024,
    )
    defaults.update(kw)
    return MCIOConfig(**defaults)


def roundtrip(stack, engine, make_pattern):
    n = stack.comm.size
    payloads = {}

    def writer(ctx):
        pattern = make_pattern(ctx.rank)
        payloads[ctx.rank] = rank_payload(ctx.rank, pattern.nbytes)
        yield from engine.write(ctx, pattern, payloads[ctx.rank].copy())

    stack.run_spmd(writer)

    def reader(ctx):
        data = yield from engine.read(ctx, make_pattern(ctx.rank))
        return data

    results = stack.run_spmd(reader)
    for r in range(n):
        assert (results[r] == payloads[r]).all(), f"rank {r} data corrupt"


class TestCorrectness:
    def test_serial_roundtrip(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, mcio_cfg())
        roundtrip(stack, engine, lambda r: serial_pattern(r))

    def test_interleaved_roundtrip(self):
        stack = make_stack(n_ranks=8, n_nodes=2)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg(msg_group=1024, msg_ind=512)
        )
        roundtrip(stack, engine, lambda r: interleaved_pattern(r, 8))

    def test_3d_subarray_roundtrip(self):
        stack = make_stack(n_ranks=8, n_nodes=2)
        g = (8, 8, 8)
        blocks = block_decompose_3d(g, 8)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, mcio_cfg(msg_group=256, msg_ind=128)
        )
        roundtrip(
            stack, engine,
            lambda r: subarray_view_3d(g, blocks[r][1], blocks[r][0], elem_size=2),
        )

    def test_multi_round_roundtrip(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        # tight availability keeps buffers near the nominal 64 B, forcing
        # several rounds per domain (buffers cannot expand)
        stack.cluster.set_memory_availability([150, 150, 150])
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(cb_buffer_size=64, msg_ind=512, msg_group=2048),
        )
        roundtrip(stack, engine, lambda r: serial_pattern(r, 300))
        assert engine.history[0].rounds_total > engine.history[0].n_aggregators

    def test_domain_granularity_roundtrip(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(cb_buffer_size=64, msg_ind=512, msg_group=2048,
                     shuffle_granularity="domain"),
        )
        roundtrip(stack, engine, lambda r: serial_pattern(r, 300))

    def test_empty_and_nonempty_mix(self):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, mcio_cfg())
        payload = rank_payload(3, 200)

        def main(ctx):
            if ctx.rank == 3:
                yield from engine.write(ctx, AccessPattern.contiguous(0, 200),
                                        payload.copy())
            else:
                yield from engine.write(ctx, AccessPattern(()))

        stack.run_spmd(main)
        assert (stack.pfs.datastore.read(0, 200) == payload).all()


class TestPlanningBehaviour:
    def run_write(self, stack, engine, make_pattern):
        def writer(ctx):
            pattern = make_pattern(ctx.rank)
            yield from engine.write(ctx, pattern,
                                    rank_payload(ctx.rank, pattern.nbytes))

        stack.run_spmd(writer)
        return engine.history[-1]

    def test_groups_formed_for_serial_data(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(msg_group=2000, msg_ind=1000),
        )
        stats = self.run_write(stack, engine, lambda r: serial_pattern(r, 500))
        # 12 ranks x 500 B = 6000 B over 3 nodes; msg_group 2000 -> 3 groups
        assert stats.n_groups == 3
        assert stats.shuffle_inter_group_bytes == 0

    def test_memory_aware_placement_avoids_starved_node(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        stack.cluster.set_memory_availability([50, 10**8, 10**8])
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(msg_group=10**6, msg_ind=2048, cb_buffer_size=2048),
        )
        stats = self.run_write(stack, engine, lambda r: serial_pattern(r, 500))
        assert stats.paged_aggregators == 0
        # no aggregator lives on node 0 (ranks 0-3)
        assert all(r >= 4 for r in stats.aggregator_ranks)

    def test_baseline_pages_where_mcio_does_not(self):
        # storage fast enough that the paged aggregator's throttled
        # shuffle/assembly path is the bottleneck, and a paging penalty in
        # the realistic swap-vs-DRAM range (~30x)
        def run(strategy_factory):
            stack = make_stack(
                n_ranks=12, n_nodes=3,
                server_bandwidth=1e8, request_overhead=1e-5,
                paging_penalty=32.0,
            )
            stack.cluster.set_memory_availability([100, 10**8, 10**8])
            engine = strategy_factory(stack)
            return self.run_write(stack, engine,
                                  lambda r: serial_pattern(r, 5000))

        base = run(lambda s: TwoPhaseCollectiveIO(
            s.comm, s.pfs, TwoPhaseConfig(cb_buffer_size=20480)))
        mcio = run(lambda s: MemoryConsciousCollectiveIO(
            s.comm, s.pfs,
            mcio_cfg(msg_group=10**6, msg_ind=20480, cb_buffer_size=20480)))
        assert base.paged_aggregators > 0
        assert mcio.paged_aggregators == 0
        assert mcio.elapsed < base.elapsed

    def test_nah_respected(self):
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(msg_group=10**6, msg_ind=256, cb_buffer_size=256, nah=2),
        )
        stats = self.run_write(stack, engine, lambda r: serial_pattern(r, 500))
        per_node = {}
        for rank in stats.aggregator_ranks:
            node = stack.comm.node_id_of_rank(rank)
            per_node[node] = per_node.get(node, 0) + 1
        assert all(v <= 2 for v in per_node.values())

    def test_more_aggregators_than_baseline_when_memory_allows(self):
        """With small msg_ind, MCIO deploys N_ah aggregators per node."""
        stack = make_stack(n_ranks=12, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(msg_group=10**6, msg_ind=512, cb_buffer_size=512, nah=2),
        )
        stats = self.run_write(stack, engine, lambda r: serial_pattern(r, 500))
        assert stats.n_aggregators > 3  # baseline would use exactly 3

    def test_total_starvation_falls_back_paged(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        stack.cluster.set_memory_availability([10, 10, 10])
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            mcio_cfg(msg_group=512, msg_ind=512, cb_buffer_size=2048),
        )
        stats = self.run_write(stack, engine, lambda r: serial_pattern(r, 500))
        assert stats.paged_aggregators > 0  # graceful degradation

    def test_memory_variance_lower_than_baseline(self):
        """MCIO balances buffer memory across aggregator hosts."""
        def run(strategy_factory):
            stack = make_stack(n_ranks=12, n_nodes=3)
            engine = strategy_factory(stack)
            return self.run_write(stack, engine,
                                  lambda r: serial_pattern(r, 3000))

        base = run(lambda s: TwoPhaseCollectiveIO(
            s.comm, s.pfs, TwoPhaseConfig(cb_buffer_size=16384)))
        mcio = run(lambda s: MemoryConsciousCollectiveIO(
            s.comm, s.pfs,
            mcio_cfg(msg_group=12000, msg_ind=3000, cb_buffer_size=16384)))
        # baseline allocates the full fixed buffer everywhere; MCIO caps
        # buffers at the domain size -> lower peak commitment
        assert mcio.agg_memory_peak <= base.agg_memory_peak

    def test_deterministic(self):
        def run():
            stack = make_stack(n_ranks=12, n_nodes=3, seed=7)
            stack.cluster.sample_memory_availability(mean_bytes=2048,
                                                     sigma_bytes=1024)
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs,
                mcio_cfg(msg_group=4096, msg_ind=1024, cb_buffer_size=2048),
            )
            stats = self.run_write(stack, engine,
                                   lambda r: serial_pattern(r, 500))
            return (stats.elapsed, stats.aggregator_ranks,
                    stats.paged_aggregators)

        assert run() == run()

    def test_read_stats_recorded(self):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, mcio_cfg())

        def main(ctx):
            p = serial_pattern(ctx.rank, 200)
            yield from engine.write(ctx, p, rank_payload(ctx.rank, 200))
            yield from engine.read(ctx, p)

        stack.run_spmd(main)
        assert len(engine.history) == 2
        assert engine.history[1].op == "read"
        assert engine.history[1].total_bytes == 6 * 200
