"""Cross-engine equivalence: every strategy moves the same bytes.

Property-based: for arbitrary non-overlapping rank workloads, a
collective write followed by a collective read must be byte-exact under
*any* strategy (two-phase, MCIO, independent, sieving), at any buffer
size, at either shuffle granularity — and all strategies must leave the
file in the identical state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    DataSievingIO,
    IndependentIO,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.request import AccessPattern, Extent

from tests.helpers import make_stack, rank_payload


@st.composite
def rank_workloads(draw):
    """Disjoint per-rank piece lists over a small shared file."""
    n_ranks = draw(st.integers(2, 6))
    n_pieces = draw(st.integers(1, 10))
    # carve the file into pieces and deal them to ranks round-robin-ish
    cursor = 0
    pieces = []
    for _ in range(n_pieces):
        cursor += draw(st.integers(0, 40))  # gap
        length = draw(st.integers(1, 120))
        pieces.append(Extent(cursor, length))
        cursor += length
    owners = [draw(st.integers(0, n_ranks - 1)) for _ in pieces]
    patterns = []
    for r in range(n_ranks):
        mine = [p for p, o in zip(pieces, owners) if o == r]
        patterns.append(AccessPattern.from_extents(mine))
    return patterns


def engines(stack, buffer_size, granularity):
    yield TwoPhaseCollectiveIO(
        stack.comm, stack.pfs,
        TwoPhaseConfig(cb_buffer_size=buffer_size,
                       shuffle_granularity=granularity),
    )
    yield MemoryConsciousCollectiveIO(
        stack.comm, stack.pfs,
        MCIOConfig(msg_group=512, msg_ind=128, mem_min=0, nah=2,
                   cb_buffer_size=buffer_size, min_buffer=1,
                   shuffle_granularity=granularity),
    )
    yield IndependentIO(stack.comm, stack.pfs)
    yield DataSievingIO(stack.comm, stack.pfs)


@given(
    patterns=rank_workloads(),
    buffer_size=st.sampled_from([32, 128, 1024]),
    granularity=st.sampled_from(["round", "domain"]),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_strategies_agree_byte_for_byte(patterns, buffer_size, granularity):
    n_ranks = len(patterns)
    payloads = {r: rank_payload(r, patterns[r].nbytes) for r in range(n_ranks)}
    file_images = {}
    readbacks = {}

    stack0 = make_stack(n_ranks=n_ranks, n_nodes=2, cores=4)
    for engine in engines(stack0, buffer_size, granularity):
        stack = make_stack(n_ranks=n_ranks, n_nodes=2, cores=4)
        engine.comm = stack.comm
        engine.pfs = stack.pfs

        def main(ctx):
            yield from engine.write(ctx, patterns[ctx.rank],
                                    payloads[ctx.rank].copy())
            data = yield from engine.read(ctx, patterns[ctx.rank])
            return data

        results = stack.run_spmd(main)
        for r in range(n_ranks):
            got = results[r]
            if patterns[r].empty:
                continue
            assert (got == payloads[r]).all(), (
                f"{engine.name}: rank {r} read back wrong bytes"
            )
        end = max((p.end for p in patterns if not p.empty), default=0)
        file_images[engine.name] = bytes(stack.pfs.datastore.read(0, end))
        readbacks[engine.name] = results

    images = set(file_images.values())
    assert len(images) <= 1, (
        f"strategies disagree on file contents: {list(file_images)}"
    )


def test_lockstep_and_streaming_identical_data():
    """The two shuffle granularities are timing models, not data paths."""
    patterns = [AccessPattern.contiguous(r * 500, 500) for r in range(6)]
    images = {}
    for granularity in ("round", "domain"):
        stack = make_stack(n_ranks=6, n_nodes=3)
        engine = TwoPhaseCollectiveIO(
            stack.comm, stack.pfs,
            TwoPhaseConfig(cb_buffer_size=128, shuffle_granularity=granularity),
        )

        def main(ctx):
            yield from engine.write(ctx, patterns[ctx.rank],
                                    rank_payload(ctx.rank, 500))

        stack.run_spmd(main)
        images[granularity] = bytes(stack.pfs.datastore.read(0, 3000))
    assert images["round"] == images["domain"]


def test_strategies_same_bytes_written_metric():
    """total_bytes accounting matches the workload for every strategy."""
    patterns = [AccessPattern.contiguous(r * 300, 300) for r in range(4)]
    for factory in (
        lambda s: TwoPhaseCollectiveIO(s.comm, s.pfs),
        lambda s: MemoryConsciousCollectiveIO(
            s.comm, s.pfs,
            MCIOConfig(msg_group=600, msg_ind=300, mem_min=0, nah=2,
                       min_buffer=1, cb_buffer_size=512),
        ),
        lambda s: IndependentIO(s.comm, s.pfs),
    ):
        stack = make_stack(n_ranks=4, n_nodes=2)
        engine = factory(stack)

        def main(ctx):
            yield from engine.write(ctx, patterns[ctx.rank],
                                    rank_payload(ctx.rank, 300))

        stack.run_spmd(main)
        assert engine.history[0].total_bytes == 4 * 300, engine.name
