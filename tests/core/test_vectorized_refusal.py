"""Mode auto-selection negative paths: when vectorization must refuse.

A collective with an active fault schedule, a currently failed node,
outstanding remote-memory leases, a data plane, or a plan that needs
lender-backed buffers cannot be simulated at node level without
changing behaviour — the driver must refuse, fall back to per-rank
coroutines, count the refusal in ``CollectiveStats.vectorized_refusals``
and record the reason.  And the fallback itself must be *exactly* the
run a plain per-rank engine would have produced.
"""

from __future__ import annotations

import pytest

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.request import AccessPattern
from repro.core.vectorized import run_vectorized_collective
from repro.faults import FaultEvent, FaultInjector, FaultSchedule

from tests.helpers import assert_stats_equivalent, make_stack

N_RANKS = 12
BASE = dict(
    msg_group=16 * 1024,
    msg_ind=2 * 1024,
    mem_min=0,
    nah=2,
    min_buffer=1,
)


def patterns():
    return [AccessPattern.contiguous(r * 4096, 4096) for r in range(N_RANKS)]


def vec_config(**overrides) -> MCIOConfig:
    kwargs = dict(BASE, execution_mode="vectorized")
    kwargs.update(overrides)
    return MCIOConfig(**kwargs)


class TestRefusalReasons:
    def test_data_plane(self):
        stack = make_stack(n_ranks=N_RANKS, with_data=True)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "per-rank"
        assert stats.vectorized_refusals == 1
        assert stats.extra["vectorized_refusal"] == "data-plane"

    def test_payloads_alone_refuse(self):
        """Even without a datastore, real payload buffers force per-rank."""
        import numpy as np

        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        payloads = [np.zeros(4096, dtype=np.uint8) for _ in range(N_RANKS)]
        stats = run_vectorized_collective(
            engine, patterns(), "write", payloads=payloads
        )
        assert stats.extra["vectorized_refusal"] == "data-plane"

    def test_fault_schedule(self):
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        schedule = FaultSchedule(
            [FaultEvent(time=1e9, kind="node_failure", target=0)]
        )
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        engine.watch_faults(injector)
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "per-rank"
        assert stats.extra["vectorized_refusal"] == "fault-schedule"

    def test_empty_fault_schedule_does_not_refuse(self):
        """Watching an injector with no events keeps vectorization on."""
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        injector = FaultInjector(
            stack.env, stack.cluster, stack.pfs, FaultSchedule()
        )
        engine.watch_faults(injector)
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "vectorized"
        assert stats.vectorized_refusals == 0

    @pytest.mark.parametrize("failover", [False, True])
    def test_failed_node(self, failover):
        """A crippled host (with or without mid-run failover armed) is
        per-rank territory: degraded-mode timing and the failover
        machinery live in rank coroutines."""
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, vec_config(failover=failover)
        )
        stack.cluster.nodes[1].fail()
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "per-rank"
        assert stats.extra["vectorized_refusal"] == "failed-nodes"

    def test_failover_config_alone_does_not_refuse(self):
        """failover=True with a healthy cluster stays vectorized — the
        per-rank failover check is event-free when nothing failed."""
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, vec_config(failover=True)
        )
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "vectorized"
        assert stats.vectorized_refusals == 0

    def test_active_lease(self):
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        ledger = stack.cluster.memory_ledger
        lease = ledger.grant(
            lender_node=2, borrower_rank=0, nbytes=4096, now=0.0, term=1e9
        )
        assert lease is not None
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "per-rank"
        assert stats.extra["vectorized_refusal"] == "active-leases"
        ledger.release(lease, now=float(stack.env.now))

    def test_lender_domains(self):
        """A hybrid plan that needs borrowed buffers refuses post-plan."""
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        rich = 2
        for node in stack.cluster.nodes:
            node.memory.set_available(10**9 if node.node_id == rich else 6000)
        config = vec_config(
            placement_policy="hybrid",
            adaptive_buffer=False,
            cb_buffer_size=8 * 1024,
            msg_ind=4 * 1024,
            msg_group=1 << 30,
        )
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, config)
        stats = run_vectorized_collective(engine, patterns(), "write")
        assert stats.execution_mode == "per-rank"
        assert stats.extra["vectorized_refusal"] == "lender-domains"
        assert stats.leases_granted > 0  # the fallback really borrowed


class TestFallbackFidelity:
    """The refused run must equal a pure per-rank run of the scenario."""

    def test_failed_node_fallback_matches_per_rank(self):
        def scenario(mode):
            stack = make_stack(n_ranks=N_RANKS, with_data=False)
            stack.cluster.nodes[1].fail()
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs, vec_config(execution_mode=mode)
            )
            if mode == "vectorized":
                run_vectorized_collective(engine, patterns(), "write")
            else:
                pats = patterns()

                def main(ctx):
                    yield from engine.write(ctx, pats[ctx.rank])

                stack.run_spmd(main)
            return engine.history[-1], stack

        got, got_stack = scenario("vectorized")
        want, want_stack = scenario("per-rank")
        assert_stats_equivalent(want, got)
        # bit-identical timing too: the fallback IS the per-rank path
        assert float(got_stack.env.now).hex() == float(want_stack.env.now).hex()
        assert got.elapsed == want.elapsed

    def test_lender_domain_fallback_matches_per_rank(self):
        def scenario(mode):
            stack = make_stack(n_ranks=N_RANKS, with_data=False)
            for node in stack.cluster.nodes:
                node.memory.set_available(
                    10**9 if node.node_id == 2 else 6000
                )
            engine = MemoryConsciousCollectiveIO(
                stack.comm,
                stack.pfs,
                vec_config(
                    placement_policy="hybrid",
                    adaptive_buffer=False,
                    cb_buffer_size=8 * 1024,
                    msg_ind=4 * 1024,
                    msg_group=1 << 30,
                    execution_mode=mode,
                ),
            )
            if mode == "vectorized":
                run_vectorized_collective(engine, patterns(), "write")
            else:
                pats = patterns()

                def main(ctx):
                    yield from engine.write(ctx, pats[ctx.rank])

                stack.run_spmd(main)
            return engine.history[-1], stack

        got, got_stack = scenario("vectorized")
        want, want_stack = scenario("per-rank")
        assert_stats_equivalent(want, got)
        assert float(got_stack.env.now).hex() == float(want_stack.env.now).hex()
        assert got.elapsed == want.elapsed


class TestModeSelection:
    def test_auto_mode_dispatches_through_harness(self):
        """execution_mode="auto" routes run_collective to the driver."""
        from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
        from repro.experiments.harness import Platform, run_collective

        spec = ClusterSpec(
            nodes=3,
            node=NodeSpec(
                cores=4,
                memory_bytes=10**9,
                memory_bandwidth=1e8,
                memory_channels=2,
                nic_bandwidth=1e7,
                nic_latency=1e-6,
            ),
            storage=StorageSpec(
                servers=4,
                server_bandwidth=1e6,
                request_overhead=1e-3,
                stripe_size=256,
            ),
        )
        platform = Platform.build(spec, N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(
            platform.comm, platform.pfs, vec_config(execution_mode="auto")
        )
        stats = run_collective(platform, engine, patterns(), ops=("write",))
        assert stats[0].execution_mode == "vectorized"

    def test_per_rank_mode_ignores_driver(self):
        """The default mode runs SPMD exactly as before this feature."""
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, MCIOConfig(**BASE)
        )
        pats = patterns()

        def main(ctx):
            yield from engine.write(ctx, pats[ctx.rank])

        stack.run_spmd(main)
        stats = engine.history[-1]
        assert stats.execution_mode == "per-rank"
        assert stats.vectorized_refusals == 0
        assert "vectorized_refusal" not in stats.extra

    def test_bad_op_rejected(self):
        stack = make_stack(n_ranks=N_RANKS, with_data=False)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, vec_config())
        with pytest.raises(ValueError, match="op must be"):
            run_vectorized_collective(engine, patterns(), "append")

    def test_bad_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution_mode"):
            MCIOConfig(execution_mode="warp", **BASE)
