"""When group sharding must refuse and fall back to per-rank execution.

Mirrors the vectorized refusal matrix plus the two reasons unique to
sharding: ``single-group`` (nothing to partition) and
``shared-aggregator-host`` (a node hosting buffers of several groups
would see a partition-dependent memory-commitment sequence).  Refusals
are partition-*independent*: the same plan refuses identically at any
jobs count.
"""

from __future__ import annotations

import pytest

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.request import AccessPattern
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.parallel import run_sharded_collective

from tests.helpers import assert_stats_equivalent, make_stack

KIB = 1024

#: A config whose plan genuinely shards on the default 8r/4n/2c stack.
SHARDABLE = dict(
    msg_group=8 * KIB, msg_ind=2 * KIB, mem_min=0, nah=1,
    cb_buffer_size=1024, min_buffer=1,
)
SHAPE = dict(n_ranks=8, n_nodes=4, cores=2)


def patterns(n_ranks=8, tile=4 * KIB):
    return [AccessPattern.contiguous(r * tile, tile) for r in range(n_ranks)]


def shard_stack(**overrides):
    kwargs = dict(SHAPE, with_data=False)
    kwargs.update(overrides)
    return make_stack(**kwargs)


def shard_config(**overrides) -> MCIOConfig:
    kwargs = dict(SHARDABLE)
    kwargs.update(overrides)
    return MCIOConfig(**kwargs)


def assert_refused(stats, reason: str) -> None:
    assert stats.execution_mode == "per-rank"
    assert stats.sharding_refusals == 1
    assert stats.extra["sharding_refusal"] == reason


class TestRefusalReasons:
    def test_data_plane(self):
        stack = shard_stack(with_data=True)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        stats = run_sharded_collective(engine, patterns(), "write", jobs=2)
        assert_refused(stats, "data-plane")

    def test_payloads_alone_refuse(self):
        import numpy as np

        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        payloads = [np.zeros(4 * KIB, dtype=np.uint8) for _ in range(8)]
        stats = run_sharded_collective(
            engine, patterns(), "write", payloads=payloads, jobs=2
        )
        assert_refused(stats, "data-plane")

    def test_fault_schedule(self):
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        schedule = FaultSchedule(
            [FaultEvent(time=1e9, kind="node_failure", target=0)]
        )
        injector = FaultInjector(stack.env, stack.cluster, stack.pfs, schedule)
        engine.watch_faults(injector)
        stats = run_sharded_collective(engine, patterns(), "write", jobs=2)
        assert_refused(stats, "fault-schedule")

    def test_failed_node(self):
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        stack.cluster.nodes[1].fail()
        stats = run_sharded_collective(engine, patterns(), "write", jobs=2)
        assert_refused(stats, "failed-nodes")

    def test_active_lease(self):
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        ledger = stack.cluster.memory_ledger
        lease = ledger.grant(
            lender_node=2, borrower_rank=0, nbytes=4096, now=0.0, term=1e9
        )
        assert lease is not None
        stats = run_sharded_collective(engine, patterns(), "write", jobs=2)
        assert_refused(stats, "active-leases")
        ledger.release(lease, now=float(stack.env.now))

    def test_single_group(self):
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            shard_config(msg_group=1 << 30, msg_ind=1 << 30),
        )
        stats = run_sharded_collective(engine, patterns(), "write", jobs=2)
        assert_refused(stats, "single-group")
        assert stats.n_groups == 1

    def test_shared_aggregator_host(self):
        """Interleaved views split each group across several aggregators
        (msg_ind < msg_group), so 4 groups spread ~16 leaves over 4 nodes
        — some node inevitably hosts buffers of two groups."""
        from repro.core.request import StridedSegment

        chunk = KIB
        n_ranks = 8
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            shard_config(cb_buffer_size=2 * KIB),
        )
        pats = [
            AccessPattern(
                (StridedSegment(r * chunk, chunk, n_ranks * chunk, 4),)
            )
            for r in range(n_ranks)
        ]
        stats = run_sharded_collective(engine, pats, "write", jobs=2)
        assert_refused(stats, "shared-aggregator-host")
        assert stats.n_groups >= 2

    def test_lender_domains(self):
        stack = shard_stack(n_ranks=12, n_nodes=3, cores=4)
        rich = 2
        for node in stack.cluster.nodes:
            node.memory.set_available(10**9 if node.node_id == rich else 6000)
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            shard_config(
                placement_policy="hybrid", adaptive_buffer=False,
                cb_buffer_size=8 * KIB, msg_ind=4 * KIB, msg_group=1 << 30,
                nah=2,
            ),
        )
        pats = patterns(n_ranks=12)
        stats = run_sharded_collective(engine, pats, "write", jobs=2)
        assert_refused(stats, "lender-domains")
        assert stats.leases_granted > 0


class TestRefusalProperties:
    def test_refusal_is_jobs_independent(self):
        """The same plan refuses (or not) identically at every jobs count
        — partitioning never feeds into the refusal decision."""
        for jobs in (1, 2, 4):
            stack = shard_stack()
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs,
                shard_config(msg_group=1 << 30, msg_ind=1 << 30),
            )
            stats = run_sharded_collective(
                engine, patterns(), "write", jobs=jobs
            )
            assert_refused(stats, "single-group")

    def test_fallback_matches_pure_per_rank(self):
        """The refused run is exactly the per-rank run, timing included."""
        def scenario(sharded: bool):
            stack = shard_stack()
            engine = MemoryConsciousCollectiveIO(
                stack.comm, stack.pfs,
                shard_config(msg_group=1 << 30, msg_ind=1 << 30),
            )
            pats = patterns()
            if sharded:
                run_sharded_collective(engine, pats, "write", jobs=2)
            else:
                def main(ctx):
                    yield from engine.write(ctx, pats[ctx.rank])

                stack.run_spmd(main)
            return engine.history[-1], stack

        got, got_stack = scenario(sharded=True)
        want, want_stack = scenario(sharded=False)
        assert_stats_equivalent(want, got)
        assert float(got_stack.env.now).hex() == float(want_stack.env.now).hex()
        assert got.elapsed == want.elapsed

    def test_one_shot_refusal_counter(self):
        """The pending refusal is consumed by the fallback collective and
        does not leak into the engine's next operation."""
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs,
            shard_config(msg_group=1 << 30, msg_ind=1 << 30),
        )
        pats = patterns()
        first = run_sharded_collective(engine, pats, "write", jobs=2)
        assert first.sharding_refusals == 1

        def main(ctx):
            yield from engine.write(ctx, pats[ctx.rank])

        stack.run_spmd(main)
        second = engine.history[-1]
        assert second.sharding_refusals == 0
        assert "sharding_refusal" not in second.extra

    def test_bad_op_rejected(self):
        stack = shard_stack()
        engine = MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, shard_config()
        )
        with pytest.raises(ValueError, match="op must be"):
            run_sharded_collective(engine, patterns(), "append", jobs=2)
