"""Differential harness: per-rank reference vs group-sharded driver.

The equivalence contract (DESIGN.md §12): for plans the sharded driver
accepts — fault-free, lease-free, metadata-only collectives whose
aggregation groups do not share hosts — the merged stats must reproduce
every deterministic accounting field of the per-rank reference, and
must feed the byte-conservation auditor an identical
attempt/extent/shuffle record.  Only ``elapsed`` (the max over shard
chains), the plan-cache counters, and the execution-mode fields may
differ.

The golden cluster cases go through the same harness: their single-node
aggregator concentration makes most of them *refuse* (sharding is
partition-sensitive where vectorization is not), but equality must hold
either way — a refused cell is exactly the per-rank run.

``REPRO_TEST_JOBS`` sets the worker count (default 2) so CI can pin
both --jobs 2 and --jobs 4.
"""

from __future__ import annotations

import os

import pytest

from repro.core import MCIOConfig
from repro.core.request import AccessPattern, StridedSegment
from repro.parallel import ParallelRunner

from tests.goldens.cases import CLUSTER_CASES, build_patterns
from tests.helpers import assert_stats_equivalent, run_differential

KIB = 1024
JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))
CASES = {c.name: c for c in CLUSTER_CASES}

#: Shard refusal reasons a golden case may legitimately hit (they pile
#: aggregators onto few nodes); anything else is a bug.
GOLDEN_REFUSALS = {"single-group", "shared-aggregator-host"}


@pytest.fixture(scope="module")
def runner():
    """One shared worker pool for the whole module (start-up amortised)."""
    with ParallelRunner(jobs=JOBS) as r:
        yield r


def multi_group_setup(n_ranks=8, n_nodes=4, cores=2, tile=4 * KIB):
    """A workload/config pair that genuinely shards: one serial tile per
    rank, group size = two tiles, one aggregator per node."""
    patterns = [
        AccessPattern.contiguous(r * tile, tile) for r in range(n_ranks)
    ]
    config = MCIOConfig(
        msg_group=2 * tile, msg_ind=tile // 2, mem_min=0, nah=1,
        cb_buffer_size=1024, min_buffer=1,
    )
    return patterns, config, dict(n_ranks=n_ranks, n_nodes=n_nodes, cores=cores)


class TestMultiGroupSharding:
    @pytest.mark.parametrize("op", ["write", "read"])
    def test_stats_equivalent_and_really_sharded(self, op, runner):
        patterns, config, shape = multi_group_setup()
        ref, cand, _, _ = run_differential(
            patterns, config, op=op, candidate_mode="sharded",
            runner=runner, **shape,
        )
        assert ref.execution_mode == "per-rank"
        assert cand.execution_mode == "sharded"
        assert cand.sharding_refusals == 0
        assert cand.extra["shards"] == min(JOBS, cand.n_groups)
        assert cand.n_groups >= 2
        assert_stats_equivalent(ref, cand)

    @pytest.mark.parametrize("op", ["write", "read"])
    def test_audit_records_equivalent(self, op, runner):
        patterns, config, shape = multi_group_setup()
        ref, cand, ref_aud, cand_aud = run_differential(
            patterns, config, op=op, candidate_mode="sharded",
            runner=runner, **shape,
        )
        ref_rec = ref_aud.verify(patterns)
        cand_rec = cand_aud.verify(patterns)
        assert ref_rec.attempts == cand_rec.attempts == 1
        assert ref_rec.extents == cand_rec.extents
        assert ref_rec.final_attempt_shuffle == cand_rec.final_attempt_shuffle

    def test_jobs_count_does_not_change_results(self):
        """1, 2, and 4 workers produce identical merged stats (the
        determinism contract: partitioning must not leak into counters)."""
        patterns, config, shape = multi_group_setup()
        outs = []
        for jobs in (1, 2, 4):
            _, cand, _, _ = run_differential(
                patterns, config, op="write", candidate_mode="sharded",
                jobs=jobs, **shape,
            )
            assert cand.execution_mode == "sharded"
            j = cand.to_json()
            # elapsed is the max over shard chains, so it legitimately
            # depends on the partitioning; everything else must not
            j.pop("elapsed")
            j["extra"] = {
                k: v for k, v in j["extra"].items() if k != "shards"
            }
            outs.append(j)
        assert outs[0] == outs[1] == outs[2]

    def test_interleaved_multi_group_workload(self, runner):
        """Groups fed by many ranks across nodes (inter-node shuffle)."""
        n_ranks, n_nodes, cores = 8, 4, 2
        chunk = KIB
        # each rank strides across the whole file: every group receives
        # data from every node
        patterns = [
            AccessPattern(
                (StridedSegment(r * chunk, chunk, n_ranks * chunk, 4),)
            )
            for r in range(n_ranks)
        ]
        # msg_ind == msg_group: one aggregator per group, so the four
        # groups land on four distinct nodes (nah=1) and sharding holds
        config = MCIOConfig(
            msg_group=8 * KIB, msg_ind=8 * KIB, mem_min=0, nah=1,
            cb_buffer_size=2 * KIB, min_buffer=1,
        )
        ref, cand, ref_aud, cand_aud = run_differential(
            patterns, config, op="write", candidate_mode="sharded",
            runner=runner, n_ranks=n_ranks, n_nodes=n_nodes, cores=cores,
        )
        assert cand.execution_mode == "sharded"
        assert cand.shuffle_inter_node_bytes > 0
        assert_stats_equivalent(ref, cand)
        assert ref_aud.verify(patterns).extents == \
            cand_aud.verify(patterns).extents


class TestGoldenMatrix:
    @pytest.mark.parametrize("case_name", sorted(CASES))
    @pytest.mark.parametrize("op", ["write", "read"])
    def test_stats_equivalent_on_golden_matrix(self, case_name, op, runner):
        """Sharded-or-refused, every golden case equals the reference."""
        case = CASES[case_name]
        patterns = build_patterns(case)
        config = MCIOConfig(
            msg_group=16 * KIB, msg_ind=2 * KIB, mem_min=0, nah=2,
            cb_buffer_size=case.cb_buffer_size, min_buffer=1,
            shuffle_granularity=case.granularity,
        )
        ref, cand, ref_aud, cand_aud = run_differential(
            patterns, config, op=op,
            n_ranks=case.n_ranks, n_nodes=case.n_nodes, cores=case.cores,
            memory_availability=case.memory_availability,
            stripe_size=case.stripe_size,
            candidate_mode="sharded", runner=runner,
        )
        assert_stats_equivalent(ref, cand)
        if cand.execution_mode == "sharded":
            assert cand.sharding_refusals == 0
        else:
            assert cand.execution_mode == "per-rank"
            assert cand.sharding_refusals == 1
            assert cand.extra["sharding_refusal"] in GOLDEN_REFUSALS
        ref_rec = ref_aud.verify(patterns)
        cand_rec = cand_aud.verify(patterns)
        assert ref_rec.extents == cand_rec.extents
        assert ref_rec.final_attempt_shuffle == cand_rec.final_attempt_shuffle


class TestTraceAbsorption:
    def test_worker_timelines_land_on_parent_tracer(self):
        """With tracing enabled, shard events come home (absorbed with an
        offset) instead of vanishing in the worker processes."""
        from repro.core import MemoryConsciousCollectiveIO
        from repro.obs import Tracer
        from repro.parallel import run_sharded_collective

        from tests.helpers import make_stack

        patterns, config, shape = multi_group_setup()
        stack = make_stack(
            n_ranks=shape["n_ranks"], n_nodes=shape["n_nodes"],
            cores=shape["cores"], with_data=False,
        )
        tracer = Tracer()
        tracer.install(stack.env)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, config)
        stats = run_sharded_collective(engine, patterns, "write", jobs=2)
        assert stats.execution_mode == "sharded"
        events = list(tracer.events())
        assert events, "sharded run recorded no trace events"
        # rank-track events from the workers' sub-simulations made it home
        assert {e.pid for e in events if e.pid >= 0}, "no node-track events"


class TestHarnessDispatch:
    def test_sharded_mode_routes_through_run_collective(self):
        from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
        from repro.core import MemoryConsciousCollectiveIO
        from repro.experiments.harness import Platform, run_collective

        patterns, config, shape = multi_group_setup()
        spec = ClusterSpec(
            nodes=shape["n_nodes"],
            node=NodeSpec(
                cores=shape["cores"], memory_bytes=10**9,
                memory_bandwidth=1e8, memory_channels=2,
                nic_bandwidth=1e7, nic_latency=1e-6,
            ),
            storage=StorageSpec(
                servers=4, server_bandwidth=1e6,
                request_overhead=1e-3, stripe_size=256,
            ),
        )
        platform = Platform.build(spec, shape["n_ranks"], with_data=False)
        from dataclasses import replace

        engine = MemoryConsciousCollectiveIO(
            platform.comm, platform.pfs,
            replace(config, execution_mode="sharded"),
        )
        stats = run_collective(platform, engine, patterns, ops=("write",))
        assert stats[0].execution_mode == "sharded"
