"""ParallelRunner and cell_seed: the cell-sharding plumbing."""

from __future__ import annotations

import os

import pytest

from repro.parallel import ParallelRunner, cell_seed, resolve_jobs


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"cell {x} failed")


class TestResolveJobs:
    def test_auto_values(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestCellSeed:
    def test_deterministic_and_signature_dependent(self):
        a = cell_seed(0, 12, "mcio", 0.5)
        assert a == cell_seed(0, 12, "mcio", 0.5)
        assert a != cell_seed(0, 12, "mcio", 1.0)
        assert a != cell_seed(1, 12, "mcio", 0.5)

    def test_range(self):
        for sig in [(0,), (7, "x"), (3, 1.5, "two-phase", 1024)]:
            s = cell_seed(*sig)
            assert 0 <= s < 2**31 - 1


class TestParallelRunner:
    def test_serial_default(self):
        r = ParallelRunner()
        assert r.jobs == 1
        assert not r.parallel
        assert r.map(_square, [1, 2, 3]) == [1, 4, 9]
        r.close()  # no-op on a serial runner

    def test_parallel_map_preserves_order(self):
        with ParallelRunner(jobs=2) as r:
            assert r.parallel
            assert r.map(_square, range(10)) == [x * x for x in range(10)]

    def test_parallel_equals_serial(self):
        items = list(range(20))
        serial = ParallelRunner(jobs=1).map(_square, items)
        with ParallelRunner(jobs=3) as r:
            assert r.map(_square, items) == serial

    def test_single_item_runs_inline(self):
        # one item never pays pool start-up, even on a parallel runner
        r = ParallelRunner(jobs=4)
        assert r.map(_square, [5]) == [25]
        assert r._pool is None
        r.close()

    def test_pool_reused_across_maps(self):
        with ParallelRunner(jobs=2) as r:
            r.map(_square, [1, 2])
            pool = r._pool
            r.map(_square, [3, 4])
            assert r._pool is pool

    def test_worker_exception_propagates(self):
        with ParallelRunner(jobs=2) as r:
            with pytest.raises(RuntimeError, match="cell .* failed"):
                r.map(_boom, [1, 2, 3])

    def test_close_idempotent_and_context_manager(self):
        r = ParallelRunner(jobs=2)
        r.map(_square, [1, 2])
        r.close()
        r.close()
        assert r._pool is None
        # usable again after close (pool is lazily rebuilt)
        assert r.map(_square, [1, 2]) == [1, 4]
        r.close()
