"""Property-based per-rank vs sharded equivalence (seeded hypothesis).

The process-pool sibling of ``test_vectorized_properties``: hypothesis
draws whole configurations — workload shape, rank and node counts,
memory regime, placement policy, shuffle granularity, intra-node
aggregation, op — and every drawn cell must satisfy the sharded
equivalence contract: identical I/O extents and offsets, identical
shuffle byte split, and the same refusal-or-shard decision at every
worker count.  Refused cells serve per-rank and must *still* equal the
reference bit-for-bit.

``derandomize=True`` keeps CI deterministic; the example budget (120)
covers the issue's floor of 100 generated configurations.  A single
module-scoped worker pool is shared across examples so the suite pays
pool start-up once, not per-example.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCIOConfig
from repro.core.request import AccessPattern, StridedSegment
from repro.parallel import ParallelRunner

from tests.helpers import assert_stats_equivalent, run_differential

KIB = 1024
JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))

#: Reasons a fault-free, lease-capable drawn cell may refuse sharding.
VALID_REFUSALS = {
    "single-group",
    "shared-aggregator-host",
    "lender-domains",
    "independent-tier",
}


@pytest.fixture(scope="module")
def runner():
    with ParallelRunner(jobs=JOBS) as r:
        yield r


@st.composite
def workloads(draw):
    """A small cluster shape plus per-rank file views."""
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    cores = draw(st.integers(min_value=1, max_value=4))
    n_ranks = draw(st.integers(min_value=1, max_value=n_nodes * cores))
    shape = draw(st.sampled_from(["serial", "interleaved", "sparse"]))
    block = draw(st.sampled_from([96, 256, 700, 2048]))
    if shape == "serial":
        gap = draw(st.integers(min_value=0, max_value=64))
        patterns, pos = [], 0
        for r in range(n_ranks):
            length = block + 17 * (r % 5)
            patterns.append(AccessPattern.contiguous(pos, length))
            pos += length + gap
    elif shape == "interleaved":
        count = draw(st.integers(min_value=2, max_value=6))
        stride = block * n_ranks
        patterns = [
            AccessPattern((StridedSegment(r * block, block, stride, count),))
            for r in range(n_ranks)
        ]
    else:
        # sparse: some ranks have no data at all
        keep_mod = draw(st.integers(min_value=2, max_value=3))
        patterns = [
            AccessPattern.contiguous(r * 2 * block, block)
            if r % keep_mod == 0
            else AccessPattern(())
            for r in range(n_ranks)
        ]
    return n_ranks, n_nodes, cores, patterns


@st.composite
def configs(draw):
    """An MCIOConfig spanning policies, buffers, and execution knobs.

    ``msg_group`` skews smaller than the vectorized twin so a healthy
    fraction of drawn plans actually split into several groups and
    exercise the worker path, not just the refusal fallback.
    """
    msg_group = draw(st.sampled_from([2 * KIB, 4 * KIB, 16 * KIB, 1 << 30]))
    return dict(
        msg_group=msg_group,
        # the config forbids msg_ind > msg_group
        msg_ind=min(draw(st.sampled_from([512, 2 * KIB, 8 * KIB])), msg_group),
        cb_buffer_size=draw(st.sampled_from([256, 1024, 8 * KIB])),
        mem_min=0,
        nah=draw(st.integers(min_value=1, max_value=3)),
        min_buffer=1,
        adaptive_buffer=draw(st.booleans()),
        placement_policy=draw(st.sampled_from(["remerge", "hybrid"])),
        shuffle_granularity=draw(
            st.sampled_from(["round", "batched", "domain"])
        ),
        intra_node_aggregation=draw(st.booleans()),
        failover=draw(st.booleans()),
    )


@st.composite
def shardable_workloads(draw):
    """Node-filling serial tiles with per-node group size: these plans
    split into one group per node, so (unlike the broad draw above,
    which mostly refuses) every example exercises the worker path."""
    n_nodes = draw(st.integers(min_value=2, max_value=4))
    cores = draw(st.integers(min_value=1, max_value=4))
    n_ranks = n_nodes * cores
    tile = draw(st.sampled_from([2 * KIB, 4 * KIB, 8 * KIB]))
    patterns = [
        AccessPattern.contiguous(r * tile, tile) for r in range(n_ranks)
    ]
    config = dict(
        msg_group=tile * cores,
        msg_ind=draw(st.sampled_from([tile // 2, tile])),
        mem_min=0,
        nah=1,
        cb_buffer_size=draw(st.sampled_from([1024, 2 * KIB])),
        min_buffer=1,
        adaptive_buffer=draw(st.booleans()),
        shuffle_granularity=draw(
            st.sampled_from(["round", "batched", "domain"])
        ),
        intra_node_aggregation=draw(st.booleans()),
    )
    return n_ranks, n_nodes, cores, patterns, config


@settings(max_examples=120, deadline=None, derandomize=True)
@given(
    workload=workloads(),
    config=configs(),
    memory_regime=st.sampled_from(["rich", "tight", "skewed"]),
    op=st.sampled_from(["write", "read"]),
)
def test_sharded_matches_per_rank(workload, config, memory_regime, op, runner):
    n_ranks, n_nodes, cores, patterns = workload
    memory = {
        "rich": None,
        "tight": tuple(3 * KIB for _ in range(n_nodes)),
        "skewed": tuple(
            10**9 if n % 2 == 0 else 2 * KIB for n in range(n_nodes)
        ),
    }[memory_regime]

    ref, cand, ref_aud, cand_aud = run_differential(
        patterns,
        MCIOConfig(**config),
        op=op,
        n_ranks=n_ranks,
        n_nodes=n_nodes,
        cores=cores,
        memory_availability=memory,
        candidate_mode="sharded",
        runner=runner,
    )

    # stats contract: every deterministic accounting field agrees —
    # including offsets/extents (via total_bytes + the audit records),
    # shuffle byte split, lease counters, and the degraded_tier decision
    assert_stats_equivalent(ref, cand)

    # the sharded path either runs clean or refuses for a known reason
    # and serves the collective per-rank
    if cand.execution_mode == "sharded":
        assert cand.sharding_refusals == 0
        assert cand.n_groups >= 2
        assert 1 <= cand.extra["shards"] <= min(JOBS, cand.n_groups)
    else:
        assert cand.execution_mode == "per-rank"
        assert cand.sharding_refusals == 1
        assert cand.extra["sharding_refusal"] in VALID_REFUSALS

    # byte-conservation audit on both paths, with identical records
    active = [p for p in patterns if not p.empty]
    if active:
        ref_rec = ref_aud.verify(patterns)
        cand_rec = cand_aud.verify(patterns)
        assert ref_rec.extents == cand_rec.extents
        assert ref_rec.final_attempt_shuffle == cand_rec.final_attempt_shuffle
        assert ref_rec.attempts == cand_rec.attempts

    # lease-ledger balance on the candidate stack (hygiene even when
    # the run was refused and served per-rank)
    assert cand_aud is not None
    assert not cand_aud._ledger_violations()


@settings(max_examples=60, deadline=None, derandomize=True)
@given(workload=shardable_workloads(), op=st.sampled_from(["write", "read"]))
def test_shard_friendly_plans_run_sharded_and_match(workload, op, runner):
    """Every shard-friendly draw must take the worker path — no silent
    degradation to the per-rank fallback — and still match exactly."""
    n_ranks, n_nodes, cores, patterns, config = workload
    ref, cand, ref_aud, cand_aud = run_differential(
        patterns,
        MCIOConfig(**config),
        op=op,
        n_ranks=n_ranks,
        n_nodes=n_nodes,
        cores=cores,
        candidate_mode="sharded",
        runner=runner,
    )
    assert cand.execution_mode == "sharded"
    assert cand.sharding_refusals == 0
    assert 2 <= cand.n_groups <= n_nodes
    assert_stats_equivalent(ref, cand)
    ref_rec = ref_aud.verify(patterns)
    cand_rec = cand_aud.verify(patterns)
    assert ref_rec.extents == cand_rec.extents
    assert ref_rec.final_attempt_shuffle == cand_rec.final_attempt_shuffle
