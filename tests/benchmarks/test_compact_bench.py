"""Regression tests for the compact-bench CLI's missing-file path.

The CI benchmarks job compares the fresh BENCH_N.json against the
previous trajectory point.  On the very first run of a new point — or
when the CI cache of the prior file misses — that previous file simply
does not exist, and the compare step used to stack-trace with
``FileNotFoundError``.  A missing *prior* point is an expected state,
not an input error: the step must note it and exit 0 so the new point
still lands.  A missing *new* file, by contrast, means the benchmark
run itself failed and must stay an error.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parents[2] / "benchmarks" / "compact_bench.py"
_spec = importlib.util.spec_from_file_location("compact_bench", _SCRIPT)
compact_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compact_bench)


def write_compact(
    path: Path, medians: dict[str, float], machine: dict | None = None
) -> None:
    data = {
        "datetime": "2026-01-01T00:00:00",
        "benchmarks": [
            {"name": name, "median": median, "stddev": 0.0, "rounds": 5}
            for name, median in medians.items()
        ],
    }
    if machine is not None:
        data["machine"] = machine
    path.write_text(json.dumps(data))


def test_compare_missing_prior_exits_clean(tmp_path, capsys):
    new = tmp_path / "BENCH_7.json"
    write_compact(new, {"test_kernel": 0.01})
    missing = tmp_path / "BENCH_6.json"

    rc = compact_bench.main(["compare", str(missing), str(new)])

    assert rc == 0
    out = capsys.readouterr().out
    assert "skipping comparison" in out
    assert str(missing) in out


def test_compare_missing_prior_with_markdown_flag(tmp_path, capsys):
    """The CI invocation passes --markdown; the guard must fire first."""
    new = tmp_path / "BENCH_7.json"
    write_compact(new, {"test_kernel": 0.01})

    rc = compact_bench.main(
        ["compare", str(tmp_path / "nope.json"), str(new), "--markdown"]
    )

    assert rc == 0
    assert "skipping comparison" in capsys.readouterr().out


def test_compare_still_compares_when_both_exist(tmp_path, capsys):
    old = tmp_path / "BENCH_6.json"
    new = tmp_path / "BENCH_7.json"
    write_compact(old, {"test_kernel": 0.010})
    write_compact(new, {"test_kernel": 0.011})

    rc = compact_bench.main(["compare", str(old), str(new)])

    assert rc == 0
    out = capsys.readouterr().out
    assert "test_kernel" in out
    assert "no median regressions" in out


def test_compare_missing_new_is_still_an_error(tmp_path):
    old = tmp_path / "BENCH_6.json"
    write_compact(old, {"test_kernel": 0.01})

    with pytest.raises(FileNotFoundError):
        compact_bench.main(["compare", str(old), str(tmp_path / "gone.json")])


class TestMachineStamp:
    def test_compact_lifts_machine_info_from_full_format(self, tmp_path):
        """pytest-benchmark's machine_info collapses to {node, cpu_count}."""
        full = tmp_path / "full.json"
        full.write_text(
            json.dumps(
                {
                    "datetime": "2026-01-01T00:00:00",
                    "machine_info": {
                        "node": "runner-17",
                        "processor": "x86_64",
                        "cpu": {"count": 4, "brand_raw": "whatever"},
                    },
                    "benchmarks": [
                        {
                            "name": "test_kernel",
                            "stats": {
                                "median": 0.01, "stddev": 0.0, "rounds": 3
                            },
                        }
                    ],
                }
            )
        )
        records = compact_bench.load_records(full)
        assert records["machine"] == {"node": "runner-17", "cpu_count": 4}

    def test_compact_round_trips_its_own_stamp(self, tmp_path):
        path = tmp_path / "BENCH_8.json"
        write_compact(
            path, {"test_kernel": 0.01},
            machine={"node": "runner-17", "cpu_count": 4},
        )
        records = compact_bench.load_records(path)
        assert records["machine"] == {"node": "runner-17", "cpu_count": 4}

    def test_stampless_sources_omit_machine(self, tmp_path):
        """Old trajectory points predate the stamp — no fabricated label."""
        path = tmp_path / "BENCH_6.json"
        write_compact(path, {"test_kernel": 0.01})
        assert "machine" not in compact_bench.load_records(path)

    def test_compare_notes_machine_mismatch(self, tmp_path, capsys):
        old = tmp_path / "BENCH_7.json"
        new = tmp_path / "BENCH_8.json"
        write_compact(
            old, {"test_kernel": 0.010},
            machine={"node": "runner-17", "cpu_count": 4},
        )
        write_compact(
            new, {"test_kernel": 0.011},
            machine={"node": "runner-99", "cpu_count": 16},
        )
        rc = compact_bench.main(["compare", str(old), str(new)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "different machines" in out
        assert "runner-17 (4 cores)" in out
        assert "runner-99 (16 cores)" in out

    def test_compare_silent_when_machines_match_or_missing(
        self, tmp_path, capsys
    ):
        old = tmp_path / "BENCH_7.json"
        new = tmp_path / "BENCH_8.json"
        stamp = {"node": "runner-17", "cpu_count": 4}
        write_compact(old, {"test_kernel": 0.010}, machine=stamp)
        write_compact(new, {"test_kernel": 0.011}, machine=stamp)
        compact_bench.main(["compare", str(old), str(new)])
        assert "different machines" not in capsys.readouterr().out

        stampless = tmp_path / "BENCH_6.json"
        write_compact(stampless, {"test_kernel": 0.012})
        compact_bench.main(["compare", str(stampless), str(new)])
        assert "different machines" not in capsys.readouterr().out
