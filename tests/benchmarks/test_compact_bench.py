"""Regression tests for the compact-bench CLI's missing-file path.

The CI benchmarks job compares the fresh BENCH_N.json against the
previous trajectory point.  On the very first run of a new point — or
when the CI cache of the prior file misses — that previous file simply
does not exist, and the compare step used to stack-trace with
``FileNotFoundError``.  A missing *prior* point is an expected state,
not an input error: the step must note it and exit 0 so the new point
still lands.  A missing *new* file, by contrast, means the benchmark
run itself failed and must stay an error.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parents[2] / "benchmarks" / "compact_bench.py"
_spec = importlib.util.spec_from_file_location("compact_bench", _SCRIPT)
compact_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compact_bench)


def write_compact(path: Path, medians: dict[str, float]) -> None:
    path.write_text(
        json.dumps(
            {
                "datetime": "2026-01-01T00:00:00",
                "benchmarks": [
                    {"name": name, "median": median, "stddev": 0.0, "rounds": 5}
                    for name, median in medians.items()
                ],
            }
        )
    )


def test_compare_missing_prior_exits_clean(tmp_path, capsys):
    new = tmp_path / "BENCH_7.json"
    write_compact(new, {"test_kernel": 0.01})
    missing = tmp_path / "BENCH_6.json"

    rc = compact_bench.main(["compare", str(missing), str(new)])

    assert rc == 0
    out = capsys.readouterr().out
    assert "skipping comparison" in out
    assert str(missing) in out


def test_compare_missing_prior_with_markdown_flag(tmp_path, capsys):
    """The CI invocation passes --markdown; the guard must fire first."""
    new = tmp_path / "BENCH_7.json"
    write_compact(new, {"test_kernel": 0.01})

    rc = compact_bench.main(
        ["compare", str(tmp_path / "nope.json"), str(new), "--markdown"]
    )

    assert rc == 0
    assert "skipping comparison" in capsys.readouterr().out


def test_compare_still_compares_when_both_exist(tmp_path, capsys):
    old = tmp_path / "BENCH_6.json"
    new = tmp_path / "BENCH_7.json"
    write_compact(old, {"test_kernel": 0.010})
    write_compact(new, {"test_kernel": 0.011})

    rc = compact_bench.main(["compare", str(old), str(new)])

    assert rc == 0
    out = capsys.readouterr().out
    assert "test_kernel" in out
    assert "no median regressions" in out


def test_compare_missing_new_is_still_an_error(tmp_path):
    old = tmp_path / "BENCH_6.json"
    write_compact(old, {"test_kernel": 0.01})

    with pytest.raises(FileNotFoundError):
        compact_bench.main(["compare", str(old), str(tmp_path / "gone.json")])
