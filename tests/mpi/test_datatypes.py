"""Tests for MPI-style file views and decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import (
    block_decompose_3d,
    contiguous_view,
    dims_create,
    hindexed_view,
    subarray_view_3d,
    vector_view,
)


class TestSimpleViews:
    def test_contiguous_view(self):
        v = contiguous_view(100, 50)
        assert v.nbytes == 50 and v.start == 100

    def test_contiguous_validation(self):
        with pytest.raises(ValueError):
            contiguous_view(-1, 10)

    def test_vector_view(self):
        v = vector_view(offset=0, count=4, block=8, stride=32)
        assert v.nbytes == 32
        assert v.block_count == 4
        assert v.end == 3 * 32 + 8

    def test_vector_view_zero_count(self):
        assert vector_view(0, 0, 8, 32).empty

    def test_hindexed_view_coalesces(self):
        v = hindexed_view([(0, 10), (10, 10), (40, 5)])
        assert v.nbytes == 25
        assert v.segment_count == 2

    def test_hindexed_drops_empty_pieces(self):
        v = hindexed_view([(0, 10), (20, 0), (40, 5)])
        assert v.nbytes == 15


class TestSubarray3D:
    def test_full_array_is_contiguous(self):
        v = subarray_view_3d((4, 4, 4), (4, 4, 4), (0, 0, 0), elem_size=8)
        assert v.segment_count == 1
        assert v.nbytes == 4 * 4 * 4 * 8

    def test_full_planes_contiguous(self):
        # full y and z: contiguous slab
        v = subarray_view_3d((8, 4, 4), (2, 4, 4), (4, 0, 0))
        assert v.segment_count == 1
        assert v.start == 4 * 16
        assert v.nbytes == 2 * 4 * 4

    def test_z_rows_merge_when_full_z(self):
        # full z but partial y: one run per x
        v = subarray_view_3d((4, 8, 4), (2, 2, 4), (0, 2, 0))
        assert v.nbytes == 2 * 2 * 4
        offsets = [(o, ln) for o, ln, _ in v.iter_mapped_extents()]
        assert offsets == [(2 * 4, 8), (8 * 4 + 2 * 4, 8)]

    def test_partial_z_strided(self):
        v = subarray_view_3d((2, 3, 10), (1, 2, 4), (1, 1, 3))
        # x=1, y in {1,2}, z in [3,7): runs at ((1*3+1)*10+3), ((1*3+2)*10+3)
        offsets = [(o, ln) for o, ln, _ in v.iter_mapped_extents()]
        assert offsets == [(43, 4), (53, 4)]

    def test_against_numpy_flat_indices(self):
        # ground truth via numpy: flatten a boolean mask of the block
        g = (5, 6, 7)
        sub = (2, 3, 4)
        starts = (1, 2, 2)
        elem = 4
        mask = np.zeros(g, dtype=bool)
        mask[
            starts[0] : starts[0] + sub[0],
            starts[1] : starts[1] + sub[1],
            starts[2] : starts[2] + sub[2],
        ] = True
        flat = np.flatnonzero(mask.reshape(-1))
        expected_bytes = set()
        for idx in flat:
            expected_bytes.update(range(idx * elem, (idx + 1) * elem))
        v = subarray_view_3d(g, sub, starts, elem_size=elem)
        got = set()
        for off, ln, _ in v.iter_mapped_extents():
            got.update(range(off, off + ln))
        assert got == expected_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            subarray_view_3d((4, 4, 4), (5, 1, 1), (0, 0, 0))
        with pytest.raises(ValueError):
            subarray_view_3d((4, 4, 4), (2, 2, 2), (3, 0, 0))
        with pytest.raises(ValueError):
            subarray_view_3d((4, 4, 4), (1, 1, 1), (-1, 0, 0))
        with pytest.raises(ValueError):
            subarray_view_3d((4, 4, 4), (1, 1, 1), (0, 0, 0), elem_size=0)

    @given(
        g=st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_subarray_bytes_property(self, g, data):
        sub = tuple(data.draw(st.integers(1, dim)) for dim in g)
        starts = tuple(data.draw(st.integers(0, dim - s)) for dim, s in zip(g, sub))
        elem = data.draw(st.integers(1, 8))
        v = subarray_view_3d(g, sub, starts, elem_size=elem)
        assert v.nbytes == sub[0] * sub[1] * sub[2] * elem
        assert v.end <= g[0] * g[1] * g[2] * elem


class TestDimsCreate:
    def test_known_factorizations(self):
        assert dims_create(120, 3) == [6, 5, 4]
        assert dims_create(8, 3) == [2, 2, 2]
        assert dims_create(1, 3) == [1, 1, 1]
        assert dims_create(7, 2) == [7, 1]

    def test_1080_three_dims(self):
        dims = dims_create(1080, 3)
        assert np.prod(dims) == 1080
        assert dims == sorted(dims, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            dims_create(0, 3)
        with pytest.raises(ValueError):
            dims_create(8, 0)

    @given(n=st.integers(1, 4096), nd=st.integers(1, 4))
    def test_product_property(self, n, nd):
        dims = dims_create(n, nd)
        assert len(dims) == nd
        assert int(np.prod(dims)) == n


class TestBlockDecompose3D:
    def test_partition_covers_array_once(self):
        g = (8, 8, 8)
        blocks = block_decompose_3d(g, 8)
        assert len(blocks) == 8
        seen = np.zeros(g, dtype=int)
        for (sx, sy, sz), (cx, cy, cz) in blocks:
            seen[sx : sx + cx, sy : sy + cy, sz : sz + cz] += 1
        assert (seen == 1).all()

    def test_uneven_split(self):
        blocks = block_decompose_3d((10, 1, 1), 3)
        sizes = sorted(b[1][0] for b in blocks)
        assert sizes == [3, 3, 4]

    def test_grid_too_fine_rejected(self):
        with pytest.raises(ValueError):
            block_decompose_3d((2, 2, 2), 100)

    @given(
        g=st.tuples(st.integers(4, 12), st.integers(4, 12), st.integers(4, 12)),
        n=st.integers(1, 27),
    )
    @settings(max_examples=40)
    def test_decompose_partition_property(self, g, n):
        try:
            blocks = block_decompose_3d(g, n)
        except ValueError:
            return  # grid finer than the array is allowed to fail
        assert len(blocks) == n
        total = sum(cx * cy * cz for _, (cx, cy, cz) in blocks)
        assert total == g[0] * g[1] * g[2]

    def test_views_of_decomposition_are_disjoint_and_cover(self):
        g = (6, 6, 6)
        blocks = block_decompose_3d(g, 6)
        covered = set()
        for starts, shape in blocks:
            v = subarray_view_3d(g, shape, starts, elem_size=1)
            for off, ln, _ in v.iter_mapped_extents():
                rng = set(range(off, off + ln))
                assert not (covered & rng)
                covered |= rng
        assert covered == set(range(6 * 6 * 6))
