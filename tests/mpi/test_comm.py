"""Tests for the simulated MPI communicator."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, block_placement
from repro.mpi import ANY_SOURCE, ANY_TAG, SimComm
from repro.sim import Environment, RngFactory


def make_comm(n_ranks=4, n_nodes=2, cores=4, **node_kwargs):
    env = Environment()
    defaults = dict(
        cores=cores,
        memory_bytes=10**9,
        memory_bandwidth=1e9,
        memory_channels=2,
        nic_bandwidth=1e8,
        nic_latency=1e-6,
    )
    defaults.update(node_kwargs)
    spec = ClusterSpec(nodes=n_nodes, node=NodeSpec(**defaults))
    cluster = Cluster(env, spec, RngFactory(7))
    placement = block_placement(n_ranks, n_nodes, cores)
    return env, cluster, SimComm(env, cluster, placement)


def test_send_recv_payload():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 0:
            yield from comm.send(ctx, dest=1, nbytes=100, tag=5, payload={"x": 1})
            return None
        if ctx.rank == 1:
            msg = yield from comm.recv(ctx, source=0, tag=5)
            return (msg.source, msg.tag, msg.nbytes, msg.payload)
        return None
        yield  # pragma: no cover

    results = comm.run_spmd(main)
    assert results[1] == (0, 5, 100, {"x": 1})


def test_recv_wildcards():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank in (0, 2):
            yield from comm.send(ctx, dest=1, nbytes=10, tag=ctx.rank)
            return None
        if ctx.rank == 1:
            a = yield from comm.recv(ctx, source=ANY_SOURCE, tag=ANY_TAG)
            b = yield from comm.recv(ctx, source=ANY_SOURCE, tag=ANY_TAG)
            return sorted([a.source, b.source])
        return None
        yield  # pragma: no cover

    results = comm.run_spmd(main)
    assert results[1] == [0, 2]


def test_recv_tag_filtering_leaves_other_messages():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 0:
            yield from comm.send(ctx, dest=1, nbytes=10, tag=7, payload="seven")
            yield from comm.send(ctx, dest=1, nbytes=10, tag=9, payload="nine")
            return None
        if ctx.rank == 1:
            nine = yield from comm.recv(ctx, source=0, tag=9)
            seven = yield from comm.recv(ctx, source=0, tag=7)
            return (nine.payload, seven.payload)
        return None
        yield  # pragma: no cover

    results = comm.run_spmd(main)
    assert results[1] == ("nine", "seven")


def test_recv_posted_before_send():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 1:
            msg = yield from comm.recv(ctx, source=0)
            return msg.payload
        if ctx.rank == 0:
            yield ctx.env.timeout(5.0)  # make sure rank 1 posts first
            yield from comm.send(ctx, dest=1, nbytes=10, payload="late")
        return None

    results = comm.run_spmd(main)
    assert results[1] == "late"


def test_isend_overlaps():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 0:
            reqs = [
                comm.isend(ctx, dest=1, nbytes=10, tag=i, payload=i) for i in range(3)
            ]
            yield ctx.env.all_of(reqs)
            return None
        if ctx.rank == 1:
            got = []
            for _ in range(3):
                msg = yield from comm.recv(ctx, source=0)
                got.append(msg.payload)
            return sorted(got)
        return None
        yield  # pragma: no cover

    results = comm.run_spmd(main)
    assert results[1] == [0, 1, 2]


def test_send_invalid_dest():
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 0:
            yield from comm.send(ctx, dest=99, nbytes=1)
        return None
        yield  # pragma: no cover

    with pytest.raises(Exception):
        comm.run_spmd(main)


def test_barrier_synchronizes():
    env, cluster, comm = make_comm()

    def main(ctx):
        yield ctx.env.timeout(float(ctx.rank))  # stagger arrivals
        yield from comm.barrier(ctx)
        return ctx.env.now

    results = comm.run_spmd(main)
    # everyone leaves the barrier at (same) time >= slowest arrival
    assert len(set(results)) == 1
    assert results[0] >= 3.0


def test_bcast_value_from_root():
    env, cluster, comm = make_comm()

    def main(ctx):
        value = "root-data" if ctx.rank == 2 else None
        got = yield from comm.bcast(ctx, value, root=2)
        return got

    assert comm.run_spmd(main) == ["root-data"] * 4


def test_gather_to_root():
    env, cluster, comm = make_comm()

    def main(ctx):
        return (yield from comm.gather(ctx, ctx.rank * 10, root=1))

    results = comm.run_spmd(main)
    assert results[1] == [0, 10, 20, 30]
    assert results[0] is None and results[2] is None


def test_allgather():
    env, cluster, comm = make_comm()

    def main(ctx):
        return (yield from comm.allgather(ctx, ctx.rank**2))

    assert comm.run_spmd(main) == [[0, 1, 4, 9]] * 4


def test_alltoall_transpose():
    env, cluster, comm = make_comm()

    def main(ctx):
        out = [f"{ctx.rank}->{d}" for d in range(ctx.size)]
        return (yield from comm.alltoall(ctx, out))

    results = comm.run_spmd(main)
    assert results[2] == ["0->2", "1->2", "2->2", "3->2"]


def test_alltoall_wrong_length():
    env, cluster, comm = make_comm()

    def main(ctx):
        yield from comm.alltoall(ctx, [1, 2])

    with pytest.raises(Exception):
        comm.run_spmd(main)


def test_allreduce_sum_and_max():
    env, cluster, comm = make_comm()

    def main(ctx):
        s = yield from comm.allreduce(ctx, ctx.rank + 1)
        m = yield from comm.allreduce(ctx, ctx.rank + 1, op=max)
        return (s, m)

    assert comm.run_spmd(main) == [(10, 4)] * 4


def test_subgroup_collectives_independent():
    env, cluster, comm = make_comm(n_ranks=6, n_nodes=2, cores=4)

    def main(ctx):
        if ctx.rank < 3:
            grp = groups[0]
        else:
            grp = groups[1]
        return (yield from comm.allgather(ctx, ctx.rank, group=grp))

    groups = [comm.group([0, 1, 2]), comm.group([3, 4, 5])]
    results = comm.run_spmd(main)
    assert results[0] == [0, 1, 2]
    assert results[5] == [3, 4, 5]


def test_group_rejects_bad_rank():
    env, cluster, comm = make_comm()
    with pytest.raises(ValueError):
        comm.group([0, 99])


def test_collective_sequence_matching():
    """Successive collectives on the same group match in order."""
    env, cluster, comm = make_comm()

    def main(ctx):
        first = yield from comm.allgather(ctx, ("a", ctx.rank))
        second = yield from comm.allgather(ctx, ("b", ctx.rank))
        return (first[0][0], second[0][0])

    assert comm.run_spmd(main) == [("a", "b")] * 4


def test_rank_not_in_group_rejected():
    env, cluster, comm = make_comm()
    grp = comm.group([0, 1])

    def main(ctx):
        if ctx.rank == 3:
            yield from comm.barrier(ctx, group=grp)
        return None
        yield  # pragma: no cover

    with pytest.raises(Exception):
        comm.run_spmd(main)


def test_intra_node_send_avoids_nic():
    env, cluster, comm = make_comm(n_ranks=4, n_nodes=2, cores=4)

    def main(ctx):
        if ctx.rank == 0:
            yield from comm.send(ctx, dest=1, nbytes=1000)  # same node (block)
        elif ctx.rank == 1:
            yield from comm.recv(ctx, source=0)
        return None

    comm.run_spmd(main)
    assert cluster.network.inter_node_bytes == 0
    assert cluster.network.intra_node_bytes == 1000


def test_determinism_same_seed_same_times():
    def run():
        env, cluster, comm = make_comm(n_ranks=8, n_nodes=2, cores=4)

        def main(ctx):
            for dest in range(ctx.size):
                if dest != ctx.rank:
                    comm.isend(ctx, dest, nbytes=1000 + ctx.rank, tag=1)
            got = []
            for _ in range(ctx.size - 1):
                msg = yield from comm.recv(ctx, tag=1)
                got.append(msg.source)
            yield from comm.barrier(ctx)
            return (ctx.env.now, tuple(got))

        return comm.run_spmd(main)

    assert run() == run()


# ---------------------------------------------------------------------------
# counting receives (recv_many)
# ---------------------------------------------------------------------------
def test_recv_many_matches_sequential_recvs():
    """Same messages, same order, same completion time as a recv loop."""

    def run(use_many):
        env, cluster, comm = make_comm(n_ranks=6, n_nodes=3, cores=2)

        def main(ctx):
            if ctx.rank == 0:
                if use_many:
                    msgs = yield from comm.recv_many(ctx, 5, tag=7)
                else:
                    msgs = []
                    for _ in range(5):
                        msg = yield from comm.recv(ctx, tag=7)
                        msgs.append(msg)
                return (env.now, [(m.source, m.nbytes) for m in msgs])
            yield from comm.send(ctx, 0, 100 * ctx.rank, tag=7)
            return None

        return comm.run_spmd(main)[0]

    assert run(True) == run(False)


def test_recv_many_from_mailbox_and_posted():
    """Messages already in the mailbox count toward the drain."""
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 1:
            # let both senders complete first, then drain from mailbox
            yield from comm.barrier(ctx)
            msgs = yield from comm.recv_many(ctx, 2, tag=3)
            return sorted(m.source for m in msgs)
        if ctx.rank in (0, 2):
            yield from comm.send(ctx, 1, 10, tag=3)
        yield from comm.barrier(ctx)
        return None

    assert comm.run_spmd(main)[1] == [0, 2]


def test_recv_many_filters_tags():
    """Non-matching messages stay queued for later receives."""
    env, cluster, comm = make_comm()

    def main(ctx):
        if ctx.rank == 0:
            yield from comm.send(ctx, 1, 10, tag=1)
            yield from comm.send(ctx, 1, 20, tag=2)
            yield from comm.send(ctx, 1, 30, tag=1)
            return None
        if ctx.rank == 1:
            wanted = yield from comm.recv_many(ctx, 2, tag=1)
            other = yield from comm.recv(ctx, tag=2)
            return ([m.nbytes for m in wanted], other.nbytes)
        return None
        yield  # pragma: no cover

    results = comm.run_spmd(main)
    assert results[1] == ([10, 30], 20)


def test_recv_many_zero_count():
    env, cluster, comm = make_comm()

    def main(ctx):
        msgs = yield from comm.recv_many(ctx, 0)
        return msgs

    assert comm.run_spmd(main) == [[]] * 4


# ---------------------------------------------------------------------------
# multi-item / multi-destination staged batched sends
# ---------------------------------------------------------------------------
def test_staged_batched_send_multi_destination():
    """One deposit per rank fans out to several destination nodes."""
    env, cluster, comm = make_comm(n_ranks=6, n_nodes=3, cores=2)
    # node 0 holds ranks 0,1 (senders); nodes 1,2 hold the receivers

    def main(ctx):
        if ctx.rank in (0, 1):
            items = [
                (ctx.rank, dest, 64, ("m", dest), f"p{ctx.rank}->{dest}")
                for dest in (2, 3, 4, 5)
            ]
            yield from comm.staged_batched_send(ctx, "stage", 2, items)
            return env.now
        msgs = []
        for _ in range(2):
            msg = yield from comm.recv(ctx, tag=("m", ctx.rank))
            msgs.append((msg.source, msg.payload))
        return sorted(msgs)

    results = comm.run_spmd(main)
    # both depositors resume together, when the last wire transfer lands
    assert results[0] == results[1]
    for dest in (2, 3, 4, 5):
        assert results[dest] == [
            (0, f"p0->{dest}"),
            (1, f"p1->{dest}"),
        ]
    # accounting: every logical message crossed the NIC exactly once
    assert cluster.network.inter_node_messages == 8
    assert cluster.network.inter_node_bytes == 8 * 64
    # the non-performing rank's items hopped shared memory once while
    # staging (4 items x 64 bytes, whichever rank performed the ship)
    assert cluster.network.intra_node_bytes == 4 * 64


def test_staged_batched_send_single_item_still_works():
    """The original one-item-per-deposit form is unchanged."""
    env, cluster, comm = make_comm(n_ranks=4, n_nodes=2, cores=2)

    def main(ctx):
        if ctx.rank in (0, 1):
            yield from comm.staged_batched_send(
                ctx, "k", 2, (ctx.rank, 2, 32, 9, None)
            )
            return None
        if ctx.rank == 2:
            msgs = yield from comm.recv_many(ctx, 2, tag=9)
            return [m.source for m in msgs]
        return None
        yield  # pragma: no cover

    assert comm.run_spmd(main)[2] == [0, 1]
