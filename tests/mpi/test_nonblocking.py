"""Nonblocking collective I/O: Request semantics and blocking equivalence.

The contract of ``iwrite_all``/``iread_all`` is MPI's: issuing the
operation and immediately waiting must be indistinguishable from the
blocking call — same stats (bit-for-bit, including elapsed), same final
clock, same file bytes.  The golden workload matrix provides the
deterministic cells to prove it on.
"""

import hashlib

import numpy as np
import pytest

from repro.core import TwoPhaseCollectiveIO
from repro.mpi import Request, SimFile, contiguous_view, waitall

from tests.goldens.cases import (
    CLUSTER_CASES,
    _prefill,
    build_patterns,
    make_engine,
    stats_to_jsonable,
)
from tests.helpers import make_stack, rank_payload


# ---------------------------------------------------------------------------
# Request semantics
# ---------------------------------------------------------------------------
def _small_file(n_ranks=6):
    stack = make_stack(n_ranks=n_ranks, n_nodes=3)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    return stack, SimFile.open(stack.comm, engine)


def test_request_test_wait_lifecycle():
    stack, fh = _small_file()
    payloads = {r: rank_payload(r, 300) for r in range(6)}

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * 300, 300))
        req = fh.iwrite_all(ctx, payloads[ctx.rank].copy())
        assert isinstance(req, Request)
        done, _ = req.test()
        assert not done  # no sim time has passed since issue
        assert not req.complete
        yield from req.wait(ctx)
        assert req.complete
        done, _ = req.test()
        assert done
        # waiting twice is allowed (MPI_Wait on an inactive request)
        yield from req.wait(ctx)
        data = yield from fh.iread_all(ctx).wait(ctx)
        return data

    results = stack.run_spmd(main)
    for r in range(6):
        assert (results[r] == payloads[r]).all()


def test_request_overlaps_compute():
    """Sim time for issue + compute + wait is max(io, compute), not sum."""
    stack, fh = _small_file()
    payloads = {r: rank_payload(r, 300) for r in range(6)}

    def blocking(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * 300, 300))
        yield from fh.write_all(ctx, payloads[ctx.rank].copy())

    stack.run_spmd(blocking)
    io_time = stack.env.now

    stack2, fh2 = _small_file()
    compute = io_time * 0.9  # fits inside the I/O window

    def overlapped(ctx):
        fh2.set_view(ctx, contiguous_view(ctx.rank * 300, 300))
        req = fh2.iwrite_all(ctx, payloads[ctx.rank].copy())
        yield stack2.env.sleep(compute)
        yield from req.wait(ctx)

    stack2.run_spmd(overlapped)
    assert stack2.env.now == pytest.approx(io_time, rel=1e-9)


def test_waitall_collects_values():
    stack, fh = _small_file()
    payloads = {r: rank_payload(r, 300) for r in range(6)}

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * 300, 300))
        yield from fh.iwrite_all(ctx, payloads[ctx.rank].copy()).wait(ctx)
        reqs = [fh.iread_all(ctx) for _ in range(2)]
        values = yield from waitall(ctx, reqs)
        return values

    results = stack.run_spmd(main)
    for r in range(6):
        assert len(results[r]) == 2
        for v in results[r]:
            assert (v == payloads[r]).all()


# ---------------------------------------------------------------------------
# blocking equivalence on the golden matrix
# ---------------------------------------------------------------------------
def _run_matrix_cell(strategy, op, case, nonblocking):
    """One golden cell through SimFile, blocking or issue-then-wait."""
    patterns = build_patterns(case)
    stack = make_stack(
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        stripe_size=case.stripe_size,
    )
    if case.memory_availability is not None:
        stack.cluster.set_memory_availability(case.memory_availability)
    engine = make_engine(strategy, stack, case)
    fh = SimFile.open(stack.comm, engine)
    end = max(p.end for p in patterns if not p.empty)
    if op == "read":
        _prefill(stack.pfs.datastore, end)
    payloads = {
        r: rank_payload(r, patterns[r].nbytes) for r in range(case.n_ranks)
    }

    def main(ctx):
        fh.set_view(ctx, patterns[ctx.rank])
        payload = payloads[ctx.rank].copy() if op == "write" else None
        if nonblocking:
            issue = fh.iwrite_all if op == "write" else fh.iread_all
            return (yield from issue(ctx, payload).wait(ctx))
        fn = fh.write_all if op == "write" else fh.read_all
        return (yield from fn(ctx, payload))

    results = stack.run_spmd(main)
    image = np.asarray(stack.pfs.datastore.read(0, end), dtype=np.uint8)
    record = {
        "final_now_hex": float(stack.env.now).hex(),
        "datastore_sha256": hashlib.sha256(image.tobytes()).hexdigest(),
        "stats": stats_to_jsonable(engine.history[0]),
    }
    if op == "read":
        record["rank_sha256"] = [
            hashlib.sha256(
                np.asarray(results[r], dtype=np.uint8).tobytes()
            ).hexdigest()
            for r in range(case.n_ranks)
        ]
    return record


@pytest.mark.parametrize("case", CLUSTER_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("strategy", ("mcio", "two-phase"))
@pytest.mark.parametrize("op", ("write", "read"))
def test_immediate_wait_is_bit_identical_to_blocking(case, strategy, op):
    blocking = _run_matrix_cell(strategy, op, case, nonblocking=False)
    nonblocking = _run_matrix_cell(strategy, op, case, nonblocking=True)
    assert nonblocking == blocking
