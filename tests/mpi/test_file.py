"""Tests for the MPI-IO-style SimFile facade."""

import numpy as np
import pytest

from repro.core import MemoryConsciousCollectiveIO, TwoPhaseCollectiveIO
from repro.mpi import SimFile, contiguous_view, vector_view

from tests.helpers import make_stack, rank_payload


def test_write_all_read_all_roundtrip():
    stack = make_stack(n_ranks=6, n_nodes=3)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)
    payloads = {r: rank_payload(r, 300) for r in range(6)}

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * 300, 300))
        yield from fh.write_all(ctx, payloads[ctx.rank].copy())
        data = yield from fh.read_all(ctx)
        fh.close(ctx)
        return data

    results = stack.run_spmd(main)
    for r in range(6):
        assert (results[r] == payloads[r]).all()
    assert fh.size == 6 * 300


def test_works_with_mcio_engine():
    stack = make_stack(n_ranks=6, n_nodes=3)
    from repro.core import MCIOConfig

    engine = MemoryConsciousCollectiveIO(
        stack.comm, stack.pfs,
        MCIOConfig(msg_group=4096, msg_ind=1024, mem_min=0, nah=2,
                   min_buffer=1, cb_buffer_size=1024),
    )
    fh = SimFile.open(stack.comm, engine)
    payloads = {r: rank_payload(r, 200) for r in range(6)}

    def main(ctx):
        fh.set_view(ctx, vector_view(ctx.rank * 50, count=4, block=50,
                                     stride=6 * 50))
        yield from fh.write_all(ctx, payloads[ctx.rank].copy())
        return (yield from fh.read_all(ctx))

    results = stack.run_spmd(main)
    for r in range(6):
        assert (results[r] == payloads[r]).all()


def test_independent_write_at_read_at():
    stack = make_stack(n_ranks=2, n_nodes=1)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)
    data = rank_payload(5, 128)

    def main(ctx):
        if ctx.rank == 0:
            yield from fh.write_at(ctx, 1000, data)
        yield from fh.sync(ctx)
        got = yield from fh.read_at(ctx, 1000, 128)
        return got

    results = stack.run_spmd(main)
    for r in range(2):
        assert (results[r] == data).all()


def test_default_view_is_empty():
    stack = make_stack(n_ranks=2, n_nodes=1)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)

    def main(ctx):
        assert fh.view(ctx).empty
        yield from fh.write_all(ctx)  # empty views: no-op collective

    stack.run_spmd(main)
    assert engine.history[0].total_bytes == 0


def test_closed_file_rejects_io():
    stack = make_stack(n_ranks=1, n_nodes=1)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)

    def main(ctx):
        fh.set_view(ctx, contiguous_view(0, 10))
        fh.close(ctx)
        yield from fh.write_all(ctx, np.zeros(10, dtype=np.uint8))

    with pytest.raises(Exception):
        stack.run_spmd(main)


def test_view_is_per_rank():
    stack = make_stack(n_ranks=2, n_nodes=1)
    engine = TwoPhaseCollectiveIO(stack.comm, stack.pfs)
    fh = SimFile.open(stack.comm, engine)
    seen = {}

    def main(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * 100, 100))
        seen[ctx.rank] = fh.view(ctx)
        yield from fh.sync(ctx)

    stack.run_spmd(main)
    assert seen[0].start == 0 and seen[1].start == 100
