"""The single shared link-cost model: estimate == simulated, batched == closed form.

:meth:`Network.transfer` (the simulated data path) and
:meth:`Network.estimate_transfer_time` (the planning estimate) both
derive their arithmetic from :meth:`Network.link_cost`, so on an
*uncontended* link the estimate must match the simulated completion
time exactly — full float equality, not approximately.  These tests pin
that, plus the closed-form serialization model of
:meth:`Network.batched_transfer`.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.sim import Environment, RngFactory

#: Power-of-two bandwidths/sizes so chunked summation is float-exact.
NIC_BW = 16.0
UPLINK_BW = 4.0


def make_cluster(n_nodes=2, rack_size=None, uplink=None, chunk_bytes=None):
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=1 << 20,
            memory_bandwidth=128.0,
            memory_channels=2,
            nic_bandwidth=NIC_BW,
            nic_latency=0.5,
        ),
        rack_size=rack_size,
        uplink_bandwidth=uplink,
    )
    cluster = Cluster(env, spec, RngFactory(0))
    if chunk_bytes is not None:
        cluster.network.chunk_bytes = chunk_bytes
    return env, cluster


def simulate_transfer(env, cluster, src, dst, nbytes):
    def proc():
        yield from cluster.network.transfer(
            cluster.nodes[src], cluster.nodes[dst], nbytes
        )
        return env.now

    p = env.process(proc())
    env.run()
    return p.value


@pytest.mark.parametrize("nbytes", [0, 1, 64, 4096, 1 << 20])
def test_estimate_matches_simulated_uncontended_inter_node(nbytes):
    env, cluster = make_cluster()
    net = cluster.network
    estimate = net.estimate_transfer_time(
        cluster.nodes[0], cluster.nodes[1], nbytes
    )
    elapsed = simulate_transfer(env, cluster, 0, 1, nbytes)
    assert elapsed == estimate  # exact: both sides share link_cost()


@pytest.mark.parametrize("nbytes", [0, 64, 4096])
def test_estimate_matches_simulated_uncontended_intra_node(nbytes):
    env, cluster = make_cluster()
    net = cluster.network
    estimate = net.estimate_transfer_time(
        cluster.nodes[0], cluster.nodes[0], nbytes
    )
    elapsed = simulate_transfer(env, cluster, 0, 0, nbytes)
    assert elapsed == estimate


def test_estimate_matches_simulated_across_racks():
    """Cross-rack paths narrow to uplink speed in both estimate and sim."""
    env, cluster = make_cluster(n_nodes=4, rack_size=2, uplink=UPLINK_BW)
    net = cluster.network
    nbytes = 4096
    estimate = net.estimate_transfer_time(
        cluster.nodes[0], cluster.nodes[2], nbytes
    )
    assert estimate == 0.5 + nbytes / UPLINK_BW
    elapsed = simulate_transfer(env, cluster, 0, 2, nbytes)
    assert elapsed == estimate


def test_estimate_matches_multi_chunk_transfer():
    """Chunked wire movement sums to the closed-form time (exact floats)."""
    env, cluster = make_cluster(chunk_bytes=1024)
    nbytes = 8 * 1024  # 8 equal power-of-two chunks: float-exact summation
    estimate = cluster.network.estimate_transfer_time(
        cluster.nodes[0], cluster.nodes[1], nbytes
    )
    elapsed = simulate_transfer(env, cluster, 0, 1, nbytes)
    assert elapsed == estimate


def test_link_cost_returns_uplinks_only_across_racks():
    _, cluster = make_cluster(n_nodes=4, rack_size=2, uplink=UPLINK_BW)
    net = cluster.network
    lat, bw, uplinks = net.link_cost(cluster.nodes[0], cluster.nodes[1])
    assert (lat, bw, uplinks) == (0.5, NIC_BW, [])
    lat, bw, uplinks = net.link_cost(cluster.nodes[0], cluster.nodes[3])
    assert bw == UPLINK_BW
    assert len(uplinks) == 2


# ---------------------------------------------------------------------------
# batched transfers: closed-form serialization
# ---------------------------------------------------------------------------
def run_batched(env, cluster, src, dst, sizes):
    def proc():
        yield from cluster.network.batched_transfer(
            cluster.nodes[src], cluster.nodes[dst], sizes
        )
        return env.now

    p = env.process(proc())
    env.run()
    return p.value


def test_batched_transfer_charges_latency_per_message_and_bytes_once():
    env, cluster = make_cluster()
    sizes = [64, 128, 256, 64]
    elapsed = run_batched(env, cluster, 0, 1, sizes)
    # closed form: n x latency up front, then the summed bytes at wire bw
    assert elapsed == len(sizes) * 0.5 + sum(sizes) / NIC_BW
    assert cluster.network.inter_node_bytes == sum(sizes)
    assert cluster.network.inter_node_messages == len(sizes)


def test_batched_transfer_intra_node():
    env, cluster = make_cluster()
    sizes = [64, 64]
    elapsed = run_batched(env, cluster, 0, 0, sizes)
    assert cluster.network.intra_node_bytes == sum(sizes)
    assert cluster.network.inter_node_messages == 0
    assert elapsed > 0


def test_batched_transfer_empty_and_negative():
    env, cluster = make_cluster()
    assert run_batched(env, cluster, 0, 1, []) == 0.0
    with pytest.raises(ValueError):
        # drive the generator directly: validation happens on first step
        next(
            cluster.network.batched_transfer(
                cluster.nodes[0], cluster.nodes[1], [64, -1]
            )
        )


def test_batched_matches_back_to_back_serial_transfers():
    """Uncontended, the closed form equals n back-to-back transfers.

    The batch removes per-message simulation events and contention
    points, never modelled cost — so on an idle link the times agree.
    """
    sizes = [256] * 8

    env_a, cluster_a = make_cluster()

    def serial():
        for s in sizes:
            yield from cluster_a.network.transfer(
                cluster_a.nodes[0], cluster_a.nodes[1], s
            )
        return env_a.now

    p = env_a.process(serial())
    env_a.run()
    serial_time = p.value

    env_b, cluster_b = make_cluster()
    batched_time = run_batched(env_b, cluster_b, 0, 1, sizes)
    assert batched_time == serial_time  # back-to-back == closed form here
    # byte/message accounting identical either way
    assert (
        cluster_b.network.inter_node_bytes,
        cluster_b.network.inter_node_messages,
    ) == (
        cluster_a.network.inter_node_bytes,
        cluster_a.network.inter_node_messages,
    )
