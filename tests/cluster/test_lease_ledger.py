"""Unit tests for the cluster-wide remote-memory lease ledger."""

import pytest

from repro.cluster import Cluster, ClusterSpec, LeaseLedger, NodeSpec, StorageSpec
from repro.sim import Environment, RngFactory

KIB = 1024


def make_cluster(n_nodes=3, memory=64 * KIB):
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=memory,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=2, server_bandwidth=1e6, request_overhead=1e-3,
            stripe_size=256,
        ),
    )
    return Cluster(Environment(), spec, RngFactory(7))


class TestGrant:
    def test_grant_commits_lender_memory(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        before = cluster.node_of(1).memory.free_available
        lease = ledger.grant(1, borrower_rank=5, nbytes=8 * KIB, now=0.0, term=1.0)
        assert lease is not None and lease.active
        assert lease.lender_node == 1 and lease.borrower_rank == 5
        assert cluster.node_of(1).memory.free_available == before - 8 * KIB
        assert ledger.granted == 1
        assert ledger.outstanding == 1
        assert ledger.outstanding_bytes == 8 * KIB

    def test_cluster_owns_one_shared_ledger(self):
        cluster = make_cluster()
        assert isinstance(cluster.memory_ledger, LeaseLedger)
        assert cluster.memory_ledger is cluster.memory_ledger

    def test_denied_when_lender_too_poor(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        cluster.node_of(0).memory.set_available(4 * KIB)
        assert ledger.grant(0, 1, 8 * KIB, now=0.0, term=1.0) is None
        assert ledger.denied == 1
        assert ledger.outstanding == 0

    def test_denied_when_headroom_unmet(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        cluster.node_of(0).memory.set_available(10 * KIB)
        assert ledger.grant(0, 1, 8 * KIB, now=0.0, term=1.0, headroom=4 * KIB) is None
        assert ledger.grant(0, 1, 8 * KIB, now=0.0, term=1.0, headroom=2 * KIB) is not None

    def test_denied_when_lender_failed(self):
        cluster = make_cluster()
        cluster.node_of(2).fail()
        assert cluster.memory_ledger.grant(2, 1, KIB, now=0.0, term=1.0) is None
        assert cluster.memory_ledger.denied == 1

    def test_denied_on_empty_request_or_term(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        assert ledger.grant(0, 1, 0, now=0.0, term=1.0) is None
        assert ledger.grant(0, 1, KIB, now=0.0, term=0.0) is None
        assert ledger.denied == 2


class TestLifecycle:
    def test_release_frees_lender_memory(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        before = cluster.node_of(1).memory.free_available
        lease = ledger.grant(1, 3, 8 * KIB, now=0.0, term=1.0)
        ledger.release(lease, now=0.5)
        assert cluster.node_of(1).memory.free_available == before
        assert lease.state == "released"
        assert ledger.released == 1 and ledger.outstanding == 0
        # idempotent
        ledger.release(lease, now=0.6)
        assert ledger.released == 1

    def test_revoke_frees_memory_and_records_reason(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        before = cluster.node_of(0).memory.free_available
        lease = ledger.grant(0, 3, 4 * KIB, now=0.0, term=1.0)
        ledger.revoke(lease, now=0.2, reason="lender-failed")
        assert cluster.node_of(0).memory.free_available == before
        assert lease.state == "revoked"
        assert lease.outcome_reason == "lender-failed"
        assert ledger.revoked == 1 and ledger.outstanding == 0

    def test_expired_reason_counts_as_expiry(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(0, 3, KIB, now=0.0, term=1.0)
        ledger.revoke(lease, now=2.0, reason="expired")
        assert lease.state == "expired"
        assert ledger.expired == 1 and ledger.revoked == 0

    def test_renew_extends_active_lease_only(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(0, 3, KIB, now=0.0, term=1.0)
        assert ledger.renew(lease, now=0.6, term=1.0)
        assert lease.expires_at == pytest.approx(1.6)
        assert ledger.renewed == 1
        ledger.release(lease, now=0.7)
        assert not ledger.renew(lease, now=0.8, term=1.0)
        assert ledger.renewed == 1

    def test_renew_refuses_unsound_lease(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(2, 3, KIB, now=0.0, term=1.0)
        cluster.node_of(2).fail()
        assert not ledger.renew(lease, now=0.5, term=1.0)


class TestSoundness:
    def test_healthy_lease_is_sound(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(0, 3, KIB, now=0.0, term=1.0)
        assert ledger.soundness(lease, now=0.5) is None

    def test_lender_failure_detected(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(1, 3, KIB, now=0.0, term=1.0)
        cluster.node_of(1).fail()
        assert ledger.soundness(lease, now=0.5) == "lender-failed"

    def test_memory_squeeze_detected(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        node = cluster.node_of(1)
        lease = ledger.grant(1, 3, 8 * KIB, now=0.0, term=1.0)
        node.memory.apply_shock(node.memory.available)
        assert ledger.soundness(lease, now=0.5) == "memory-squeeze"

    def test_term_expiry_detected(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(1, 3, KIB, now=0.0, term=1.0)
        assert ledger.soundness(lease, now=0.999) is None
        assert ledger.soundness(lease, now=1.0) == "expired"

    def test_inactive_lease_reports_outcome(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        lease = ledger.grant(1, 3, KIB, now=0.0, term=1.0)
        ledger.revoke(lease, now=0.1, reason="memory-squeeze")
        assert ledger.soundness(lease, now=0.2) == "memory-squeeze"


class TestLedgerViews:
    def test_digest_tracks_active_set(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        assert ledger.digest() == ()
        a = ledger.grant(0, 1, KIB, now=0.0, term=1.0)
        b = ledger.grant(1, 2, 2 * KIB, now=0.0, term=1.0)
        assert ledger.digest() == (
            (a.lease_id, 0, KIB),
            (b.lease_id, 1, 2 * KIB),
        )
        ledger.release(a, now=0.5)
        assert ledger.digest() == ((b.lease_id, 1, 2 * KIB),)

    def test_listeners_see_lifecycle_events(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        events = []
        ledger.add_listener(lambda lease, event: events.append((lease.lease_id, event)))
        a = ledger.grant(0, 1, KIB, now=0.0, term=1.0)
        ledger.renew(a, now=0.5, term=1.0)
        ledger.release(a, now=0.6)
        b = ledger.grant(1, 2, KIB, now=0.7, term=1.0)
        ledger.revoke(b, now=0.8, reason="lender-failed")
        c = ledger.grant(1, 2, KIB, now=0.9, term=1.0)
        ledger.revoke(c, now=3.0, reason="expired")
        assert events == [
            (a.lease_id, "grant"),
            (a.lease_id, "renew"),
            (a.lease_id, "release"),
            (b.lease_id, "grant"),
            (b.lease_id, "revoke"),
            (c.lease_id, "grant"),
            (c.lease_id, "expire"),
        ]

    def test_history_retains_retired_leases(self):
        cluster = make_cluster()
        ledger = cluster.memory_ledger
        a = ledger.grant(0, 1, KIB, now=0.0, term=1.0)
        ledger.release(a, now=0.5)
        assert a in ledger.history
        assert ledger.active_leases() == []
