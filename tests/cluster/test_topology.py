"""Tests for the two-level (racked) network topology."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.sim import Environment, RngFactory


def make_racked(n_nodes=4, rack_size=2, uplink=5.0, nic=10.0):
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=1000,
            memory_bandwidth=100.0,
            memory_channels=2,
            nic_bandwidth=nic,
            nic_latency=1.0,
        ),
        rack_size=rack_size,
        uplink_bandwidth=uplink,
    )
    return env, Cluster(env, spec, RngFactory(0))


def run_transfer(env, cluster, src, dst, nbytes):
    def proc():
        yield from cluster.network.transfer(
            cluster.nodes[src], cluster.nodes[dst], nbytes
        )
        return env.now

    p = env.process(proc())
    env.run()
    return p.value


def test_rack_of():
    env, cluster = make_racked(n_nodes=5, rack_size=2)
    racks = [cluster.network.rack_of(n) for n in cluster.nodes]
    assert racks == [0, 0, 1, 1, 2]


def test_flat_topology_has_no_racks():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(nodes=2), RngFactory(0))
    assert cluster.network.rack_of(cluster.nodes[0]) is None
    assert cluster.network.inter_rack_bytes == 0


def test_intra_rack_transfer_at_nic_speed():
    env, cluster = make_racked()
    t = run_transfer(env, cluster, 0, 1, 100)
    # latency 1 + 100/10 = 11; no uplink slowdown
    assert t == pytest.approx(11.0)
    assert cluster.network.inter_rack_bytes == 0


def test_inter_rack_transfer_at_uplink_speed():
    env, cluster = make_racked()
    t = run_transfer(env, cluster, 0, 2, 100)
    # latency 1 + 100/5 (uplink slower than NICs) = 21
    assert t == pytest.approx(21.0)
    assert cluster.network.inter_rack_bytes == 100


def test_uplink_serializes_cross_rack_flows():
    env, cluster = make_racked(n_nodes=4, rack_size=2)
    times = []

    def sender(src, dst):
        yield from cluster.network.transfer(
            cluster.nodes[src], cluster.nodes[dst], 100
        )
        times.append(env.now)

    # two flows out of rack 0 into rack 1: distinct NICs, shared uplinks
    env.process(sender(0, 2))
    env.process(sender(1, 3))
    env.run()
    assert max(times) >= 41.0  # second flow waits for the uplink


def test_intra_rack_flows_unaffected_by_uplink():
    env, cluster = make_racked(n_nodes=4, rack_size=2)
    times = []

    def sender(src, dst):
        yield from cluster.network.transfer(
            cluster.nodes[src], cluster.nodes[dst], 100
        )
        times.append(env.now)

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    assert max(times) == pytest.approx(11.0)


def test_no_deadlock_with_bidirectional_cross_rack_traffic():
    env, cluster = make_racked(n_nodes=4, rack_size=2)
    done = []

    def sender(src, dst, n):
        yield from cluster.network.transfer(cluster.nodes[src], cluster.nodes[dst], n)
        done.append((src, dst))

    # crossing flows in both directions, plus intra-rack noise
    env.process(sender(0, 2, 300))
    env.process(sender(2, 0, 300))
    env.process(sender(1, 3, 300))
    env.process(sender(3, 1, 300))
    env.process(sender(0, 1, 300))
    env.run()
    assert len(done) == 5


def test_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=4, rack_size=2)  # uplink missing
    with pytest.raises(ValueError):
        ClusterSpec(nodes=4, uplink_bandwidth=1e9)  # rack_size missing
    with pytest.raises(ValueError):
        ClusterSpec(nodes=4, rack_size=0, uplink_bandwidth=1e9)
    with pytest.raises(ValueError):
        ClusterSpec(nodes=4, rack_size=2, uplink_bandwidth=0)
