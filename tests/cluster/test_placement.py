"""Tests for rank placement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    block_placement,
    ranks_on_node,
    round_robin_placement,
    validate_placement,
)


def test_block_placement_fills_in_order():
    assert block_placement(6, 3, 2) == [0, 0, 1, 1, 2, 2]


def test_block_placement_partial_last_node():
    assert block_placement(5, 3, 2) == [0, 0, 1, 1, 2]


def test_round_robin_placement_cycles():
    assert round_robin_placement(6, 3, 2) == [0, 1, 2, 0, 1, 2]


def test_placement_rejects_oversubscription():
    with pytest.raises(ValueError):
        block_placement(7, 3, 2)
    with pytest.raises(ValueError):
        round_robin_placement(0, 3, 2)


def test_ranks_on_node():
    placement = block_placement(6, 3, 2)
    assert ranks_on_node(placement, 1) == [2, 3]
    assert ranks_on_node(placement, 5) == []


def test_validate_placement_accepts_legal():
    validate_placement([0, 1, 0, 1], n_nodes=2, cores_per_node=2)


def test_validate_placement_rejects_bad_node():
    with pytest.raises(ValueError):
        validate_placement([0, 5], n_nodes=2, cores_per_node=2)


def test_validate_placement_rejects_oversubscribed():
    with pytest.raises(ValueError):
        validate_placement([0, 0, 0], n_nodes=2, cores_per_node=2)


@given(
    n_nodes=st.integers(1, 20),
    cores=st.integers(1, 16),
    data=st.data(),
)
def test_placements_always_valid_property(n_nodes, cores, data):
    n_ranks = data.draw(st.integers(1, n_nodes * cores))
    for policy in (block_placement, round_robin_placement):
        placement = policy(n_ranks, n_nodes, cores)
        assert len(placement) == n_ranks
        validate_placement(placement, n_nodes, cores)


@given(n_nodes=st.integers(1, 10), cores=st.integers(1, 8))
def test_block_placement_is_monotone(n_nodes, cores):
    placement = block_placement(n_nodes * cores, n_nodes, cores)
    assert placement == sorted(placement)
    # block placement keeps whole nodes contiguous in rank order — the
    # property group division relies on
    for node in range(n_nodes):
        ranks = ranks_on_node(placement, node)
        assert ranks == list(range(min(ranks), max(ranks) + 1))
