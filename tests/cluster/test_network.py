"""Tests for node/network timing and contention behaviour."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.sim import Environment, RngFactory


def make_cluster(n_nodes=2, **node_kwargs):
    env = Environment()
    defaults = dict(
        cores=4,
        memory_bytes=1000,
        memory_bandwidth=100.0,
        memory_channels=2,
        nic_bandwidth=10.0,
        nic_latency=1.0,
    )
    defaults.update(node_kwargs)
    spec = ClusterSpec(nodes=n_nodes, node=NodeSpec(**defaults))
    return env, Cluster(env, spec, RngFactory(0))


def test_inter_node_transfer_time():
    env, cluster = make_cluster()

    def proc():
        yield from cluster.network.transfer(cluster.nodes[0], cluster.nodes[1], 100)
        return env.now

    p = env.process(proc())
    env.run()
    # latency 1 + 100 bytes / 10 B/s = 11s
    assert p.value == pytest.approx(11.0)
    assert cluster.network.inter_node_bytes == 100
    assert cluster.network.inter_node_messages == 1


def test_intra_node_transfer_uses_memory_not_nic():
    env, cluster = make_cluster()

    def proc():
        yield from cluster.network.transfer(cluster.nodes[0], cluster.nodes[0], 100)
        return env.now

    p = env.process(proc())
    env.run()
    # channel bw = 100/2 = 50 B/s -> 2s + tiny latency
    assert p.value == pytest.approx(2.0, rel=1e-3)
    assert cluster.network.inter_node_bytes == 0
    assert cluster.network.intra_node_bytes == 100


def test_many_to_one_serializes_at_receiver_nic():
    env, cluster = make_cluster(n_nodes=3)
    times = []

    def sender(src_id):
        yield from cluster.network.transfer(
            cluster.nodes[src_id], cluster.nodes[2], 100
        )
        times.append(env.now)

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    # each transfer holds receiver rx for ~11s; second must wait
    assert max(times) >= 21.0


def test_disjoint_pairs_proceed_in_parallel():
    env, cluster = make_cluster(n_nodes=4)
    times = []

    def sender(src_id, dst_id):
        yield from cluster.network.transfer(
            cluster.nodes[src_id], cluster.nodes[dst_id], 100
        )
        times.append(env.now)

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    assert max(times) == pytest.approx(11.0)


def test_paged_destination_slows_wire_time():
    env, cluster = make_cluster()
    # drive the destination node into full overcommit: graded paging
    # factor reaches the configured penalty (4.0)
    cluster.nodes[1].memory.set_available(0)
    cluster.nodes[1].memory.alloc(500)

    def proc():
        yield from cluster.network.transfer(
            cluster.nodes[0], cluster.nodes[1], 100, paged_dst=True
        )
        return env.now

    p = env.process(proc())
    env.run()
    # paging_penalty 4.0 at full overcommit: 1 + 4*10 = 41
    assert p.value == pytest.approx(41.0)


def test_paged_flag_without_overcommit_is_free():
    env, cluster = make_cluster()

    def proc():
        yield from cluster.network.transfer(
            cluster.nodes[0], cluster.nodes[1], 100, paged_dst=True
        )
        return env.now

    p = env.process(proc())
    env.run()
    # destination fits in available memory: graded factor is 1.0
    assert p.value == pytest.approx(11.0)


def test_memcopy_channel_contention():
    env, cluster = make_cluster(memory_channels=1)
    times = []

    def copier():
        yield from cluster.nodes[0].memcopy(100)
        times.append(env.now)

    env.process(copier())
    env.process(copier())
    env.run()
    # one channel at 100 B/s -> copies serialize: 1s then 2s
    assert sorted(times) == pytest.approx([1.0, 2.0])


def test_negative_transfer_rejected():
    env, cluster = make_cluster()

    def proc():
        yield from cluster.network.transfer(cluster.nodes[0], cluster.nodes[1], -1)

    env.process(proc())
    with pytest.raises(Exception):
        env.run()


def test_estimate_matches_uncontended_run():
    env, cluster = make_cluster()
    est = cluster.network.estimate_transfer_time(cluster.nodes[0], cluster.nodes[1], 100)

    def proc():
        yield from cluster.network.transfer(cluster.nodes[0], cluster.nodes[1], 100)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == pytest.approx(est)


def test_memory_availability_sampling_deterministic():
    env1, c1 = make_cluster(n_nodes=4, memory_bytes=10**9)
    env2, c2 = make_cluster(n_nodes=4, memory_bytes=10**9)
    d1 = c1.sample_memory_availability(mean_bytes=64e6, sigma_bytes=10e6)
    d2 = c2.sample_memory_availability(mean_bytes=64e6, sigma_bytes=10e6)
    assert (d1 == d2).all()
    assert (c1.memory_availability() == c2.memory_availability()).all()


def test_memory_availability_clipped_to_floor_and_capacity():
    env, cluster = make_cluster(n_nodes=8, memory_bytes=10**6)
    draws = cluster.sample_memory_availability(
        mean_bytes=5e5, sigma_bytes=1e6, floor_bytes=1e3
    )
    assert (draws >= 1e3).all()
    assert (draws <= 10**6).all()


def test_set_memory_availability_validates_length():
    env, cluster = make_cluster(n_nodes=3)
    with pytest.raises(ValueError):
        cluster.set_memory_availability([1, 2])
