"""Tests for the time-varying background memory load."""

import numpy as np
import pytest

from repro.cluster import BackgroundLoad, Cluster, ClusterSpec, NodeSpec
from repro.sim import Environment, RngFactory


def make_cluster(n_nodes=4, seed=3, capacity=10**9):
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(cores=4, memory_bytes=capacity, memory_bandwidth=1e9,
                      nic_bandwidth=1e8),
    )
    return env, Cluster(env, spec, RngFactory(seed))


def test_step_applies_availability():
    env, cluster = make_cluster()
    load = BackgroundLoad(cluster, mean_bytes=5e8, sigma_bytes=1e8)
    levels = load.step()
    assert (cluster.memory_availability() == levels.astype(np.int64)).all()
    assert load.updates == 1


def test_levels_clipped_to_floor_and_capacity():
    env, cluster = make_cluster(capacity=10**6)
    load = BackgroundLoad(
        cluster, mean_bytes=5e5, sigma_bytes=1e7, floor_bytes=1e3
    )
    for _ in range(20):
        levels = load.step()
        assert (levels >= 1e3).all()
        assert (levels <= 10**6).all()


def test_mean_reversion_pulls_back():
    env, cluster = make_cluster()
    load = BackgroundLoad(
        cluster, mean_bytes=5e8, sigma_bytes=0, reversion=0.5
    )
    load._level = np.full(4, 1e8)  # start far below the mean
    load.step()
    assert (load._level > 1e8).all()
    for _ in range(50):
        load.step()
    assert np.allclose(load._level, 5e8, rtol=1e-3)


def test_periodic_updates_in_simulation():
    env, cluster = make_cluster()
    load = BackgroundLoad(cluster, mean_bytes=5e8, sigma_bytes=1e7, period=0.1)
    load.start()

    def observer(env):
        yield env.timeout(1.05)

    p = env.process(observer(env))
    env.run(until=p)
    # initial step + ~10 periodic updates
    assert load.updates >= 10


def test_stop_interrupts_cleanly():
    env, cluster = make_cluster()
    load = BackgroundLoad(cluster, mean_bytes=5e8, sigma_bytes=1e7, period=0.1)
    load.start()

    def stopper(env):
        yield env.timeout(0.35)
        load.stop()

    env.process(stopper(env))
    env.run()  # must terminate (no crash, no infinite churn)
    assert 3 <= load.updates <= 5


def test_double_start_rejected():
    env, cluster = make_cluster()
    load = BackgroundLoad(cluster, mean_bytes=5e8, sigma_bytes=1e7)
    load.start()
    with pytest.raises(RuntimeError):
        load.start()


def test_deterministic_given_seed():
    def trajectory():
        env, cluster = make_cluster(seed=11)
        load = BackgroundLoad(cluster, mean_bytes=5e8, sigma_bytes=1e8)
        return [load.step().copy() for _ in range(5)]

    a, b = trajectory(), trajectory()
    for x, y in zip(a, b):
        assert (x == y).all()


def test_per_node_means():
    env, cluster = make_cluster()
    means = np.array([1e8, 2e8, 3e8, 4e8])
    load = BackgroundLoad(cluster, mean_bytes=means, sigma_bytes=0, reversion=1.0)
    levels = load.step()
    assert np.allclose(levels, means)


def test_validation():
    env, cluster = make_cluster()
    with pytest.raises(ValueError):
        BackgroundLoad(cluster, mean_bytes=1e8, sigma_bytes=-1)
    with pytest.raises(ValueError):
        BackgroundLoad(cluster, mean_bytes=1e8, sigma_bytes=0, reversion=0)
    with pytest.raises(ValueError):
        BackgroundLoad(cluster, mean_bytes=1e8, sigma_bytes=0, period=0)
