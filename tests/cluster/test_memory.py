"""Tests for the node memory model."""

import pytest

from repro.cluster.memory import MemoryModel


def test_alloc_within_available_not_paged():
    mem = MemoryModel(capacity_bytes=100, available_bytes=50)
    a = mem.alloc(40)
    assert not a.paged
    assert mem.committed == 40
    assert mem.free_available == 10


def test_alloc_beyond_available_paged():
    mem = MemoryModel(capacity_bytes=100, available_bytes=50)
    a = mem.alloc(60)
    assert a.paged
    assert mem.paged_alloc_count == 1


def test_second_alloc_pages_when_cumulative_exceeds():
    mem = MemoryModel(capacity_bytes=100, available_bytes=50)
    a = mem.alloc(30)
    b = mem.alloc(30)
    assert not a.paged
    assert b.paged


def test_zero_alloc_never_paged():
    mem = MemoryModel(capacity_bytes=10, available_bytes=0)
    a = mem.alloc(0)
    assert not a.paged


def test_free_restores_and_double_free_rejected():
    mem = MemoryModel(capacity_bytes=100)
    a = mem.alloc(70)
    mem.free(a)
    assert mem.committed == 0
    with pytest.raises(ValueError):
        mem.free(a)


def test_peak_tracks_high_water_mark():
    mem = MemoryModel(capacity_bytes=100)
    a = mem.alloc(70)
    mem.free(a)
    mem.alloc(10)
    assert mem.peak_committed == 70


def test_available_clipped_to_capacity():
    mem = MemoryModel(capacity_bytes=100, available_bytes=500)
    assert mem.available == 100


def test_set_available():
    mem = MemoryModel(capacity_bytes=100, available_bytes=100)
    mem.set_available(25)
    assert mem.would_page(30)
    assert not mem.would_page(25)
    with pytest.raises(ValueError):
        mem.set_available(-1)


def test_copy_time_penalty():
    mem = MemoryModel(capacity_bytes=100, paging_penalty=4.0)
    base = mem.copy_time(1000, bandwidth=100.0)
    assert base == pytest.approx(10.0)
    assert mem.copy_time(1000, bandwidth=100.0, paged=True) == pytest.approx(40.0)


def test_current_paging_factor_grades_with_overcommit():
    mem = MemoryModel(capacity_bytes=1000, available_bytes=100, paging_penalty=16.0)
    assert mem.current_paging_factor == 1.0
    mem.alloc(100)  # exactly fits
    assert mem.current_paging_factor == 1.0
    mem.alloc(100)  # 50% of committed memory is overcommitted
    assert mem.current_paging_factor == pytest.approx(1 + 15 * 0.5)
    mem.alloc(800)  # 90% overcommitted
    assert mem.current_paging_factor == pytest.approx(1 + 15 * 0.9)
    assert not MemoryModel(capacity_bytes=10).overcommitted


def test_validation():
    with pytest.raises(ValueError):
        MemoryModel(capacity_bytes=0)
    with pytest.raises(ValueError):
        MemoryModel(capacity_bytes=10, paging_penalty=0.9)
    with pytest.raises(ValueError):
        MemoryModel(capacity_bytes=10, available_bytes=-5)
    mem = MemoryModel(capacity_bytes=10)
    with pytest.raises(ValueError):
        mem.alloc(-1)
    with pytest.raises(ValueError):
        mem.copy_time(10, bandwidth=0)


def test_alloc_count():
    mem = MemoryModel(capacity_bytes=100)
    mem.alloc(1)
    mem.alloc(2)
    assert mem.alloc_count == 2
