"""Tests for hardware specs and Table 1 data."""

import pytest

from repro.cluster import (
    GIB,
    MIB,
    TABLE1_ROWS,
    ClusterSpec,
    NodeSpec,
    StorageSpec,
    exascale_2018,
    memory_per_core_factor,
    petascale_2010,
    ross13_testbed,
)


def test_node_spec_defaults_match_testbed():
    spec = NodeSpec()
    assert spec.cores == 12
    assert spec.memory_bytes == 24 * GIB
    assert spec.memory_per_core == pytest.approx(2 * GIB)
    assert spec.bandwidth_per_core == pytest.approx(25e9 / 12)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cores": 0},
        {"memory_bytes": 0},
        {"memory_bandwidth": 0},
        {"nic_bandwidth": -1},
        {"memory_channels": 0},
        {"nic_latency": -1e-6},
    ],
)
def test_node_spec_validation(kwargs):
    with pytest.raises(ValueError):
        NodeSpec(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"servers": 0},
        {"server_bandwidth": 0},
        {"request_overhead": -1},
        {"stripe_size": 0},
    ],
)
def test_storage_spec_validation(kwargs):
    with pytest.raises(ValueError):
        StorageSpec(**kwargs)


def test_storage_aggregate_bandwidth():
    s = StorageSpec(servers=4, server_bandwidth=100e6)
    assert s.aggregate_bandwidth == pytest.approx(400e6)


def test_cluster_spec_totals():
    spec = ClusterSpec(nodes=10, node=NodeSpec(cores=12, memory_bytes=24 * GIB))
    assert spec.total_cores == 120
    assert spec.total_memory == 240 * GIB


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(paging_penalty=0.5)


def test_with_nodes_scales():
    spec = ross13_testbed(nodes=10)
    bigger = spec.with_nodes(90)
    assert bigger.nodes == 90
    assert bigger.node == spec.node


def test_ross13_testbed_paper_run_sizes():
    # the paper runs 120 and 1080 processes on 12-core nodes
    assert ross13_testbed(10).total_cores == 120
    assert ross13_testbed(90).total_cores == 1080
    assert ross13_testbed().storage.stripe_size == 1 * MIB


def test_table1_has_all_eleven_rows():
    assert len(TABLE1_ROWS) == 11
    names = [row[0] for row in TABLE1_ROWS]
    assert "System Memory" in names
    assert "Total concurrency" in names
    assert "I/O Bandwidth" in names


def test_table1_factors_match_paper():
    factors = {row[0]: row[3] for row in TABLE1_ROWS}
    assert factors["System Peak"] == 500
    assert factors["Node Memory BW"] == 16
    assert factors["Total concurrency"] == 4444
    assert factors["I/O Bandwidth"] == 100


def test_memory_per_core_formula_shrinks():
    # M=33, SZ=50, NC=83 from Table 1 -> memory per core drops ~125x
    f = memory_per_core_factor(33, 50, 83)
    assert f == pytest.approx(33 / (50 * 83))
    assert f < 0.01


def test_memory_per_core_formula_validation():
    with pytest.raises(ValueError):
        memory_per_core_factor(33, 0, 83)


def test_exascale_preset_memory_per_core_megabytes():
    # Table 1's argument: memory per core drops to megabytes at exascale.
    spec = exascale_2018()
    assert spec.node.memory_per_core < 16 * MIB
    assert petascale_2010().node.memory_per_core > 1 * GIB


def test_specs_are_frozen():
    spec = NodeSpec()
    with pytest.raises(Exception):
        spec.cores = 100  # type: ignore[misc]
