"""Regenerate the vectorized-mode golden fixtures.

Run from the repository root **on a known-good driver** (normally the
commit *before* a vectorized-path change lands)::

    PYTHONPATH=src python -m tests.goldens.generate_vectorized

Writes ``tests/goldens/goldens_vectorized.json``.  The replay test
(``tests/core/test_vectorized_golden.py``) then pins every later driver
to these recorded values bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

from tests.goldens.vectorized_cases import (
    all_vectorized_cells,
    run_vectorized_case,
    vectorized_case_id,
)

GOLDEN_PATH = Path(__file__).with_name("goldens_vectorized.json")


def main() -> None:
    records = {}
    for case, op in all_vectorized_cells():
        key = vectorized_case_id(case, op)
        records[key] = run_vectorized_case(case, op)
        print(f"recorded {key}")
    GOLDEN_PATH.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(records)} cases)")


if __name__ == "__main__":
    main()
