"""Golden-trace fixtures pinning the optimized engine to the seed engine."""
