"""The vectorized-mode golden matrix (DESIGN.md §11).

Four cells — ``{write, read} x {remerge, borrow}`` — pin the node-level
vectorized driver the same way :mod:`tests.goldens.cases` pins the
per-rank kernel:

* ``remerge``: a uniform, memory-rich cluster where vectorization is
  accepted.  The golden records the *vectorized* driver's own stats and
  final simulated clock, so any later change to the node-level cost
  arithmetic (batched transfers, window staging, barrier charges) is
  diff-detectable bit-for-bit.
* ``borrow``: a memory-skewed cluster under ``placement_policy="borrow"``
  whose plan needs lender-backed buffers.  The driver must refuse
  (``lender-domains``) and fall back to per-rank coroutines running the
  real borrow protocol; the golden pins the refusal accounting and the
  fallback's timing, so the refusal/fallback seam cannot silently drift.

Runs are metadata-only (``with_data=False``) — the data plane itself is
a refusal condition, pinned by the ``data-plane`` fallback test in
``tests/sim/test_vectorized_equivalence.py`` against the kernel goldens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.metrics import CollectiveStats
from repro.core.request import AccessPattern
from repro.core.vectorized import run_vectorized_collective

from tests.goldens.cases import CLUSTER_CASES, build_patterns, stats_to_jsonable
from tests.helpers import make_stack

OPS = ("write", "read")


@dataclass(frozen=True)
class VectorizedCase:
    """One deterministic vectorized-driver scenario."""

    name: str  # "remerge" | "borrow"
    #: per-node available memory pinned before planning (None = default)
    memory_availability: tuple[int, ...] | None
    placement_policy: str
    #: what the recorded run must have done — checked at generation time
    expect_mode: str
    expect_refusals: int


VEC_CASES = (
    VectorizedCase(
        name="remerge",
        memory_availability=None,
        placement_policy="remerge",
        expect_mode="vectorized",
        expect_refusals=0,
    ),
    VectorizedCase(
        name="borrow",
        memory_availability=(6000, 6000, 10**9),
        placement_policy="borrow",
        expect_mode="per-rank",
        expect_refusals=1,
    ),
)

#: the workload is the kernel goldens' "uniform" cluster: 12 ranks on
#: 3 nodes, serial per-rank chunks — shared so the two golden sets stay
#: comparable cell-for-cell
_UNIFORM = CLUSTER_CASES[0]


def make_vectorized_engine(stack, case: VectorizedCase):
    return MemoryConsciousCollectiveIO(
        stack.comm,
        stack.pfs,
        MCIOConfig(
            msg_group=1 << 30 if case.name == "borrow" else 16 * 1024,
            msg_ind=4 * 1024 if case.name == "borrow" else 2 * 1024,
            mem_min=0,
            nah=2,
            cb_buffer_size=8 * 1024 if case.name == "borrow" else 1024,
            min_buffer=1,
            adaptive_buffer=case.name != "borrow",
            placement_policy=case.placement_policy,
            execution_mode="vectorized",
        ),
    )


def vec_stats_to_jsonable(stats: CollectiveStats) -> dict:
    """The kernel-golden stats form plus the execution-mode fields."""
    out = stats_to_jsonable(stats)
    out["execution_mode"] = stats.execution_mode
    out["vectorized_refusals"] = stats.vectorized_refusals
    # the borrow cell's fallback runs the real lease protocol — pin it
    out["leases_granted"] = stats.leases_granted
    out["leases_renewed"] = stats.leases_renewed
    out["borrow_bytes"] = stats.borrow_bytes
    out["borrow_fallbacks"] = stats.borrow_fallbacks
    return out


def case_patterns(case: VectorizedCase) -> list[AccessPattern]:
    """Deterministic per-rank file views for `case`.

    The remerge cell reuses the kernel goldens' uniform serial workload;
    the borrow cell needs per-rank extents large enough that an
    unshrinkable 8 KiB buffer cannot fit on the poor hosts, forcing the
    placer to a lender-backed domain.
    """
    if case.name == "borrow":
        return [
            AccessPattern.contiguous(r * 4096, 4096)
            for r in range(_UNIFORM.n_ranks)
        ]
    return build_patterns(_UNIFORM)


def run_vectorized_case(case: VectorizedCase, op: str) -> dict:
    """Execute one vectorized golden cell and return its record."""
    patterns = case_patterns(case)
    stack = make_stack(
        n_ranks=_UNIFORM.n_ranks,
        n_nodes=_UNIFORM.n_nodes,
        cores=_UNIFORM.cores,
        stripe_size=_UNIFORM.stripe_size,
        with_data=False,
    )
    if case.memory_availability is not None:
        stack.cluster.set_memory_availability(case.memory_availability)
    engine = make_vectorized_engine(stack, case)
    stats = run_vectorized_collective(engine, patterns, op)
    assert stats.execution_mode == case.expect_mode, (
        f"{case.name}/{op}: recorded run took the {stats.execution_mode} "
        f"path, scenario expects {case.expect_mode}"
    )
    assert stats.vectorized_refusals == case.expect_refusals
    if case.name == "borrow":
        assert stats.leases_granted > 0, "borrow fallback never borrowed"
    return {
        "case": case.name,
        "op": op,
        "final_now_hex": float(stack.env.now).hex(),
        "stats": vec_stats_to_jsonable(stats),
    }


def vectorized_case_id(case: VectorizedCase, op: str) -> str:
    """Stable key for one vectorized golden cell."""
    return f"vectorized/{case.name}/{op}"


def all_vectorized_cells():
    """Iterate every (case, op) cell of the vectorized golden matrix."""
    for case in VEC_CASES:
        for op in OPS:
            yield case, op
