"""The golden-trace workload matrix.

Each case is a fully deterministic simulated collective:
``{mcio, two-phase, independent} x {read, write} x 3 cluster specs``.
The generator (:mod:`tests.goldens.generate`) records each case's
:class:`~repro.core.metrics.CollectiveStats` at **full float precision**
(``float.hex``), the final simulated clock, and a digest of the PFS
datastore bytes.  The replay test asserts the current engine reproduces
every recorded quantity bit-for-bit, which is what licenses kernel-level
optimisation of the simulator: any change to event ordering, cost
arithmetic, or planning output shows up as a golden mismatch.

Only *fault-free* runs are pinned (no fault schedules, no failovers);
degraded-mode behaviour is covered by the dedicated fault tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    IndependentIO,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.metrics import CollectiveStats
from repro.core.request import AccessPattern, StridedSegment

from tests.helpers import make_stack, rank_payload

MIB = 1024 * 1024

STRATEGIES = ("two-phase", "mcio", "independent")
OPS = ("write", "read")


@dataclass(frozen=True)
class ClusterCase:
    """One deterministic cluster + workload configuration."""

    name: str
    n_ranks: int
    n_nodes: int
    cores: int
    #: per-node available memory pinned before planning (None = default)
    memory_availability: Optional[tuple[int, ...]]
    workload: str  # "serial" | "interleaved" | "mixed"
    cb_buffer_size: int
    granularity: str
    stripe_size: int = 256


CLUSTER_CASES = (
    # uniform memory, serial per-rank chunks: the common happy path
    ClusterCase(
        name="uniform",
        n_ranks=12,
        n_nodes=3,
        cores=4,
        memory_availability=None,
        workload="serial",
        cb_buffer_size=1024,
        granularity="round",
    ),
    # skewed memory, interleaved IOR-style stride: exercises group
    # division's interleaved path, remerging, and adaptive buffers
    ClusterCase(
        name="pressure",
        n_ranks=16,
        n_nodes=4,
        cores=4,
        memory_availability=(64 * 1024, 2048, 64 * 1024, 1024),
        workload="interleaved",
        cb_buffer_size=2048,
        granularity="round",
    ),
    # tiny memory everywhere + streaming granularity: paged placements
    # and the domain-batched timing model
    ClusterCase(
        name="tiny-mem",
        n_ranks=8,
        n_nodes=2,
        cores=4,
        memory_availability=(1536, 1024),
        workload="mixed",
        cb_buffer_size=512,
        granularity="domain",
    ),
)


def build_patterns(case: ClusterCase) -> list[AccessPattern]:
    """Deterministic per-rank file views for `case` (disjoint bytes)."""
    n = case.n_ranks
    if case.workload == "serial":
        # contiguous per-rank chunks with small gaps
        out = []
        pos = 0
        for r in range(n):
            length = 700 + 37 * r
            out.append(AccessPattern.contiguous(pos, length))
            pos += length + (r % 3) * 16
        return out
    if case.workload == "interleaved":
        # IOR-style interleave: rank r owns block r of every stride
        block = 192
        stride = block * n
        count = 6
        return [
            AccessPattern((StridedSegment(r * block, block, stride, count),))
            for r in range(n)
        ]
    if case.workload == "mixed":
        # half the ranks strided, half contiguous after the strided region
        block, count = 128, 5
        half = n // 2
        stride = block * half
        out = [
            AccessPattern((StridedSegment(r * block, block, stride, count),))
            for r in range(half)
        ]
        base = stride * count
        for i in range(n - half):
            length = 600 + 41 * i
            out.append(AccessPattern.contiguous(base, length))
            base += length + 24
        return out
    raise ValueError(f"unknown workload {case.workload!r}")


def make_engine(
    strategy: str, stack, case: ClusterCase, mcio_overrides: Optional[dict] = None
):
    """The strategy under test, configured for `case`.

    `mcio_overrides` patches extra :class:`MCIOConfig` knobs on top of
    the case's pinned configuration (e.g. ``{"plan_cache": True}``) so
    opt-in features can be replayed against the recorded goldens.
    """
    if strategy == "two-phase":
        return TwoPhaseCollectiveIO(
            stack.comm,
            stack.pfs,
            TwoPhaseConfig(
                cb_buffer_size=case.cb_buffer_size,
                shuffle_granularity=case.granularity,
            ),
        )
    if strategy == "mcio":
        kwargs = dict(
            msg_group=16 * 1024,
            msg_ind=2 * 1024,
            mem_min=0,
            nah=2,
            cb_buffer_size=case.cb_buffer_size,
            min_buffer=1,
            shuffle_granularity=case.granularity,
        )
        if mcio_overrides:
            kwargs.update(mcio_overrides)
        return MemoryConsciousCollectiveIO(
            stack.comm, stack.pfs, MCIOConfig(**kwargs)
        )
    if strategy == "independent":
        return IndependentIO(stack.comm, stack.pfs)
    raise ValueError(f"unknown strategy {strategy!r}")


def _prefill(datastore, end: int) -> None:
    """Deterministic initial file image for read cases."""
    idx = np.arange(end, dtype=np.int64)
    datastore.write(0, ((idx * 31 + 7) % 251).astype(np.uint8))


def stats_to_jsonable(stats: CollectiveStats) -> dict:
    """Lossless, order-stable JSON form of a stats record.

    Floats are serialized with ``float.hex`` so the comparison is exact
    at full precision, never within a tolerance.
    """
    return {
        "strategy": stats.strategy,
        "op": stats.op,
        "total_bytes": stats.total_bytes,
        "elapsed_hex": float(stats.elapsed).hex(),
        "n_ranks": stats.n_ranks,
        "n_aggregators": stats.n_aggregators,
        "aggregator_ranks": list(stats.aggregator_ranks),
        "agg_buffer_bytes": {
            str(k): stats.agg_buffer_bytes[k] for k in sorted(stats.agg_buffer_bytes)
        },
        "agg_overcommit_bytes": {
            str(k): stats.agg_overcommit_bytes[k]
            for k in sorted(stats.agg_overcommit_bytes)
        },
        "paged_aggregators": stats.paged_aggregators,
        "rounds_total": stats.rounds_total,
        "shuffle_intra_node_bytes": stats.shuffle_intra_node_bytes,
        "shuffle_inter_node_bytes": stats.shuffle_inter_node_bytes,
        "shuffle_inter_group_bytes": stats.shuffle_inter_group_bytes,
        "n_groups": stats.n_groups,
        "degraded_tier": stats.degraded_tier,
        "io_retries": stats.io_retries,
        "io_abandons": stats.io_abandons,
        "failovers": stats.failovers,
        "extra": {k: stats.extra[k] for k in sorted(map(str, stats.extra))},
    }


def run_case(
    strategy: str,
    op: str,
    case: ClusterCase,
    mcio_overrides: Optional[dict] = None,
    tracer=None,
) -> dict:
    """Execute one matrix cell and return its full golden record.

    Passing a :class:`repro.obs.Tracer` installs it on the case's
    environment before the run — the no-perturbation suite uses this to
    show traced runs reproduce the recorded goldens bit-for-bit.
    """
    patterns = build_patterns(case)
    stack = make_stack(
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        stripe_size=case.stripe_size,
    )
    if tracer is not None:
        tracer.install(stack.env)
    if case.memory_availability is not None:
        stack.cluster.set_memory_availability(case.memory_availability)
    engine = make_engine(strategy, stack, case, mcio_overrides=mcio_overrides)
    end = max(p.end for p in patterns if not p.empty)

    if op == "write":
        payloads = {
            r: rank_payload(r, patterns[r].nbytes) for r in range(case.n_ranks)
        }

        def main(ctx):
            yield from engine.write(
                ctx, patterns[ctx.rank], payloads[ctx.rank].copy()
            )

        stack.run_spmd(main)
        rank_digests = None
    else:
        _prefill(stack.pfs.datastore, end)

        def main(ctx):
            data = yield from engine.read(ctx, patterns[ctx.rank])
            return data

        results = stack.run_spmd(main)
        rank_digests = [
            hashlib.sha256(np.asarray(results[r], dtype=np.uint8).tobytes())
            .hexdigest()
            for r in range(case.n_ranks)
        ]

    image = np.asarray(stack.pfs.datastore.read(0, end), dtype=np.uint8)
    record = {
        "case": case.name,
        "strategy": strategy,
        "op": op,
        "final_now_hex": float(stack.env.now).hex(),
        "datastore_sha256": hashlib.sha256(image.tobytes()).hexdigest(),
        "stats": stats_to_jsonable(engine.history[0]),
    }
    if rank_digests is not None:
        record["rank_payload_sha256"] = rank_digests
    return record


def case_id(strategy: str, op: str, case: ClusterCase) -> str:
    """Stable key for one matrix cell."""
    return f"{case.name}/{strategy}/{op}"


def all_cells():
    """Iterate every (strategy, op, case) cell of the golden matrix."""
    for case in CLUSTER_CASES:
        for strategy in STRATEGIES:
            for op in OPS:
                yield strategy, op, case
