"""Regenerate the golden-trace fixtures.

Run from the repository root **on a known-good engine** (normally the
commit *before* an optimisation lands)::

    PYTHONPATH=src python -m tests.goldens.generate

Writes ``tests/goldens/goldens.json``.  The replay test
(``tests/core/test_golden_trace.py``) then pins every later engine to
these recorded values bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

from tests.goldens.cases import all_cells, case_id, run_case

GOLDEN_PATH = Path(__file__).with_name("goldens.json")


def main() -> None:
    records = {}
    for strategy, op, case in all_cells():
        key = case_id(strategy, op, case)
        records[key] = run_case(strategy, op, case)
        print(f"recorded {key}")
    GOLDEN_PATH.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(records)} cases)")


if __name__ == "__main__":
    main()
