"""Tests for the striping layout."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.request import Extent
from repro.pfs import StripeLayout


class TestBasics:
    def test_stripe_and_server_of(self):
        lay = StripeLayout(stripe_size=100, n_servers=4)
        assert lay.stripe_of(0) == 0
        assert lay.stripe_of(99) == 0
        assert lay.stripe_of(100) == 1
        assert lay.server_of(0) == 0
        assert lay.server_of(450) == 0  # stripe 4 -> server 0

    def test_stripe_extent(self):
        lay = StripeLayout(100, 4)
        assert lay.stripe_extent(3) == Extent(300, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(0, 4)
        with pytest.raises(ValueError):
            StripeLayout(100, 0)
        lay = StripeLayout(100, 4)
        with pytest.raises(ValueError):
            lay.stripe_of(-1)

    def test_align(self):
        lay = StripeLayout(100, 4)
        assert lay.align_down(250) == 200
        assert lay.align_up(250) == 300
        assert lay.align_up(300) == 300


class TestSplitExtent:
    def test_within_one_stripe(self):
        lay = StripeLayout(100, 4)
        pieces = list(lay.split_extent(Extent(120, 50)))
        assert pieces == [(1, Extent(120, 50))]

    def test_spanning_stripes_round_robin(self):
        lay = StripeLayout(100, 3)
        pieces = list(lay.split_extent(Extent(50, 300)))
        assert pieces == [
            (0, Extent(50, 50)),
            (1, Extent(100, 100)),
            (2, Extent(200, 100)),
            (0, Extent(300, 50)),
        ]

    def test_empty_extent(self):
        lay = StripeLayout(100, 3)
        assert list(lay.split_extent(Extent(50, 0))) == []


class TestPerServerBytes:
    def test_matches_split(self):
        lay = StripeLayout(100, 3)
        ext = Extent(50, 1234)
        per = lay.per_server_bytes(ext)
        truth = np.zeros(3, dtype=np.int64)
        for s, piece in lay.split_extent(ext):
            truth[s] += piece.length
        assert (per == truth).all()
        assert per.sum() == ext.length

    def test_single_stripe(self):
        lay = StripeLayout(100, 4)
        per = lay.per_server_bytes(Extent(210, 30))
        assert per[2] == 30 and per.sum() == 30

    def test_servers_touched(self):
        lay = StripeLayout(100, 4)
        assert lay.servers_touched(Extent(0, 250)) == [0, 1, 2]

    @given(
        stripe=st.integers(1, 64),
        n=st.integers(1, 9),
        offset=st.integers(0, 1000),
        length=st.integers(0, 2000),
    )
    def test_per_server_bytes_matches_bruteforce(self, stripe, n, offset, length):
        lay = StripeLayout(stripe, n)
        ext = Extent(offset, length)
        per = lay.per_server_bytes(ext)
        truth = np.zeros(n, dtype=np.int64)
        for b in range(offset, offset + length):
            truth[(b // stripe) % n] += 1
        assert (per == truth).all()
