"""Tests for the sparse byte store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pfs import SparseFile


def test_write_read_roundtrip():
    f = SparseFile(chunk_size=16)
    data = np.arange(40, dtype=np.uint8)
    f.write(5, data)
    assert (f.read(5, 40) == data).all()
    assert f.size == 45


def test_unwritten_reads_zero():
    f = SparseFile(chunk_size=16)
    f.write(100, b"\xff\xff")
    got = f.read(90, 20)
    assert (got[:10] == 0).all()
    assert (got[10:12] == 255).all()
    assert (got[12:] == 0).all()


def test_overwrite():
    f = SparseFile(chunk_size=8)
    f.write(0, np.zeros(16, dtype=np.uint8))
    f.write(4, np.full(8, 7, dtype=np.uint8))
    got = f.read(0, 16)
    assert (got[4:12] == 7).all()
    assert (got[:4] == 0).all() and (got[12:] == 0).all()


def test_accepts_bytes_and_bytearray():
    f = SparseFile()
    f.write(0, b"abc")
    f.write(3, bytearray(b"def"))
    assert bytes(f.read(0, 6)) == b"abcdef"


def test_sparse_allocation():
    f = SparseFile(chunk_size=1024)
    f.write(10**9, b"x")  # a byte at 1 GB
    assert f.allocated_bytes == 1024
    assert f.size == 10**9 + 1


def test_zero_length_write_noop():
    f = SparseFile()
    f.write(50, b"")
    assert f.size == 0


def test_truncate():
    f = SparseFile()
    f.write(0, b"hello")
    f.truncate()
    assert f.size == 0
    assert (f.read(0, 5) == 0).all()


def test_validation():
    with pytest.raises(ValueError):
        SparseFile(chunk_size=0)
    f = SparseFile()
    with pytest.raises(ValueError):
        f.write(-1, b"x")
    with pytest.raises(ValueError):
        f.read(-1, 4)
    with pytest.raises(ValueError):
        f.read(0, -4)


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 500), st.binary(min_size=0, max_size=100)),
        max_size=12,
    ),
    chunk=st.integers(1, 64),
)
@settings(max_examples=80)
def test_matches_reference_bytearray(writes, chunk):
    """SparseFile behaves like a flat zero-initialized byte array."""
    f = SparseFile(chunk_size=chunk)
    ref = bytearray(1000)
    for off, data in writes:
        f.write(off, data)
        ref[off : off + len(data)] = data
    got = f.read(0, 700)
    assert bytes(got) == bytes(ref[:700])
