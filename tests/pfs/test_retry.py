"""PFS client retry policy and degraded-path timing."""

import pytest

from repro.core.request import Extent
from repro.pfs import RetryPolicy
from repro.pfs.filesystem import IOAbandonedError

from tests.helpers import make_stack


class TestPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(request_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_backoff_doubles_then_caps(self):
        p = RetryPolicy(backoff_base=0.01, backoff_cap=0.05)
        assert p.backoff(1) == pytest.approx(0.01)
        assert p.backoff(2) == pytest.approx(0.02)
        assert p.backoff(3) == pytest.approx(0.04)
        assert p.backoff(4) == pytest.approx(0.05)
        assert p.backoff(10) == pytest.approx(0.05)


def timed_write(stack, nbytes=4096, start=0.0):
    """Run one extent write from node 0, returning (t_start, t_end)."""
    times = {}

    def client(env):
        if start:
            yield env.timeout(start)
        times["start"] = env.now
        yield from stack.pfs.write_extent(
            stack.cluster.nodes[0], Extent(0, nbytes)
        )
        times["end"] = env.now

    stack.env.process(client(stack.env))
    stack.env.run()
    return times


class TestRetry:
    POLICY = RetryPolicy(
        request_timeout=30.0, backoff_base=0.01, backoff_cap=0.1,
        max_retries=20,
    )

    def test_neutral_without_faults(self):
        plain = make_stack(with_data=False)
        t_plain = timed_write(plain)
        retried = make_stack(with_data=False)
        retried.pfs.retry = self.POLICY
        t_retried = timed_write(retried)
        assert t_retried == t_plain
        assert retried.pfs.io_retries == 0

    def test_outage_window_absorbed(self):
        stack = make_stack(with_data=False)
        stack.pfs.retry = self.POLICY
        for server in stack.pfs.servers:
            server.begin_outage()

        def lift(env):
            yield env.timeout(0.5)
            for server in stack.pfs.servers:
                server.end_outage()

        stack.env.process(lift(stack.env))
        times = timed_write(stack)
        assert times["end"] >= 0.5  # could not finish inside the outage
        assert stack.pfs.io_retries > 0
        assert stack.pfs.io_abandons == 0

    def test_permanent_outage_abandons(self):
        stack = make_stack(with_data=False)
        stack.pfs.retry = RetryPolicy(
            request_timeout=30.0, backoff_base=0.01, backoff_cap=0.1,
            max_retries=3,
        )
        for server in stack.pfs.servers:
            server.begin_outage()
        raised = []

        def client(env):
            try:
                yield from stack.pfs.write_extent(
                    stack.cluster.nodes[0], Extent(0, 4096)
                )
            except IOAbandonedError as exc:
                raised.append(exc)

        stack.env.process(client(stack.env))
        stack.env.run()
        assert raised and raised[0].attempts == 4
        assert stack.pfs.io_abandons >= 1

    def test_without_policy_outage_fails_fast(self):
        from repro.pfs.server import ServerUnavailableError

        stack = make_stack(with_data=False)
        stack.pfs.servers[0].begin_outage()
        raised = []

        def client(env):
            try:
                yield from stack.pfs.write_extent(
                    stack.cluster.nodes[0], Extent(0, 4096)
                )
            except ServerUnavailableError as exc:
                raised.append(exc)

        stack.env.process(client(stack.env))
        stack.env.run()
        assert len(raised) == 1


class TestFailedClientNic:
    def test_failed_node_slows_storage_injection(self):
        """Storage traffic rides the client's NIC, so a fenced NIC slows
        PFS writes just like rank-to-rank messages."""
        healthy = make_stack(with_data=False)
        t_healthy = timed_write(healthy, nbytes=10**6)
        failed = make_stack(with_data=False)
        failed.cluster.nodes[0].fail(16.0)
        t_failed = timed_write(failed, nbytes=10**6)
        d_healthy = t_healthy["end"] - t_healthy["start"]
        d_failed = t_failed["end"] - t_failed["start"]
        assert d_failed > d_healthy
