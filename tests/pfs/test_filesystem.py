"""Tests for the parallel file system facade (timing + data integrity)."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, StorageSpec
from repro.core.request import AccessPattern, Extent, StridedSegment
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory


def make_pfs(
    servers=4,
    server_bandwidth=100.0,
    request_overhead=1.0,
    stripe_size=100,
    with_data=True,
    nic_bandwidth=1e6,
):
    env = Environment()
    spec = ClusterSpec(
        nodes=2,
        node=NodeSpec(
            cores=4,
            memory_bytes=10**9,
            memory_bandwidth=1e9,
            memory_channels=2,
            nic_bandwidth=nic_bandwidth,
            nic_latency=0.0,
        ),
        storage=StorageSpec(
            servers=servers,
            server_bandwidth=server_bandwidth,
            request_overhead=request_overhead,
            stripe_size=stripe_size,
        ),
    )
    cluster = Cluster(env, spec, RngFactory(0))
    store = SparseFile() if with_data else None
    pfs = ParallelFileSystem(env, spec.storage, datastore=store)
    return env, cluster, pfs


def run(env, gen):
    p = env.process(gen)
    env.run()
    return p.value


def test_write_then_read_extent_data():
    env, cluster, pfs = make_pfs()
    node = cluster.nodes[0]
    data = np.arange(250, dtype=np.uint8)

    def proc():
        yield from pfs.write_extent(node, Extent(30, 250), data)
        got = yield from pfs.read_extent(node, Extent(30, 250))
        return got

    got = run(env, proc())
    assert (got == data).all()
    assert pfs.bytes_written == 250
    assert pfs.bytes_read == 250


def test_extent_costs_one_request_per_touched_server():
    env, cluster, pfs = make_pfs(servers=4, request_overhead=1.0, stripe_size=100)
    node = cluster.nodes[0]

    def proc():
        yield from pfs.write_extent(node, Extent(0, 400))
        return env.now

    t = run(env, proc())
    # 4 servers in parallel: each 1 request overhead + 100/100 = 2s
    assert t == pytest.approx(2.0, rel=1e-3)
    for _, b, r in pfs.server_stats():
        assert b == 100 and r == 1


def test_noncontiguous_pattern_pays_per_block_overhead():
    env, cluster, pfs = make_pfs(servers=1, request_overhead=1.0, stripe_size=10**6)
    node = cluster.nodes[0]
    # 10 blocks of 10 bytes: 10 requests x 1s + 100/100 s
    pattern = AccessPattern((StridedSegment(0, 10, 100, 10),))

    def proc():
        yield from pfs.write_pattern(node, pattern)
        return env.now

    t = run(env, proc())
    assert t == pytest.approx(11.0, rel=1e-3)


def test_contiguous_beats_noncontiguous_same_bytes():
    """The core premise: merged large requests are faster than many small."""

    def time_noncontig():
        env, cluster, pfs = make_pfs(servers=2, request_overhead=0.5, with_data=False)
        node = cluster.nodes[0]
        pattern = AccessPattern((StridedSegment(0, 10, 50, 40),))

        def proc():
            yield from pfs.write_pattern(node, pattern)
            return env.now

        return run(env, proc())

    def time_contig():
        env, cluster, pfs = make_pfs(servers=2, request_overhead=0.5, with_data=False)
        node = cluster.nodes[0]

        def proc():
            yield from pfs.write_extent(node, Extent(0, 400))
            return env.now

        return run(env, proc())

    assert time_contig() < time_noncontig() / 3


def test_pattern_data_roundtrip():
    env, cluster, pfs = make_pfs()
    node = cluster.nodes[0]
    pattern = AccessPattern((StridedSegment(7, 5, 20, 6),))
    payload = (np.arange(pattern.nbytes) % 251).astype(np.uint8)

    def proc():
        yield from pfs.write_pattern(node, pattern, payload)
        got = yield from pfs.read_pattern(node, pattern)
        return got

    got = run(env, proc())
    assert (got == payload).all()
    # and the bytes landed at the right file offsets
    assert (pfs.datastore.read(7, 5) == payload[:5]).all()
    assert (pfs.datastore.read(27, 5) == payload[5:10]).all()


def test_server_queue_serializes_concurrent_clients():
    env, cluster, pfs = make_pfs(servers=1, request_overhead=0.0, stripe_size=10**6)
    times = []

    def client(node):
        yield from pfs.write_extent(node, Extent(0, 1000))
        times.append(env.now)

    env.process(client(cluster.nodes[0]))
    env.process(client(cluster.nodes[1]))
    env.run()
    # each write takes 10s of server time; they serialize
    assert sorted(times) == pytest.approx([10.0, 20.0], rel=1e-3)


def test_client_nic_can_be_bottleneck():
    env, cluster, pfs = make_pfs(
        servers=8, server_bandwidth=1e9, request_overhead=0.0, nic_bandwidth=100.0
    )
    node = cluster.nodes[0]

    def proc():
        yield from pfs.write_extent(node, Extent(0, 1000))
        return env.now

    t = run(env, proc())
    assert t == pytest.approx(10.0, rel=1e-3)  # 1000 B / 100 B/s NIC


def test_zero_length_ops_complete_instantly():
    env, cluster, pfs = make_pfs()
    node = cluster.nodes[0]

    def proc():
        yield from pfs.write_extent(node, Extent(10, 0))
        got = yield from pfs.read_pattern(node, AccessPattern(()))
        return (env.now, got)

    t, got = run(env, proc())
    assert t == 0.0
    assert got is not None and len(got) == 0


def test_payload_length_mismatch_rejected():
    env, cluster, pfs = make_pfs()
    node = cluster.nodes[0]

    def proc():
        yield from pfs.write_extent(node, Extent(0, 10), np.zeros(5, dtype=np.uint8))

    env.process(proc())
    with pytest.raises(Exception):
        env.run()


def test_estimate_extent_time_close_to_actual():
    env, cluster, pfs = make_pfs(servers=4)
    node = cluster.nodes[0]
    ext = Extent(0, 400)
    est = pfs.estimate_extent_time(node, ext)

    def proc():
        yield from pfs.write_extent(node, ext)
        return env.now

    t = run(env, proc())
    assert t == pytest.approx(est, rel=0.05)


def test_without_datastore_reads_return_none():
    env, cluster, pfs = make_pfs(with_data=False)
    node = cluster.nodes[0]

    def proc():
        got = yield from pfs.read_extent(node, Extent(0, 100))
        return got

    assert run(env, proc()) is None
