"""Unit tests for Resource and Container."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError


def make_user(env, res, log, tag, hold):
    def proc(env):
        req = res.request()
        yield req
        log.append(("acq", tag, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("rel", tag, env.now))

    return proc(env)


def test_resource_serializes_beyond_capacity():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(make_user(env, res, log, "a", 2))
    env.process(make_user(env, res, log, "b", 2))
    env.run()
    assert log == [("acq", "a", 0), ("rel", "a", 2), ("acq", "b", 2), ("rel", "b", 4)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []
    for tag in ["a", "b", "c"]:
        env.process(make_user(env, res, log, tag, 2))
    env.run()
    acquires = [(t, time) for kind, t, time in log if kind == "acq"]
    assert acquires == [("a", 0), ("b", 0), ("c", 2)]
    assert env.now == 4


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, tag, arrive):
        yield env.timeout(arrive)
        req = res.request()
        yield req
        log.append(tag)
        yield env.timeout(1)
        res.release(req)

    # all arrive while the first holds the resource
    env.process(user(env, "first", 0))
    for i in range(5):
        env.process(user(env, f"w{i}", 0.1 * (i + 1)))
    env.run()
    assert log == ["first", "w0", "w1", "w2", "w3", "w4"]


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def canceller(env):
        yield env.timeout(1)
        req = res.request()  # queued behind holder
        res.release(req)  # cancel without ever acquiring
        log.append("cancelled")

    env.process(holder(env))
    env.process(canceller(env))
    env.run()
    assert log == ["cancelled"]
    assert res.queue_length == 0


def test_resource_release_unknown_raises():
    env = Environment()
    res1 = Resource(env, capacity=1)
    res2 = Resource(env, capacity=1)
    req = res1.request()
    with pytest.raises(SimulationError):
        res2.release(req)


def test_resource_rejects_bad_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_utilization_tracks_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(make_user(env, res, log, "a", 4))
    env.run()
    env._now = 8.0  # half the horizon busy
    assert res.utilization() == pytest.approx(0.5)


def test_resource_peak_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    for tag in "abcd":
        env.process(make_user(env, res, log, tag, 1))
    env.run()
    assert res.peak_queue_length == 3


def test_container_get_blocks_until_put():
    env = Environment()
    box = Container(env, capacity=100, init=0)
    log = []

    def getter(env):
        yield box.get(10)
        log.append(("got", env.now))

    def putter(env):
        yield env.timeout(5)
        yield box.put(10)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [("got", 5)]
    assert box.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    box = Container(env, capacity=10, init=10)
    log = []

    def putter(env):
        yield box.put(5)
        log.append(("put", env.now))

    def getter(env):
        yield env.timeout(3)
        yield box.get(5)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [("put", 3)]
    assert box.level == 10


def test_container_fifo_no_overtaking():
    env = Environment()
    box = Container(env, capacity=100, init=0)
    log = []

    def getter(env, tag, amount, arrive):
        yield env.timeout(arrive)
        yield box.get(amount)
        log.append(tag)

    def putter(env):
        yield env.timeout(1)
        yield box.put(5)  # enough for "small" but "big" is ahead
        yield env.timeout(1)
        yield box.put(50)

    env.process(getter(env, "big", 40, 0.1))
    env.process(getter(env, "small", 5, 0.2))
    env.process(putter(env))
    env.run()
    assert log == ["big", "small"]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    box = Container(env, capacity=10)
    with pytest.raises(ValueError):
        box.get(-1)
    with pytest.raises(ValueError):
        box.put(-1)


def test_container_immediate_when_available():
    env = Environment()
    box = Container(env, capacity=10, init=10)

    def proc(env):
        yield box.get(4)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0
    assert box.level == 6
