"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.5]
    assert env.now == 2.5


def test_zero_timeout_runs_same_time():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0)
        order.append(tag)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == ["a", "b"]
    assert env.now == 0.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_ordered_by_time_then_sequence():
    env = Environment()
    order = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        order.append((env.now, tag))

    env.process(proc(env, "late", 5))
    env.process(proc(env, "early", 1))
    env.process(proc(env, "tie1", 3))
    env.process(proc(env, "tie2", 3))
    env.run()
    assert order == [(1, "early"), (3, "tie1"), (3, "tie2"), (5, "late")]


def test_process_join_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        return value * 2

    p = env.process(parent(env))
    env.run()
    assert p.value == 84
    assert env.now == 1


def test_join_already_finished_process():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env, ch):
        yield env.timeout(5)
        value = yield ch  # child finished long ago
        results.append((env.now, value))

    ch = env.process(child(env))
    env.process(parent(env, ch))
    env.run()
    assert results == [(5, "done")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    got = []

    def waiter(env, ev):
        value = yield ev
        got.append((env.now, value))

    def firer(env, ev):
        yield env.timeout(3)
        ev.succeed("payload")

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert got == [(3, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("kaput")

    env.process(bad(env))
    with pytest.raises(SimulationError, match="kaput"):
        env.run()


def test_joined_process_exception_propagates_to_parent_only():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise ValueError("kaput")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["kaput"]


def test_all_of_collects_values():
    env = Environment()

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        procs = [env.process(child(env, d, v)) for d, v in [(3, "a"), (1, "b")]]
        values = yield env.all_of(procs)
        return (env.now, values)

    p = env.process(parent(env))
    env.run()
    assert p.value == (3, ["a", "b"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def parent(env):
        values = yield env.all_of([])
        return (env.now, values)

    p = env.process(parent(env))
    env.run()
    assert p.value == (0.0, [])


def test_any_of_returns_first():
    env = Environment()

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        procs = [env.process(child(env, d, v)) for d, v in [(3, "slow"), (1, "fast")]]
        index, value = yield env.any_of(procs)
        return (env.now, index, value)

    p = env.process(parent(env))
    env.run()
    assert p.value == (1, 1, "fast")


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(4)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"
    assert env.now == 4


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()  # never triggered

    def waiter(env, ev):
        yield ev

    env.process(waiter(env, ev))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_interrupt_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 2, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    # initialization event is at t=0
    assert env.peek() == 0.0


def test_determinism_same_program_same_trace():
    def build_and_run():
        env = Environment()
        trace = []

        def proc(env, tag, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag, i))

        for tag, delay in [("x", 1.0), ("y", 1.5), ("z", 1.0)]:
            env.process(proc(env, tag, delay))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


# ---------------------------------------------------------------------------
# pooled-sleep waiter fast path
# ---------------------------------------------------------------------------
def test_interrupt_during_pooled_sleep():
    """Interrupting a sleeper detaches the waiter; the sleep fires inert."""
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.sleep(100)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))
        # the process must remain fully usable after the interrupt
        yield env.sleep(1)
        log.append(("resumed", env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # the detached 100s sleep fired at t=100 without resuming anyone
    assert env.now == 100
    assert log == [("interrupted", 2, "wake up"), ("resumed", 3)]


def test_non_event_yield_after_sleep_is_error():
    """The sleep-resume fast path still rejects non-event yields."""
    env = Environment()

    def bad(env):
        yield env.sleep(1)
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_exception_after_sleep_propagates_to_joiner():
    env = Environment()

    def crasher(env):
        yield env.sleep(1)
        raise RuntimeError("boom")

    def joiner(env, p):
        try:
            yield p
        except RuntimeError as exc:
            return str(exc)

    p = env.process(crasher(env))
    j = env.process(joiner(env, p))
    env.run()
    assert j.value == "boom"


def test_exception_after_sleep_without_joiner_crashes_run():
    env = Environment()

    def crasher(env):
        yield env.sleep(1)
        raise RuntimeError("boom")

    env.process(crasher(env))
    with pytest.raises(SimulationError, match="crashed"):
        env.run()


def test_sleep_then_join_finished_process():
    """A processed event yielded right after a sleep resumes immediately."""
    env = Environment()

    def quick(env):
        yield env.timeout(1)
        return "done"

    def waiter(env, p):
        yield env.sleep(5)  # p finishes (and is processed) meanwhile
        got = yield p
        return (env.now, got)

    p = env.process(quick(env))
    w = env.process(waiter(env, p))
    env.run()
    assert w.value == (5.0, "done")
