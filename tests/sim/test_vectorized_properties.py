"""Property-based per-rank vs vectorized equivalence (seeded hypothesis).

Satellite of the differential harness: instead of the pinned golden
matrix, hypothesis draws whole configurations — workload shape, rank
and node counts, memory regime, placement policy, shuffle granularity,
intra-node aggregation, op — and every drawn cell must satisfy the
equivalence contract: identical I/O extents and offsets, identical
shuffle byte split, a balanced lease ledger, and the same
``degraded_tier`` decision on both paths.

``derandomize=True`` keeps CI deterministic; the example budget (200)
is the issue's floor for generated configurations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCIOConfig
from repro.core.request import AccessPattern, StridedSegment

from tests.helpers import assert_stats_equivalent, run_differential

KIB = 1024


@st.composite
def workloads(draw):
    """A small cluster shape plus per-rank file views."""
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    cores = draw(st.integers(min_value=1, max_value=4))
    n_ranks = draw(st.integers(min_value=1, max_value=n_nodes * cores))
    shape = draw(st.sampled_from(["serial", "interleaved", "sparse"]))
    block = draw(st.sampled_from([96, 256, 700, 2048]))
    if shape == "serial":
        gap = draw(st.integers(min_value=0, max_value=64))
        patterns, pos = [], 0
        for r in range(n_ranks):
            length = block + 17 * (r % 5)
            patterns.append(AccessPattern.contiguous(pos, length))
            pos += length + gap
    elif shape == "interleaved":
        count = draw(st.integers(min_value=2, max_value=6))
        stride = block * n_ranks
        patterns = [
            AccessPattern((StridedSegment(r * block, block, stride, count),))
            for r in range(n_ranks)
        ]
    else:
        # sparse: some ranks have no data at all
        keep_mod = draw(st.integers(min_value=2, max_value=3))
        patterns = [
            AccessPattern.contiguous(r * 2 * block, block)
            if r % keep_mod == 0
            else AccessPattern(())
            for r in range(n_ranks)
        ]
    return n_ranks, n_nodes, cores, patterns


@st.composite
def configs(draw):
    """An MCIOConfig spanning policies, buffers, and execution knobs."""
    msg_group = draw(st.sampled_from([2 * KIB, 16 * KIB, 1 << 30]))
    return dict(
        msg_group=msg_group,
        # the config forbids msg_ind > msg_group
        msg_ind=min(draw(st.sampled_from([512, 2 * KIB, 8 * KIB])), msg_group),
        cb_buffer_size=draw(st.sampled_from([256, 1024, 8 * KIB])),
        mem_min=0,
        nah=draw(st.integers(min_value=1, max_value=3)),
        min_buffer=1,
        adaptive_buffer=draw(st.booleans()),
        placement_policy=draw(st.sampled_from(["remerge", "hybrid"])),
        shuffle_granularity=draw(
            st.sampled_from(["round", "batched", "domain"])
        ),
        intra_node_aggregation=draw(st.booleans()),
        failover=draw(st.booleans()),
    )


@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    workload=workloads(),
    config=configs(),
    memory_regime=st.sampled_from(["rich", "tight", "skewed"]),
    op=st.sampled_from(["write", "read"]),
)
def test_vectorized_matches_per_rank(workload, config, memory_regime, op):
    n_ranks, n_nodes, cores, patterns = workload
    memory = {
        "rich": None,
        "tight": tuple(3 * KIB for _ in range(n_nodes)),
        "skewed": tuple(
            10**9 if n % 2 == 0 else 2 * KIB for n in range(n_nodes)
        ),
    }[memory_regime]

    ref, vec, ref_aud, vec_aud = run_differential(
        patterns,
        MCIOConfig(**config),
        op=op,
        n_ranks=n_ranks,
        n_nodes=n_nodes,
        cores=cores,
        memory_availability=memory,
    )

    # stats contract: every deterministic accounting field agrees —
    # including offsets/extents (via total_bytes + the audit records),
    # shuffle byte split, lease counters, and the degraded_tier decision
    assert_stats_equivalent(ref, vec)

    # the vectorized path only falls back when the plan demands it
    # (lender-backed domains under "hybrid", or the independent tier)
    if vec.execution_mode == "vectorized":
        assert vec.vectorized_refusals == 0
    else:
        assert vec.vectorized_refusals == 1
        assert vec.extra["vectorized_refusal"] in (
            "lender-domains",
            "independent-tier",
        )

    # byte-conservation audit on both paths, with identical records
    active = [p for p in patterns if not p.empty]
    if active:
        ref_rec = ref_aud.verify(patterns)
        vec_rec = vec_aud.verify(patterns)
        assert ref_rec.extents == vec_rec.extents
        assert ref_rec.final_attempt_shuffle == vec_rec.final_attempt_shuffle
        assert ref_rec.attempts == vec_rec.attempts

    # lease-ledger balance on the vectorized stack (hygiene even when
    # the run was refused and served per-rank)
    assert vec_aud is not None
    assert not vec_aud._ledger_violations()
