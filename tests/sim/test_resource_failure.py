"""Resource failure paths: failed/cancelled waiters must not leak slots."""

import pytest

from repro.sim import Environment, Resource, SimulationError


class TestFailedWaiter:
    def test_failed_queued_request_raises_into_waiter(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def waiter(env):
            req = res.request()
            try:
                yield req
            except RuntimeError as exc:
                log.append(("failed", str(exc), env.now))

        def breaker(env):
            yield env.timeout(1)
            res.fail_waiters(RuntimeError("outage"))

        env.process(holder(env))
        env.process(waiter(env))
        env.process(breaker(env))
        env.run()
        assert log == [("failed", "outage", 1)]

    def test_failed_waiter_does_not_consume_slot(self):
        """After the holder releases, the failed waiter must be skipped
        and the slot granted to the next live waiter."""
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def doomed(env):
            req = res.request()
            try:
                yield req
            except RuntimeError:
                pass

        def survivor(env):
            yield env.timeout(2)  # queue behind the doomed waiter
            req = res.request()
            yield req
            log.append(("acq", env.now))
            res.release(req)

        def breaker(env):
            yield env.timeout(1)
            res.fail_waiters(RuntimeError("outage"))

        env.process(holder(env))
        env.process(doomed(env))
        env.process(survivor(env))
        env.process(breaker(env))
        env.run()
        assert log == [("acq", 5)]
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_release_of_failed_request_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def waiter(env):
            req = res.request()
            try:
                yield req
            except RuntimeError:
                pass
            finally:
                res.release(req)  # must be tolerated

        def breaker(env):
            yield env.timeout(1)
            res.fail_waiters(RuntimeError("outage"))

        env.process(holder(env))
        env.process(waiter(env))
        env.process(breaker(env))
        env.run()
        assert res.in_use == 0

    def test_release_of_unknown_request_still_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SimulationError):
                res.release(req)

        env.process(proc(env))
        env.run()

    def test_fail_waiters_returns_count_and_spares_holders(self):
        env = Environment()
        res = Resource(env, capacity=1)
        counts = {}

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            counts["holder_done"] = env.now

        def waiter(env):
            req = res.request()
            try:
                yield req
            except RuntimeError:
                pass

        def breaker(env):
            yield env.timeout(1)
            counts["failed"] = res.fail_waiters(RuntimeError("outage"))

        env.process(holder(env))
        env.process(waiter(env))
        env.process(waiter(env))
        env.process(breaker(env))
        env.run()
        assert counts["failed"] == 2
        assert counts["holder_done"] == 5

    def test_fail_waiters_empty_queue_is_zero(self):
        env = Environment()
        res = Resource(env, capacity=1)
        assert res.fail_waiters(RuntimeError("outage")) == 0
