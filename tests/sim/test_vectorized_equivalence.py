"""Differential harness: per-rank reference vs node-level vectorized driver.

The equivalence contract (DESIGN.md §11): for fault-free, lease-free,
metadata-only collectives the vectorized driver must reproduce every
deterministic accounting field of the per-rank reference — bytes,
rounds, aggregator placements, shuffle locality split, tiers, groups —
and must feed the byte-conservation auditor an identical
attempt/extent/shuffle record.  Only ``elapsed`` (pinned separately by
the vectorized goldens), the plan-cache counters, and the
execution-mode fields themselves may differ.

The matrix here reuses the golden-trace cluster cases (uniform memory,
skewed pressure with remerges, tiny paged memory) so the differential
coverage tracks the same regimes the bit-exact goldens pin, plus the
fallback cells: a vectorized engine refused by the data plane must
reproduce the recorded per-rank goldens *bit for bit*, timing included.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import MCIOConfig

from tests.goldens.cases import (
    CLUSTER_CASES,
    build_patterns,
    case_id,
    run_case,
)
from tests.helpers import assert_stats_equivalent, run_differential

GOLDENS = pathlib.Path(__file__).parent.parent / "goldens" / "goldens.json"

CASES = {c.name: c for c in CLUSTER_CASES}


def case_config(case, **overrides) -> MCIOConfig:
    """The MCIO configuration the golden matrix pins for `case`."""
    kwargs = dict(
        msg_group=16 * 1024,
        msg_ind=2 * 1024,
        mem_min=0,
        nah=2,
        cb_buffer_size=case.cb_buffer_size,
        min_buffer=1,
        shuffle_granularity=case.granularity,
    )
    kwargs.update(overrides)
    return MCIOConfig(**kwargs)


def run_case_differential(case, op, **config_overrides):
    patterns = build_patterns(case)
    return run_differential(
        patterns,
        case_config(case, **config_overrides),
        op=op,
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        memory_availability=case.memory_availability,
        stripe_size=case.stripe_size,
    ), patterns


@pytest.mark.parametrize("case_name", sorted(CASES))
@pytest.mark.parametrize("op", ["write", "read"])
def test_stats_equivalent_on_golden_matrix(case_name, op):
    """Every golden cluster case: field-exact CollectiveStats equality."""
    case = CASES[case_name]
    (ref, vec, _, _), _ = run_case_differential(case, op)
    assert ref.execution_mode == "per-rank"
    assert vec.execution_mode == "vectorized"
    assert vec.vectorized_refusals == 0
    assert_stats_equivalent(ref, vec)


@pytest.mark.parametrize("case_name", sorted(CASES))
@pytest.mark.parametrize("op", ["write", "read"])
def test_audit_records_equivalent(case_name, op):
    """Both paths feed the conservation auditor the same record."""
    case = CASES[case_name]
    (ref, vec, ref_aud, vec_aud), patterns = run_case_differential(case, op)
    ref_rec = ref_aud.verify(patterns)
    vec_rec = vec_aud.verify(patterns)
    assert ref_rec.attempts == vec_rec.attempts == 1
    assert ref_rec.extents == vec_rec.extents
    assert ref_rec.final_attempt_shuffle == vec_rec.final_attempt_shuffle


@pytest.mark.parametrize("op", ["write", "read"])
def test_plan_cache_hit_parity(op):
    """Back-to-back ops: the second hits the plan cache in both modes."""
    case = CASES["uniform"]
    (ref, vec, _, _), _ = run_case_differential(case, op, plan_cache=True)
    assert_stats_equivalent(ref, vec)


@pytest.mark.parametrize("case_name", sorted(CASES))
@pytest.mark.parametrize("op", ["write", "read"])
def test_data_plane_fallback_is_bit_identical_to_goldens(case_name, op):
    """A vectorized engine refused by the data plane replays the golden.

    With a datastore attached the driver must fall back to the per-rank
    path — and that fallback has to reproduce the recorded per-rank
    golden exactly: simulated clock, datastore image, and every stats
    field.  The only permitted delta is the refusal annotation in
    ``extra``.
    """
    import hashlib

    import numpy as np

    from repro.core import MemoryConsciousCollectiveIO
    from repro.core.vectorized import run_vectorized_collective

    from tests.goldens.cases import (
        _prefill,
        make_engine,
        stats_to_jsonable,
    )
    from tests.helpers import make_stack, rank_payload

    case = CASES[case_name]
    stored = json.loads(GOLDENS.read_text())[case_id("mcio", op, case)]
    patterns = build_patterns(case)
    stack = make_stack(
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        stripe_size=case.stripe_size,
    )
    if case.memory_availability is not None:
        stack.cluster.set_memory_availability(case.memory_availability)
    engine = make_engine(
        "mcio", stack, case, mcio_overrides={"execution_mode": "vectorized"}
    )
    assert isinstance(engine, MemoryConsciousCollectiveIO)
    end = max(p.end for p in patterns if not p.empty)
    if op == "write":
        payloads = [
            rank_payload(r, patterns[r].nbytes).copy()
            for r in range(case.n_ranks)
        ]
    else:
        _prefill(stack.pfs.datastore, end)
        payloads = None

    stats = run_vectorized_collective(engine, patterns, op, payloads=payloads)
    assert stats.execution_mode == "per-rank"
    assert stats.vectorized_refusals == 1

    image = np.asarray(stack.pfs.datastore.read(0, end), dtype=np.uint8)
    assert float(stack.env.now).hex() == stored["final_now_hex"]
    assert hashlib.sha256(image.tobytes()).hexdigest() == stored["datastore_sha256"]
    got = stats_to_jsonable(engine.history[0])
    want = dict(stored["stats"])
    got_extra, want_extra = got.pop("extra"), want.pop("extra")
    assert got == want
    assert got_extra.pop("vectorized_refusal") == "data-plane"
    assert got_extra == want_extra


def test_per_rank_mode_never_invokes_driver():
    """execution_mode="per-rank" (the default) is untouched by this PR."""
    cfg = case_config(CASES["uniform"])
    assert cfg.execution_mode == "per-rank"
