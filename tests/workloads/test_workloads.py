"""Tests for workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    CollPerfWorkload,
    IORWorkload,
    SkewedWorkload,
    SmallRequestWorkload,
)


def check_disjoint_cover(patterns, total_bytes):
    """Patterns pairwise disjoint and together covering total_bytes."""
    covered = 0
    intervals = []
    for p in patterns:
        covered += p.nbytes
        for off, ln, _ in p.iter_mapped_extents():
            intervals.append((off, off + ln))
    assert covered == total_bytes
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, "workload blocks overlap"
    assert intervals[0][0] == 0
    assert intervals[-1][1] == total_bytes


class TestCollPerf:
    def test_paper_configuration(self):
        w = CollPerfWorkload.paper()
        assert w.array_shape == (2048, 2048, 2048)
        assert w.n_ranks == 120
        assert w.total_bytes == 32 * 1024**3  # the paper's 32 GB file

    def test_patterns_tile_array(self):
        w = CollPerfWorkload(array_shape=(8, 8, 8), n_ranks=8, elem_size=2)
        check_disjoint_cover(w.patterns(), w.total_bytes)

    def test_nonuniform_rank_count(self):
        w = CollPerfWorkload(array_shape=(12, 10, 8), n_ranks=6, elem_size=1)
        check_disjoint_cover(w.patterns(), w.total_bytes)

    def test_scaled_shrinks(self):
        w = CollPerfWorkload.paper().scaled(64)
        assert w.array_shape == (32, 32, 32)
        assert w.n_ranks == 120

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            CollPerfWorkload.paper().scaled(0)

    def test_paper_scale_patterns_are_compact(self):
        """The 32 GB pattern must be representable without expansion."""
        w = CollPerfWorkload.paper()
        p = w.pattern(0)
        assert p.nbytes > 0
        assert p.segment_count < 1000  # strided segments, not blocks

    def test_validation(self):
        with pytest.raises(ValueError):
            CollPerfWorkload(n_ranks=0)
        with pytest.raises(ValueError):
            CollPerfWorkload(elem_size=0)
        with pytest.raises(ValueError):
            CollPerfWorkload(array_shape=(0, 2, 2))

    def test_description(self):
        assert "120 procs" in CollPerfWorkload.paper().description

    @given(
        shape=st.tuples(st.integers(2, 10), st.integers(2, 10), st.integers(2, 10)),
        n=st.integers(1, 8),
        elem=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_tiling_property(self, shape, n, elem):
        try:
            w = CollPerfWorkload(array_shape=shape, n_ranks=n, elem_size=elem)
            patterns = w.patterns()
        except ValueError:
            return  # grid finer than the array
        check_disjoint_cover(patterns, w.total_bytes)


class TestIOR:
    def test_interleaved_geometry(self):
        w = IORWorkload(n_ranks=4, block_size=100, segments=3)
        p = w.pattern(1)
        offsets = [off for off, _, _ in p.iter_mapped_extents()]
        assert offsets == [100, 500, 900]

    def test_patterns_tile_file(self):
        w = IORWorkload(n_ranks=4, block_size=64, segments=3)
        check_disjoint_cover(w.patterns(), w.total_bytes)

    def test_random_layout_tiles_too(self):
        w = IORWorkload(n_ranks=5, block_size=32, segments=4, layout="random", seed=3)
        check_disjoint_cover(w.patterns(), w.total_bytes)

    def test_random_layout_deterministic(self):
        a = IORWorkload(n_ranks=5, block_size=32, segments=4, layout="random", seed=3)
        b = IORWorkload(n_ranks=5, block_size=32, segments=4, layout="random", seed=3)
        assert a.patterns() == b.patterns()

    def test_random_layout_differs_from_interleaved(self):
        rand = IORWorkload(n_ranks=8, block_size=32, segments=4,
                           layout="random", seed=1)
        inter = IORWorkload(n_ranks=8, block_size=32, segments=4)
        assert rand.patterns() != inter.patterns()

    def test_paper_bytes_per_rank(self):
        w = IORWorkload.paper()
        assert w.bytes_per_rank == 32 * 1024**2  # 32 MB per process

    def test_scaled(self):
        w = IORWorkload(n_ranks=4, block_size=1024, segments=2).scaled(4)
        assert w.block_size == 256
        assert w.segments == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            IORWorkload(n_ranks=0)
        with pytest.raises(ValueError):
            IORWorkload(segments=0)
        with pytest.raises(ValueError):
            IORWorkload(layout="bogus")  # type: ignore[arg-type]
        w = IORWorkload(n_ranks=2)
        with pytest.raises(ValueError):
            w.pattern(5)

    @given(
        n=st.integers(1, 10),
        block=st.integers(1, 256),
        segments=st.integers(1, 6),
        layout=st.sampled_from(["interleaved", "random"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_tiling_property(self, n, block, segments, layout):
        w = IORWorkload(n_ranks=n, block_size=block, segments=segments,
                        layout=layout, seed=9)
        check_disjoint_cover(w.patterns(), w.total_bytes)


class TestSynthetic:
    def test_small_requests_tile(self):
        w = SmallRequestWorkload(n_ranks=4, request_size=16, requests_per_rank=8)
        check_disjoint_cover(w.patterns(), w.total_bytes)

    def test_small_requests_block_count(self):
        w = SmallRequestWorkload(n_ranks=4, request_size=16, requests_per_rank=8)
        assert w.pattern(0).block_count == 8

    def test_skewed_sizes_decay(self):
        w = SkewedWorkload(n_ranks=5, max_bytes=1000, min_bytes=10, decay=0.5)
        sizes = w.sizes()
        assert sizes[0] == 1000
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 10 for s in sizes)

    def test_skewed_patterns_serial(self):
        w = SkewedWorkload(n_ranks=4, max_bytes=100, min_bytes=10)
        check_disjoint_cover(w.patterns(), w.total_bytes)
        patterns = w.patterns()
        for a, b in zip(patterns, patterns[1:]):
            assert a.end == b.start

    def test_validation(self):
        with pytest.raises(ValueError):
            SmallRequestWorkload(n_ranks=0)
        with pytest.raises(ValueError):
            SkewedWorkload(max_bytes=5, min_bytes=10)
        with pytest.raises(ValueError):
            SkewedWorkload(decay=0)
