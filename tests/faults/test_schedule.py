"""Unit tests for FaultEvent / FaultSchedule."""

import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultSchedule


class TestFaultEvent:
    def test_windowed_event_end(self):
        ev = FaultEvent(time=1.0, kind="server_outage", target=0, duration=0.5)
        assert ev.end == 1.5

    def test_permanent_failure_has_no_end(self):
        ev = FaultEvent(time=1.0, kind="node_failure", target=0)
        assert ev.duration is None
        assert ev.end is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="disk_fire", target=0, duration=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind="node_failure", target=0)

    def test_only_node_failure_may_be_permanent(self):
        for kind in FAULT_KINDS:
            if kind == "node_failure":
                FaultEvent(time=0.0, kind=kind, target=0, duration=None)
            else:
                with pytest.raises(ValueError):
                    FaultEvent(time=0.0, kind=kind, target=0, duration=None)

    def test_slowdown_magnitude_floor(self):
        with pytest.raises(ValueError):
            FaultEvent(
                time=0.0, kind="server_slowdown", target=0,
                duration=1.0, magnitude=0.5,
            )
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="node_failure", target=0, magnitude=0.9)

    def test_shock_magnitude_is_bytes(self):
        with pytest.raises(ValueError):
            FaultEvent(
                time=0.0, kind="memory_shock", target=0,
                duration=1.0, magnitude=0.25,
            )

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="server_outage", target=0, duration=0.0)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule(
            [
                FaultEvent(time=2.0, kind="node_failure", target=0),
                FaultEvent(time=0.5, kind="server_outage", target=1, duration=1.0),
                FaultEvent(time=1.0, kind="memory_shock", target=1,
                           duration=1.0, magnitude=1024),
            ]
        )
        assert [e.time for e in sched] == [0.5, 1.0, 2.0]
        assert len(sched) == 3

    def test_count_by_kind(self):
        sched = FaultSchedule(
            [
                FaultEvent(time=0.0, kind="node_failure", target=0),
                FaultEvent(time=1.0, kind="node_failure", target=1),
                FaultEvent(time=0.5, kind="server_outage", target=0, duration=1.0),
            ]
        )
        assert sched.count("node_failure") == 2
        assert sched.count("server_outage") == 1
        assert sched.count("memory_shock") == 0

    def test_merged_keeps_order(self):
        a = FaultSchedule([FaultEvent(time=2.0, kind="node_failure", target=0)])
        b = [FaultEvent(time=1.0, kind="server_outage", target=0, duration=0.1)]
        merged = a.merged(b)
        assert len(merged) == 2
        assert [e.time for e in merged] == [1.0, 2.0]
        assert len(a) == 1  # original untouched


class TestGenerate:
    KW = dict(
        horizon=10.0,
        n_servers=4,
        n_nodes=8,
        server_slowdown_rate=0.4,
        server_outage_rate=0.3,
        memory_shock_rate=0.5,
        node_failure_rate=0.2,
    )

    def test_same_seed_identical(self):
        a = FaultSchedule.generate(7, **self.KW)
        b = FaultSchedule.generate(7, **self.KW)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seed_differs(self):
        a = FaultSchedule.generate(7, **self.KW)
        b = FaultSchedule.generate(8, **self.KW)
        assert a.events != b.events

    def test_kind_streams_independent(self):
        """Adding one kind must not perturb another kind's draws."""
        full = FaultSchedule.generate(7, **self.KW)
        only_shocks = FaultSchedule.generate(
            7, horizon=10.0, n_servers=4, n_nodes=8, memory_shock_rate=0.5
        )
        shocks = [e for e in full if e.kind == "memory_shock"]
        assert tuple(shocks) == only_shocks.events

    def test_zero_rates_empty(self):
        sched = FaultSchedule.generate(7, horizon=10.0, n_servers=4, n_nodes=8)
        assert len(sched) == 0

    def test_times_and_targets_in_range(self):
        sched = FaultSchedule.generate(7, **self.KW)
        for ev in sched:
            assert 0.0 <= ev.time < 10.0
            if ev.kind.startswith("server"):
                assert 0 <= ev.target < 4
            else:
                assert 0 <= ev.target < 8

    def test_spare_nodes_exempt(self):
        sched = FaultSchedule.generate(
            7,
            horizon=50.0,
            n_servers=2,
            n_nodes=3,
            memory_shock_rate=1.0,
            node_failure_rate=1.0,
            spare_nodes=(2,),
        )
        node_faults = [e for e in sched if not e.kind.startswith("server")]
        assert node_faults, "expected node faults at these rates"
        assert all(e.target != 2 for e in node_faults)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(7, horizon=0.0, n_servers=1, n_nodes=1)
