"""Integration tests: FaultInjector against a live platform."""

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.pfs.server import ServerUnavailableError

from tests.helpers import make_stack


def make_injector(stack, events):
    return FaultInjector(
        stack.env, stack.cluster, stack.pfs, FaultSchedule(events)
    )


class TestWindowedFaults:
    def test_server_slowdown_applied_and_reverted(self):
        stack = make_stack()
        server = stack.pfs.servers[1]
        inj = make_injector(
            stack,
            [FaultEvent(time=1.0, kind="server_slowdown", target=1,
                        duration=2.0, magnitude=4.0)],
        )
        inj.start()
        stack.env.run(until=1.5)
        assert server.degradation == 4.0
        stack.env.run(until=3.5)
        assert server.degradation == 1.0
        assert inj.applied == {"server_slowdown": 1}
        assert inj.active == []

    def test_overlapping_slowdowns_compose(self):
        stack = make_stack()
        server = stack.pfs.servers[0]
        inj = make_injector(
            stack,
            [
                FaultEvent(time=1.0, kind="server_slowdown", target=0,
                           duration=4.0, magnitude=2.0),
                FaultEvent(time=2.0, kind="server_slowdown", target=0,
                           duration=1.0, magnitude=3.0),
            ],
        )
        inj.start()
        stack.env.run(until=2.5)
        assert server.degradation == pytest.approx(6.0)
        stack.env.run(until=3.5)
        assert server.degradation == pytest.approx(2.0)
        stack.env.run(until=5.5)
        assert server.degradation == pytest.approx(1.0)

    def test_server_outage_window(self):
        stack = make_stack()
        server = stack.pfs.servers[2]
        inj = make_injector(
            stack,
            [FaultEvent(time=1.0, kind="server_outage", target=2, duration=1.0)],
        )
        inj.start()
        stack.env.run(until=1.5)
        assert server.available is False
        stack.env.run(until=2.5)
        assert server.available is True

    def test_requests_rejected_during_outage(self):
        stack = make_stack()
        server = stack.pfs.servers[0]
        inj = make_injector(
            stack,
            [FaultEvent(time=0.0, kind="server_outage", target=0, duration=5.0)],
        )
        inj.start()
        failures = []

        def client(env):
            yield env.timeout(1.0)
            try:
                yield from server.serve(1024, 1)
            except ServerUnavailableError as exc:
                failures.append(exc)

        stack.env.process(client(stack.env))
        stack.env.run()
        assert len(failures) == 1
        assert server.outage_rejections >= 1

    def test_memory_shock_applied_and_released(self):
        stack = make_stack()
        node = stack.cluster.nodes[1]
        base = node.memory.available
        inj = make_injector(
            stack,
            [FaultEvent(time=1.0, kind="memory_shock", target=1,
                        duration=2.0, magnitude=float(1 << 20))],
        )
        inj.start()
        stack.env.run(until=1.5)
        assert node.memory.available == base - (1 << 20)
        assert node.memory.shock_bytes == 1 << 20
        stack.env.run(until=3.5)
        assert node.memory.available == base
        assert node.memory.shock_bytes == 0

    def test_transient_node_failure_recovers(self):
        stack = make_stack()
        node = stack.cluster.nodes[0]
        inj = make_injector(
            stack,
            [FaultEvent(time=1.0, kind="node_failure", target=0,
                        duration=2.0, magnitude=8.0)],
        )
        inj.start()
        stack.env.run(until=1.5)
        assert (node.failed, node.failure_slowdown) == (True, 8.0)
        stack.env.run(until=3.5)
        assert (node.failed, node.failure_slowdown) == (False, 1.0)

    def test_overlapping_node_failures_recover_at_last_window(self):
        stack = make_stack()
        node = stack.cluster.nodes[0]
        inj = make_injector(
            stack,
            [
                FaultEvent(time=1.0, kind="node_failure", target=0,
                           duration=1.0, magnitude=8.0),
                FaultEvent(time=1.5, kind="node_failure", target=0,
                           duration=2.0, magnitude=8.0),
            ],
        )
        inj.start()
        stack.env.run(until=2.2)  # first window closed, second still open
        assert node.failed is True
        stack.env.run(until=4.0)
        assert node.failed is False


class TestPermanentAndStop:
    def test_permanent_node_failure_persists(self):
        stack = make_stack()
        node = stack.cluster.nodes[1]
        inj = make_injector(
            stack,
            [FaultEvent(time=0.5, kind="node_failure", target=1, magnitude=16.0)],
        )
        inj.start()
        stack.env.run(until=100.0)
        assert node.failed is True
        assert node.failure_slowdown == 16.0

    def test_stop_restores_active_windowed_faults(self):
        stack = make_stack()
        server = stack.pfs.servers[0]
        node = stack.cluster.nodes[0]
        base = node.memory.available
        inj = make_injector(
            stack,
            [
                FaultEvent(time=0.5, kind="server_outage", target=0,
                           duration=100.0),
                FaultEvent(time=0.5, kind="memory_shock", target=0,
                           duration=100.0, magnitude=float(1 << 20)),
            ],
        )
        inj.start()
        stack.env.run(until=1.0)
        assert server.available is False
        assert node.memory.available < base
        inj.stop()
        assert server.available is True
        assert node.memory.available == base
        assert inj.active == []

    def test_stop_halts_future_events(self):
        stack = make_stack()
        inj = make_injector(
            stack,
            [FaultEvent(time=50.0, kind="node_failure", target=0)],
        )
        inj.start()
        stack.env.run(until=1.0)
        inj.stop()
        stack.env.run()
        assert inj.applied == {}
        assert stack.cluster.nodes[0].failed is False

    def test_double_start_rejected(self):
        stack = make_stack()
        inj = make_injector(
            stack, [FaultEvent(time=1.0, kind="node_failure", target=0)]
        )
        inj.start()
        with pytest.raises(RuntimeError):
            inj.start()


class TestValidation:
    def test_bad_server_target_rejected(self):
        stack = make_stack(servers=2)
        with pytest.raises(ValueError):
            make_injector(
                stack,
                [FaultEvent(time=0.0, kind="server_outage", target=2,
                            duration=1.0)],
            )

    def test_bad_node_target_rejected(self):
        stack = make_stack(n_nodes=3)
        with pytest.raises(ValueError):
            make_injector(
                stack, [FaultEvent(time=0.0, kind="node_failure", target=3)]
            )

    def test_server_fault_requires_pfs(self):
        stack = make_stack()
        with pytest.raises(ValueError):
            FaultInjector(
                stack.env,
                stack.cluster,
                None,
                FaultSchedule(
                    [FaultEvent(time=0.0, kind="server_outage", target=0,
                                duration=1.0)]
                ),
            )
