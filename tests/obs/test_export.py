"""Exporter schema tests on a real, fault-injected MCIO run.

The fixture runs the ``pressure`` golden cluster under a deterministic
fault storm (a server slowdown and a memory shock) with a tracer
installed, then validates the exported Chrome ``trace_event`` document
the way the viewers do: required fields per phase type, monotonic
timestamps per ``(pid, tid)`` track, balanced and properly nested B/E
pairs, non-negative durations.
"""

import json

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.obs import PID_PFS, Tracer, to_chrome, write_chrome, write_jsonl
from repro.obs.tracer import TID_NODE

from tests.goldens.cases import CLUSTER_CASES, build_patterns, make_engine
from tests.helpers import make_stack, rank_payload

PRESSURE = CLUSTER_CASES[1]


@pytest.fixture(scope="module")
def traced_run():
    """One fault-injected MCIO collective write, traced end to end."""
    case = PRESSURE
    patterns = build_patterns(case)
    stack = make_stack(
        n_ranks=case.n_ranks,
        n_nodes=case.n_nodes,
        cores=case.cores,
        stripe_size=case.stripe_size,
    )
    tracer = Tracer().install(stack.env)
    stack.cluster.set_memory_availability(case.memory_availability)
    engine = make_engine(
        "mcio", stack, case, mcio_overrides={"plan_cache": True}
    )
    injector = FaultInjector(
        stack.env,
        stack.cluster,
        stack.pfs,
        FaultSchedule(
            [
                FaultEvent(
                    time=0.001, kind="server_slowdown", target=0,
                    duration=0.4, magnitude=4.0,
                ),
                FaultEvent(
                    time=0.002, kind="memory_shock", target=1,
                    duration=0.3, magnitude=1024.0,
                ),
            ]
        ),
    )
    injector.start()
    payloads = {
        r: rank_payload(r, patterns[r].nbytes) for r in range(case.n_ranks)
    }

    def main(ctx):
        yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank].copy())
        yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank].copy())

    stack.run_spmd(main)
    injector.stop()
    return tracer


def test_run_produced_events_without_drops(traced_run):
    assert len(traced_run) > 0
    assert traced_run.dropped == 0


def test_expected_categories_present(traced_run):
    cats = {ev.cat for ev in traced_run.events()}
    for expected in (
        "collective", "shuffle", "comm", "pfs", "plan", "plan_cache",
        "fault", "kernel",
    ):
        assert expected in cats, f"no {expected!r} events in trace"


def test_planning_phases_and_cache_events(traced_run):
    names = [ev.name for ev in traced_run.events()]
    for phase in ("plan.group_division", "plan.partition_tree", "plan.placement"):
        assert phase in names
    # two identical writes: the first misses, the second hits (or the
    # shock crossed a bucket and forced an invalidation + replan)
    cache_events = {n for n in names if n.startswith("plan_cache.")}
    assert "plan_cache.miss" in cache_events
    assert cache_events & {"plan_cache.hit", "plan_cache.invalidate"}


def test_fault_instants_on_target_tracks(traced_run):
    faults = [ev for ev in traced_run.events() if ev.cat == "fault"]
    assert {ev.name for ev in faults} == {"fault.apply", "fault.revert"}
    tracks = {(ev.pid, ev.tid) for ev in faults}
    assert (PID_PFS, 0) in tracks  # server_slowdown on ost0
    assert (1, TID_NODE) in tracks  # memory_shock on node1


def test_chrome_document_schema(traced_run):
    doc = to_chrome(traced_run)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events, "empty traceEvents"

    last_ts: dict[tuple, float] = {}
    open_spans: dict[tuple, list] = {}
    for ev in events:
        assert {"ph", "name", "pid", "tid"} <= set(ev), ev
        if ev["ph"] == "M":
            assert ev["name"] in (
                "process_name", "thread_name", "process_sort_index"
            )
            continue
        assert "ts" in ev and "cat" in ev, ev
        track = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last_ts.get(track, 0.0), (
            f"non-monotonic ts on track {track}"
        )
        last_ts[track] = ev["ts"]
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
        elif ev["ph"] == "i":
            assert ev["s"] == "t"
        elif ev["ph"] == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif ev["ph"] == "E":
            assert open_spans.get(track), (
                f"E without open B on track {track}"
            )
            open_spans[track].pop()
        else:
            raise AssertionError(f"unexpected phase {ev['ph']!r}")
    unbalanced = {t: s for t, s in open_spans.items() if s}
    assert not unbalanced, f"unclosed spans: {unbalanced}"


def test_metadata_names_every_track(traced_run):
    doc = to_chrome(traced_run)
    named = {
        (ev["pid"], ev["tid"])
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    used = {
        (ev["pid"], ev["tid"])
        for ev in doc["traceEvents"]
        if ev["ph"] != "M"
    }
    assert used <= named


def test_write_chrome_loads_back(traced_run, tmp_path):
    path = tmp_path / "trace.json"
    doc = write_chrome(traced_run, path)
    assert json.loads(path.read_text()) == doc


def test_write_jsonl_round_trips_units(traced_run, tmp_path):
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(traced_run, path)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == n == len(traced_run)
    # JSONL keeps simulated seconds and the raw seq ordering keys
    assert all("seq" in d and "ts" in d for d in lines)
    ts = [(d["ts"], d["seq"]) for d in lines]
    assert ts == sorted(ts)


class TestReportCLI:
    def test_report_on_chrome_json(self, traced_run, tmp_path, capsys):
        from repro.obs.report import main

        path = tmp_path / "trace.json"
        write_chrome(traced_run, path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "pfs.serve" in out
        assert "total" in out

    def test_report_by_category(self, traced_run, tmp_path, capsys):
        from repro.obs.report import main

        path = tmp_path / "trace.jsonl"
        write_jsonl(traced_run, path)
        assert main([str(path), "--by", "cat"]) == 0
        out = capsys.readouterr().out
        assert "shuffle" in out

    def test_report_empty_trace(self, tmp_path, capsys):
        from repro.obs.report import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
