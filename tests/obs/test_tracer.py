"""Tracer unit tests: ring-buffer bounds, span recording, install rules."""

import pytest

from repro.obs import NULL_TRACER, PID_KERNEL, TraceEvent, Tracer
from repro.sim import Environment


class TestRecording:
    def test_events_stamped_in_sim_time(self):
        env = Environment()
        tracer = Tracer().install(env)
        env.process(_sleeper(env, tracer))
        env.run()
        events = [ev for ev in tracer.events() if ev.cat == "t"]
        assert [ev.name for ev in events] == ["before", "after"]
        assert events[0].ts == 0.0
        assert events[1].ts == 2.5
        # the kernel traced its own run() span around them
        assert any(ev.name == "sim.run" for ev in tracer.events())

    def test_install_offset_shifts_timeline(self):
        env = Environment()
        tracer = Tracer().install(env, offset=100.0)
        tracer.instant("t", "mark", 0, 0)
        (ev,) = tracer.events()
        assert ev.ts == 100.0
        assert tracer.now() == 100.0

    def test_complete_and_instant_shapes(self):
        tracer = Tracer().install(Environment())
        tracer.complete("cat", "work", 3, 1, 1.0, 0.5, bytes=64)
        tracer.instant("cat", "mark", 3, 1)
        x, i = tracer.events()
        assert (x.ph, x.dur, x.args) == ("X", 0.5, {"bytes": 64})
        assert (i.ph, i.dur) == ("i", None)
        assert x.to_dict()["dur"] == 0.5
        assert "dur" not in i.to_dict()
        assert "args" not in i.to_dict()

    def test_begin_end_sequence(self):
        tracer = Tracer().install(Environment())
        tracer.begin("c", "outer", 0, 0)
        tracer.begin("c", "inner", 0, 0)
        tracer.end(0, 0)
        tracer.end(0, 0)
        phs = [ev.ph for ev in tracer.events()]
        assert phs == ["B", "B", "E", "E"]
        seqs = [ev.seq for ev in tracer.events()]
        assert seqs == sorted(seqs)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.begin("c", "x", 0, 0)
        tracer.complete("c", "x", 0, 0, 0.0, 1.0)
        tracer.instant("c", "x", 0, 0)
        tracer.end(0, 0)
        assert len(tracer) == 0

    def test_max_ts_spans_and_instants(self):
        tracer = Tracer().install(Environment())
        tracer.complete("c", "x", 0, 0, 1.0, 2.0)
        tracer.instant("c", "y", 0, 0)
        assert tracer.max_ts() == 3.0


class TestRingBuffer:
    def test_drop_oldest_keeps_newest(self):
        tracer = Tracer(capacity=4).install(Environment())
        for k in range(10):
            tracer.instant("t", f"ev{k}", 0, 0)
        kept = [ev.name for ev in tracer.events()]
        assert kept == ["ev6", "ev7", "ev8", "ev9"]
        assert tracer.dropped == 6
        assert len(tracer) == 4

    @pytest.mark.parametrize("capacity", [1, 2, 3, 7, 64])
    @pytest.mark.parametrize("n", [0, 1, 5, 100])
    def test_drop_oldest_property(self, capacity, n):
        """For any fill count, the ring holds exactly the newest events
        in order, and the drop counter accounts for the rest."""
        tracer = Tracer(capacity=capacity).install(Environment())
        for k in range(n):
            tracer.instant("t", str(k), 0, 0)
        kept = [int(ev.name) for ev in tracer.events()]
        expect = list(range(max(0, n - capacity), n))
        assert kept == expect
        assert len(tracer) == min(n, capacity)
        assert tracer.dropped == max(0, n - capacity)
        # seq stays strictly increasing across wraps
        seqs = [ev.seq for ev in tracer.events()]
        assert seqs == sorted(set(seqs))

    def test_clear_keeps_drop_counter(self):
        tracer = Tracer(capacity=2).install(Environment())
        for _ in range(5):
            tracer.instant("t", "x", 0, 0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestNullTracer:
    def test_environment_defaults_to_null_tracer(self):
        env = Environment()
        assert env.tracer is NULL_TRACER
        assert env.tracer.enabled is False

    def test_null_tracer_refuses_install(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.install(Environment())

    def test_install_replaces_env_tracer(self):
        env = Environment()
        tracer = Tracer()
        assert tracer.install(env) is tracer
        assert env.tracer is tracer


def _sleeper(env, tracer):
    tracer.instant("t", "before", PID_KERNEL, 0)
    yield env.timeout(2.5)
    tracer.instant("t", "after", PID_KERNEL, 0)


def test_trace_event_repr_smoke():
    ev = TraceEvent("X", "c", "n", 0, 0, 0.0, 1.0, None, 1)
    assert "TraceEvent" in repr(ev)
