"""Tracing must not perturb the simulation: traced runs hit the goldens.

Every cell of the golden workload matrix is re-run with an enabled
:class:`~repro.obs.Tracer` installed on its environment and compared —
stats field-by-field, final simulated clock via ``float.hex``, PFS
datastore digest — against the fixtures recorded with tracing off.  Any
instrumentation that schedules events, advances the clock, or changes
planner decisions when enabled fails here bit-for-bit.
"""

import json
from pathlib import Path

import pytest

from repro.obs import Tracer

from tests.goldens.cases import CLUSTER_CASES, OPS, STRATEGIES, case_id, run_case

GOLDEN_PATH = Path(__file__).parents[1] / "goldens" / "goldens.json"

with GOLDEN_PATH.open() as fh:
    GOLDENS = json.load(fh)

CELLS = [
    (strategy, op, case)
    for case in CLUSTER_CASES
    for strategy in STRATEGIES
    for op in OPS
]


@pytest.mark.parametrize(
    "strategy,op,case",
    CELLS,
    ids=[case_id(s, o, c) + "/traced" for s, o, c in CELLS],
)
def test_traced_run_matches_golden(strategy, op, case):
    tracer = Tracer()
    actual = run_case(strategy, op, case, tracer=tracer)
    expected = GOLDENS[case_id(strategy, op, case)]

    for field, want in expected["stats"].items():
        got = actual["stats"][field]
        assert got == want, (
            f"stats.{field} diverged under tracing: got {got!r}, "
            f"golden {want!r}"
        )
    assert actual["final_now_hex"] == expected["final_now_hex"], (
        "simulated clock perturbed by tracing"
    )
    assert actual["datastore_sha256"] == expected["datastore_sha256"]
    assert actual.get("rank_payload_sha256") == expected.get(
        "rank_payload_sha256"
    )
    # and the tracer actually observed the run
    assert len(tracer) > 0


def test_tiny_ring_does_not_perturb_either():
    """Overflowing the ring (drop-oldest path) is also side-effect free."""
    strategy, op, case = "mcio", "write", CLUSTER_CASES[0]
    tracer = Tracer(capacity=8)
    actual = run_case(strategy, op, case, tracer=tracer)
    expected = GOLDENS[case_id(strategy, op, case)]
    assert actual["final_now_hex"] == expected["final_now_hex"]
    assert tracer.dropped > 0
    assert len(tracer) == 8
