"""MetricsRegistry unit tests and the StatsCollector view contract."""

import pytest

from repro.core.metrics import StatsCollector
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_total(self):
        c = Counter("reqs", labelnames=("kind",))
        c.inc(2, kind="read")
        c.inc(3, kind="read")
        c.inc(5, kind="write")
        assert c.value(kind="read") == 5
        assert c.value(kind="write") == 5
        assert c.total() == 10

    def test_counter_rejects_negative(self):
        c = Counter("reqs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_integer_exactness(self):
        """Integral increments stay exact ints (golden comparisons)."""
        c = Counter("b")
        c.inc(2**60)
        c.inc(1)
        assert c.value() == 2**60 + 1
        assert isinstance(c.value(), int)

    def test_label_mismatch_rejected(self):
        c = Counter("reqs", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc(1)
        with pytest.raises(ValueError):
            c.inc(1, kind="read", extra="x")


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4)
        g.add(-1)
        assert g.value() == 3

    def test_set_max_merges_peaks(self):
        g = Gauge("peak", labelnames=("rank",))
        g.set_max(100, rank=1)
        g.set_max(50, rank=1)
        g.set_max(200, rank=1)
        assert g.value(rank=1) == 200

    def test_default(self):
        g = Gauge("x")
        assert g.value(default=7) == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("sz", buckets=(10, 100))
        for v in (1, 10, 11, 100, 101, 5000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [2, 2, 2]  # <=10, <=100, +inf
        assert snap["count"] == 6
        assert snap["sum"] == 1 + 10 + 11 + 100 + 101 + 5000

    def test_empty_snapshot(self):
        h = Histogram("sz", buckets=(1,))
        assert h.snapshot() == {"counts": [0, 0], "sum": 0, "count": 0}

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("sz", buckets=())
        with pytest.raises(ValueError):
            Histogram("sz", buckets=(1, 1))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", labelnames=("kind",))
        b = reg.counter("reqs", labelnames=("kind",))
        assert a is b
        assert len(reg) == 1
        assert "reqs" in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x", labelnames=("b",))

    def test_collect_shape(self):
        import json

        reg = MetricsRegistry()
        reg.counter("reqs", "requests", labelnames=("kind",)).inc(3, kind="r")
        reg.gauge("depth").set(2)
        reg.histogram("sz", buckets=(10,)).observe(4)
        doc = reg.collect()
        json.dumps(doc)  # plain JSON types throughout
        assert doc["reqs"]["kind"] == "counter"
        assert doc["reqs"]["series"] == [{"labels": {"kind": "r"}, "value": 3}]
        assert doc["depth"]["series"][0]["value"] == 2
        assert doc["sz"]["series"][0]["counts"] == [1, 0]


class TestStatsCollectorView:
    """The collector's legacy attributes are views over its registry."""

    def test_views_match_registry(self):
        c = StatsCollector("mcio", "write", n_ranks=4)
        c.record_bytes(1000)
        c.record_bytes(24)
        c.record_shuffle(500, same_node=True)
        c.record_shuffle(300, same_node=False)
        c.record_shuffle(200, same_node=False, same_group=False)
        c.record_rounds(3)
        c.record_failover()
        c.record_aggregator(2, 4096, paged=True, overcommit_bytes=128)
        c.record_aggregator(2, 1024, paged=False)

        assert c.total_bytes == 1024
        assert c.shuffle_intra_node_bytes == 500
        assert c.shuffle_inter_node_bytes == 500
        assert c.shuffle_inter_group_bytes == 200
        assert c.rounds_total == 3
        assert c.failovers == 1
        assert c.agg_buffer_bytes == {2: 4096}  # peak, not last
        assert c.agg_overcommit_bytes == {2: 128}
        assert c.paged_aggregators == {2}

        reg = c.registry
        assert reg.counter("io_bytes_total").value() == 1024
        assert reg.get("shuffle_message_bytes").snapshot(path="intra_node")[
            "count"
        ] == 1

    def test_finalize_folds_from_registry(self):
        c = StatsCollector("mcio", "write", n_ranks=4)
        c.mark_start(0.0)
        c.mark_end(1.0)
        c.record_bytes(77)
        c.record_aggregator(1, 10, paged=False)
        stats = c.finalize()
        assert stats.total_bytes == 77
        assert stats.aggregator_ranks == (1,)
        assert stats.agg_buffer_bytes == {1: 10}

    def test_injected_registry_is_used(self):
        reg = MetricsRegistry()
        c = StatsCollector("mcio", "write", n_ranks=2, registry=reg)
        c.record_bytes(5)
        assert reg.counter("io_bytes_total").value() == 5
