"""Shared builders for integration tests: full simulated stacks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    StorageSpec,
    block_placement,
)
from repro.mpi import SimComm
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory


@dataclass
class Stack:
    """A complete simulated platform for one test."""

    env: Environment
    cluster: Cluster
    comm: SimComm
    pfs: ParallelFileSystem

    def run_spmd(self, main):
        return self.comm.run_spmd(main)


def make_stack(
    n_ranks: int = 12,
    n_nodes: int = 3,
    cores: int = 4,
    memory_bytes: int = 10**9,
    servers: int = 4,
    server_bandwidth: float = 1e6,
    request_overhead: float = 1e-3,
    stripe_size: int = 256,
    nic_bandwidth: float = 1e7,
    memory_bandwidth: float = 1e8,
    with_data: bool = True,
    seed: int = 42,
    paging_penalty: float = 4.0,
) -> Stack:
    """Build a small, fast cluster + comm + PFS stack."""
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=cores,
            memory_bytes=memory_bytes,
            memory_bandwidth=memory_bandwidth,
            memory_channels=2,
            nic_bandwidth=nic_bandwidth,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=servers,
            server_bandwidth=server_bandwidth,
            request_overhead=request_overhead,
            stripe_size=stripe_size,
        ),
        paging_penalty=paging_penalty,
    )
    cluster = Cluster(env, spec, RngFactory(seed))
    placement = block_placement(n_ranks, n_nodes, cores)
    comm = SimComm(env, cluster, placement)
    store = SparseFile() if with_data else None
    pfs = ParallelFileSystem(env, spec.storage, datastore=store)
    return Stack(env=env, cluster=cluster, comm=comm, pfs=pfs)


def rank_payload(rank: int, nbytes: int) -> np.ndarray:
    """Deterministic per-rank byte pattern (verifiable after a roundtrip)."""
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + 13) % 251).astype(np.uint8)
