"""Shared builders for integration tests: full simulated stacks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    StorageSpec,
    block_placement,
)
from repro.mpi import SimComm
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory


@dataclass
class Stack:
    """A complete simulated platform for one test."""

    env: Environment
    cluster: Cluster
    comm: SimComm
    pfs: ParallelFileSystem

    def run_spmd(self, main):
        return self.comm.run_spmd(main)


def make_stack(
    n_ranks: int = 12,
    n_nodes: int = 3,
    cores: int = 4,
    memory_bytes: int = 10**9,
    servers: int = 4,
    server_bandwidth: float = 1e6,
    request_overhead: float = 1e-3,
    stripe_size: int = 256,
    nic_bandwidth: float = 1e7,
    memory_bandwidth: float = 1e8,
    with_data: bool = True,
    seed: int = 42,
    paging_penalty: float = 4.0,
) -> Stack:
    """Build a small, fast cluster + comm + PFS stack."""
    env = Environment()
    spec = ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=cores,
            memory_bytes=memory_bytes,
            memory_bandwidth=memory_bandwidth,
            memory_channels=2,
            nic_bandwidth=nic_bandwidth,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=servers,
            server_bandwidth=server_bandwidth,
            request_overhead=request_overhead,
            stripe_size=stripe_size,
        ),
        paging_penalty=paging_penalty,
    )
    cluster = Cluster(env, spec, RngFactory(seed))
    placement = block_placement(n_ranks, n_nodes, cores)
    comm = SimComm(env, cluster, placement)
    store = SparseFile() if with_data else None
    pfs = ParallelFileSystem(env, spec.storage, datastore=store)
    return Stack(env=env, cluster=cluster, comm=comm, pfs=pfs)


def rank_payload(rank: int, nbytes: int) -> np.ndarray:
    """Deterministic per-rank byte pattern (verifiable after a roundtrip)."""
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + 13) % 251).astype(np.uint8)


# ---------------------------------------------------------------------------
# differential harness: per-rank reference vs vectorized driver
# ---------------------------------------------------------------------------

#: CollectiveStats fields the vectorized driver must reproduce exactly.
#: Excluded by design: ``elapsed`` (node-level timing is pinned by its
#: own goldens, not by per-rank equality), the ``plan_cache*`` counters
#: (a refused-then-fallen-back run can see one extra lookup) and the
#: execution-mode fields themselves.
EQUIVALENT_FIELDS = (
    "strategy",
    "op",
    "total_bytes",
    "n_ranks",
    "n_aggregators",
    "aggregator_ranks",
    "agg_buffer_bytes",
    "agg_overcommit_bytes",
    "paged_aggregators",
    "rounds_total",
    "shuffle_intra_node_bytes",
    "shuffle_inter_node_bytes",
    "shuffle_inter_group_bytes",
    "n_groups",
    "degraded_tier",
    "io_retries",
    "io_abandons",
    "failovers",
    "leases_granted",
    "leases_renewed",
    "leases_revoked",
    "leases_expired",
    "borrow_bytes",
    "borrow_fallbacks",
    "ina_fallbacks",
)


def assert_stats_equivalent(reference, candidate, fields=EQUIVALENT_FIELDS):
    """Field-by-field equality of two CollectiveStats (see EQUIVALENT_FIELDS)."""
    diffs = []
    for name in fields:
        a, b = getattr(reference, name), getattr(candidate, name)
        if a != b:
            diffs.append(f"{name}: reference={a!r} candidate={b!r}")
    assert not diffs, "stats diverge:\n  " + "\n  ".join(diffs)


def run_differential(
    patterns,
    mcio_config,
    op: str = "write",
    n_ranks: int = 12,
    n_nodes: int = 3,
    cores: int = 4,
    memory_bytes: int = 10**9,
    audit: bool = True,
    memory_availability=None,
    candidate_mode: str = "vectorized",
    jobs=None,
    runner=None,
    **stack_kwargs,
):
    """Run one workload per-rank and as `candidate_mode` on twin stacks.

    Returns ``(reference_stats, candidate_stats, ref_auditor, cand_auditor)``.
    Both stacks are built identically (metadata-only: both alternate
    drivers refuse a data plane); the reference runs the classic SPMD
    path, the candidate either the node-level vectorized driver or the
    group-sharded process-parallel driver (``candidate_mode="sharded"``,
    with `jobs` workers or a shared `runner`).  `memory_availability`
    (a per-node byte tuple) pins each node's available memory before
    planning, like the golden cases do.
    """
    from dataclasses import replace

    from repro.core import MemoryConsciousCollectiveIO
    from repro.core.audit import ConservationAuditor
    from repro.core.vectorized import run_vectorized_collective
    from repro.parallel import run_sharded_collective

    if candidate_mode not in ("vectorized", "sharded"):
        raise ValueError(f"bad candidate_mode {candidate_mode!r}")
    results = []
    for mode in ("per-rank", candidate_mode):
        stack = make_stack(
            n_ranks=n_ranks,
            n_nodes=n_nodes,
            cores=cores,
            memory_bytes=memory_bytes,
            with_data=False,
            **stack_kwargs,
        )
        if memory_availability is not None:
            stack.cluster.set_memory_availability(memory_availability)
        engine = MemoryConsciousCollectiveIO(
            stack.comm,
            stack.pfs,
            replace(mcio_config, execution_mode=mode),
        )
        auditor = ConservationAuditor() if audit else None
        if auditor is not None:
            auditor.attach(engine)
        if mode == "vectorized":
            run_vectorized_collective(engine, patterns, op)
        elif mode == "sharded":
            run_sharded_collective(engine, patterns, op, jobs=jobs, runner=runner)
        else:
            def main(ctx):
                fn = engine.write if op == "write" else engine.read
                yield from fn(ctx, patterns[ctx.rank])

            stack.run_spmd(main)
        results.append((engine.history[-1], auditor))
    (ref, ref_aud), (cand, cand_aud) = results
    return ref, cand, ref_aud, cand_aud
