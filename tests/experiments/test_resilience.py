"""Chaos-sweep experiment: acceptance checks for degraded-mode I/O."""

import pytest

from repro.experiments import resilience


@pytest.fixture(scope="module")
def result():
    return resilience.run(fault_rates=(0.0, 1.0))


def by_cell(result):
    return {(p.fault_rate, p.strategy): p for p in result.points}


class TestChaosSweep:
    def test_all_cells_complete(self, result):
        assert len(result.points) == 6
        assert all(p.completed for p in result.points)

    def test_rate_zero_matches_static_bit_identical(self, result):
        """With no faults, the degraded-mode hooks add zero events: the
        failover-enabled engine must match the static one exactly."""
        cells = by_cell(result)
        a = cells[(0.0, "mcio")].stats
        b = cells[(0.0, "mcio-static")].stats
        assert a.elapsed == b.elapsed
        assert a.rounds_total == b.rounds_total
        assert a.io_retries == b.io_retries == 0
        assert a.failovers == 0

    def test_faulted_cells_exercise_both_recovery_paths(self, result):
        cells = by_cell(result)
        p = cells[(1.0, "mcio")]
        assert p.outages >= 1
        assert p.node_failures >= 1
        assert p.stats.io_retries > 0
        assert p.stats.failovers >= 1
        assert p.stats.extra.get("failover_targets")

    def test_failover_beats_static_under_faults(self, result):
        cells = by_cell(result)
        degraded = cells[(1.0, "mcio")].stats
        static = cells[(1.0, "mcio-static")].stats
        assert static.failovers == 0
        assert degraded.elapsed < static.elapsed

    def test_no_abandoned_requests(self, result):
        assert all(p.stats.io_abandons == 0 for p in result.points)

    def test_render_table(self, result):
        table = result.render()
        assert "failovers" in table
        assert "mcio-static" in table
        assert "two-phase" in table


class TestSchedule:
    def test_rate_zero_schedule_empty(self):
        assert len(resilience.chaos_schedule(0, 0.0, 8.0, 4, 3)) == 0

    def test_nonzero_rate_pins_both_fault_kinds(self):
        sched = resilience.chaos_schedule(0, 0.25, 8.0, 4, 3)
        assert sched.count("server_outage") >= 1
        assert sched.count("node_failure") >= 1

    def test_schedule_deterministic(self):
        a = resilience.chaos_schedule(3, 1.0, 8.0, 4, 3)
        b = resilience.chaos_schedule(3, 1.0, 8.0, 4, 3)
        assert a.events == b.events
