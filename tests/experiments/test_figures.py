"""Tests for the figure machinery and micro-scale figure runs."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core import MCIOConfig
from repro.experiments import figure6, figure7, figure8
from repro.experiments.figures import FigureConfig, FigureResult, run_figure
from repro.workloads import CollPerfWorkload, IORWorkload


def micro_spec(nodes=3):
    return ClusterSpec(
        nodes=nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=10**7,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4, server_bandwidth=1e6, request_overhead=2e-3, stripe_size=512
        ),
        paging_penalty=16.0,
    )


def micro_figure():
    """A seconds-scale figure config exercising the whole pipeline."""
    return FigureConfig(
        figure_id="micro",
        description="micro coll_perf",
        spec=micro_spec(),
        workload=CollPerfWorkload(array_shape=(24, 24, 24), n_ranks=12, elem_size=8),
        buffer_sizes=(16384, 4096),
        sigma_bytes=20000,
        mcio=MCIOConfig(
            msg_group=40000, msg_ind=10000, mem_min=0, nah=2, min_buffer=256
        ),
        granularity="round",
        seed=2,
    )


class TestRunFigure:
    def test_produces_grid_and_tables(self):
        result = run_figure(micro_figure())
        assert len(result.points) == 2 * 2 * 2
        text = result.render()
        assert "write" in text and "read" in text
        assert "average improvement" in text

    def test_rows_sorted_by_buffer(self):
        result = run_figure(micro_figure())
        rows = result.rows("write")
        assert [r[0] for r in rows] == [16384, 4096]

    def test_check_shape_returns_list(self):
        result = run_figure(micro_figure())
        assert isinstance(result.check_shape(), list)

    def test_average_improvements_keys(self):
        result = run_figure(micro_figure())
        assert set(result.average_improvements()) == {"write", "read"}


class TestFigureConfigs:
    """The shipped configs must match the paper's run geometry."""

    def test_figure6_paper_geometry(self):
        cfg = figure6.paper_config()
        assert cfg.workload.array_shape == (2048, 2048, 2048)
        assert cfg.workload.n_ranks == 120
        assert cfg.spec.total_cores == 120
        assert max(cfg.buffer_sizes) == 128 * 2**20
        assert min(cfg.buffer_sizes) == 2 * 2**20
        assert cfg.sigma_bytes == 50 * 2**20  # the paper's sigma=50

    def test_figure7_paper_geometry(self):
        cfg = figure7.paper_config()
        assert cfg.workload.n_ranks == 120
        assert cfg.workload.bytes_per_rank == 32 * 2**20  # 32 MB/process

    def test_figure8_paper_geometry(self):
        cfg = figure8.paper_config()
        assert cfg.workload.n_ranks == 1080
        assert cfg.spec.nodes == 90
        assert cfg.workload.bytes_per_rank == 32 * 2**20

    def test_small_configs_have_same_rank_counts(self):
        assert figure6.small_config().workload.n_ranks == 120
        assert figure7.small_config().workload.n_ranks == 120
        assert figure8.small_config().workload.n_ranks == 1080

    def test_paper_stripe_is_1mib(self):
        for cfg in (figure6.paper_config(), figure7.paper_config(),
                    figure8.paper_config()):
            assert cfg.spec.storage.stripe_size == 2**20

    def test_configs_patterns_cover_expected_bytes(self):
        cfg = figure7.small_config()
        patterns = cfg.patterns()
        assert len(patterns) == 120
        assert sum(p.nbytes for p in patterns) == cfg.workload.total_bytes


@pytest.mark.slow
class TestFigure6SmallShape:
    """The actual (small-scale) Figure 6 run satisfies the paper's shape."""

    def test_shape(self):
        result = figure6.run()
        issues = result.check_shape()
        assert issues == [], "\n".join(issues)
        avgs = result.average_improvements()
        assert avgs["write"] > 15.0
        assert avgs["read"] > 15.0
