"""Tests for the memory-pressure and ablation experiments (slow-ish)."""

import pytest

from repro.experiments import ablation, memory_pressure


@pytest.mark.slow
class TestMemoryPressure:
    def test_poster_claims_hold(self):
        result = memory_pressure.run(buffer_mib=16, seed=0)
        issues = result.check_claims()
        assert issues == [], "\n".join(issues)
        # the concrete claims, spelled out:
        assert result.mcio.shuffle_inter_group_bytes == 0
        assert result.mcio.paged_aggregators == 0
        assert result.baseline.paged_aggregators > 0
        assert result.mcio.overcommit_mean < result.baseline.overcommit_mean
        assert result.mcio.overcommit_std < result.baseline.overcommit_std
        assert result.mcio.bandwidth > result.baseline.bandwidth

    def test_render(self):
        result = memory_pressure.run(buffer_mib=16, seed=0)
        text = result.render()
        assert "overcommit" in text
        assert "two-phase" in text and "MCIO" in text


@pytest.mark.slow
class TestAblation:
    def test_all_variants_run(self):
        result = ablation.run(buffer_mib=16, seed=0)
        assert set(result.variants) == set(ablation.VARIANTS)
        text = result.render()
        assert "memory-oblivious" in text

    def test_memory_awareness_is_the_load_bearing_mechanism(self):
        """Removing memory awareness must hurt most (the paper's thesis)."""
        result = ablation.run(buffer_mib=16, seed=0)
        full = result.variants["mcio (full)"].bandwidth
        oblivious = result.variants["memory-oblivious"].bandwidth
        assert oblivious < full
        assert result.variants["memory-oblivious"].paged_aggregators > 0
        assert result.variants["mcio (full)"].paged_aggregators == 0
