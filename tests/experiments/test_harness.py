"""Tests for the experiment harness (fast, scaled-down sweeps)."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core import MCIOConfig
from repro.experiments.harness import Platform, run_collective, run_memory_sweep
from repro.core import TwoPhaseCollectiveIO, TwoPhaseConfig
from repro.core.request import AccessPattern


def tiny_spec():
    return ClusterSpec(
        nodes=3,
        node=NodeSpec(
            cores=4,
            memory_bytes=10**7,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4, server_bandwidth=1e6, request_overhead=1e-3, stripe_size=256
        ),
        paging_penalty=8.0,
    )


def serial_patterns(n, width=2000):
    return [AccessPattern.contiguous(r * width, width) for r in range(n)]


def tiny_mcio():
    return MCIOConfig(
        msg_group=8000, msg_ind=4000, mem_min=0, nah=2, min_buffer=1,
        cb_buffer_size=1024,
    )


class TestPlatform:
    def test_build(self):
        p = Platform.build(tiny_spec(), n_ranks=12, seed=3)
        assert p.comm.size == 12
        assert len(p.cluster.nodes) == 3
        assert p.pfs.datastore is None

    def test_build_with_data(self):
        p = Platform.build(tiny_spec(), n_ranks=4, with_data=True)
        assert p.pfs.datastore is not None


class TestRunCollective:
    def test_write_then_read_stats(self):
        p = Platform.build(tiny_spec(), n_ranks=6)
        engine = TwoPhaseCollectiveIO(p.comm, p.pfs, TwoPhaseConfig(cb_buffer_size=1024))
        stats = run_collective(p, engine, serial_patterns(6), ops=("write", "read"))
        assert [s.op for s in stats] == ["write", "read"]
        assert all(s.total_bytes == 6 * 2000 for s in stats)

    def test_pattern_count_mismatch(self):
        p = Platform.build(tiny_spec(), n_ranks=6)
        engine = TwoPhaseCollectiveIO(p.comm, p.pfs)
        with pytest.raises(ValueError):
            run_collective(p, engine, serial_patterns(3))

    def test_unknown_op(self):
        p = Platform.build(tiny_spec(), n_ranks=2)
        engine = TwoPhaseCollectiveIO(p.comm, p.pfs)
        with pytest.raises(Exception):
            run_collective(p, engine, serial_patterns(2), ops=("append",))


class TestMemorySweep:
    def test_sweep_produces_full_grid(self):
        points = run_memory_sweep(
            spec=tiny_spec(),
            patterns=serial_patterns(6),
            buffer_sizes=[2048, 512],
            sigma_bytes=1024,
            mcio_config=tiny_mcio(),
        )
        keys = {(p.buffer_bytes, p.strategy, p.op) for p in points}
        assert len(keys) == 2 * 2 * 2  # buffers x strategies x ops
        assert all(p.stats.elapsed > 0 for p in points)

    def test_sweep_is_paired_and_deterministic(self):
        def run():
            return run_memory_sweep(
                spec=tiny_spec(),
                patterns=serial_patterns(6),
                buffer_sizes=[1024],
                sigma_bytes=512,
                seed=11,
                mcio_config=tiny_mcio(),
            )

        a, b = run(), run()
        assert [(p.buffer_bytes, p.strategy, p.op, p.stats.elapsed) for p in a] == [
            (p.buffer_bytes, p.strategy, p.op, p.stats.elapsed) for p in b
        ]

    def test_sweep_single_strategy(self):
        points = run_memory_sweep(
            spec=tiny_spec(),
            patterns=serial_patterns(4),
            buffer_sizes=[1024],
            sigma_bytes=0,
            strategies=("two-phase",),
            ops=("write",),
        )
        assert len(points) == 1
        assert points[0].strategy == "two-phase"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_memory_sweep(
                spec=tiny_spec(),
                patterns=serial_patterns(4),
                buffer_sizes=[1024],
                sigma_bytes=0,
                strategies=("romio-ng",),
            )

    def test_buffer_size_applied(self):
        points = run_memory_sweep(
            spec=tiny_spec(),
            patterns=serial_patterns(6),
            buffer_sizes=[777],
            sigma_bytes=0,
            strategies=("two-phase",),
            ops=("write",),
        )
        stats = points[0].stats
        assert all(v == 777 for v in stats.agg_buffer_bytes.values())
