"""Tests for sweep-result JSON persistence."""

import json

import pytest

from repro.core.metrics import StatsCollector
from repro.experiments.harness import SweepPoint
from repro.experiments.persistence import (
    load_points,
    save_points,
    stats_from_dict,
    stats_to_dict,
)
from repro.experiments.report import sweep_rows


def make_stats(strategy="mcio", op="write"):
    c = StatsCollector(strategy, op, n_ranks=8)
    c.mark_start(0.0)
    c.mark_end(2.5)
    c.record_bytes(10_000)
    c.record_aggregator(0, 4096, paged=False, overcommit_bytes=0)
    c.record_aggregator(3, 8192, paged=True, overcommit_bytes=1024)
    c.record_shuffle(5000, same_node=True)
    c.record_shuffle(5000, same_node=False)
    c.record_rounds(7)
    c.n_groups = 2
    c.extra["note"] = "hello"
    return c.finalize()


def test_stats_roundtrip():
    original = make_stats()
    restored = stats_from_dict(stats_to_dict(original))
    assert restored == original


def test_stats_dict_is_json_serializable():
    json.dumps(stats_to_dict(make_stats()))


def test_save_load_points(tmp_path):
    points = [
        SweepPoint(16 << 20, "two-phase", "write", make_stats("two-phase")),
        SweepPoint(16 << 20, "mcio", "write", make_stats("mcio")),
        SweepPoint(4 << 20, "two-phase", "read", make_stats("two-phase", "read")),
    ]
    path = tmp_path / "sweep.json"
    save_points(path, points, figure_id="Figure X", description="demo")
    restored, meta = load_points(path)
    assert meta == {"figure_id": "Figure X", "description": "demo"}
    assert len(restored) == 3
    assert restored[0].buffer_bytes == 16 << 20
    assert restored[0].stats == points[0].stats


def test_loaded_points_feed_report(tmp_path):
    points = [
        SweepPoint(8 << 20, "two-phase", "write", make_stats("two-phase")),
        SweepPoint(8 << 20, "mcio", "write", make_stats("mcio")),
    ]
    path = tmp_path / "s.json"
    save_points(path, points)
    restored, _ = load_points(path)
    rows = sweep_rows(restored, "write")
    assert len(rows) == 1


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError):
        load_points(path)


def test_extra_filtered_to_scalars():
    stats = make_stats()
    stats.extra["complex"] = object()
    d = stats_to_dict(stats)
    assert "complex" not in d["extra"]
    assert d["extra"]["note"] == "hello"


def test_figure_cli_json_flag(tmp_path, capsys):
    """End-to-end: a micro figure run saved via the CLI flag."""
    from repro.experiments.figures import figure_cli

    from tests.experiments.test_figures import micro_figure

    path = tmp_path / "fig.json"
    figure_cli(
        lambda seed: micro_figure(),
        lambda seed: micro_figure(),
        argv=["--scale", "small", "--json", str(path)],
    )
    out = capsys.readouterr().out
    assert "saved sweep points" in out
    points, meta = load_points(path)
    assert meta["figure_id"] == "micro"
    assert len(points) == 8
