"""The scale-sweep CLI: ladder construction, cell records, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale_sweep import main, rank_ladder, run_point


def test_rank_ladder_geometric_and_capped():
    assert rank_ladder(1_000_000) == [1000, 10_000, 100_000, 1_000_000]
    assert rank_ladder(100_000) == [1000, 10_000, 100_000]
    # a non-decade target is still the top of the ladder
    assert rank_ladder(2500) == [1000, 2500]
    assert rank_ladder(1000) == [1000]
    assert rank_ladder(7) == [7]
    with pytest.raises(ValueError):
        rank_ladder(0)


def test_run_point_vectorizes_and_reports():
    rows = run_point(
        n_ranks=2048, ranks_per_node=64, bytes_per_rank=256 * 1024
    )
    assert [r["op"] for r in rows] == ["write", "read"]
    for row in rows:
        assert row["execution_mode"] == "vectorized"
        assert row["vectorized_refusals"] == 0
        assert row["nodes"] == 32
        assert row["total_bytes"] == 2048 * 256 * 1024
        assert row["n_aggregators"] > 0
        assert row["bandwidth_mib_s"] > 0


def test_cli_smoke_writes_json_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    rc = main(
        [
            "--ranks", "2000",
            "--ranks-per-node", "64",
            "--time-budget", "120",
            "--ops", "write",
            "--json", str(out),
        ]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["target_ranks"] == 2000
    assert [c["ranks"] for c in data["cells"]] == [1000, 2000]
    assert all(c["execution_mode"] == "vectorized" for c in data["cells"])
    assert "Vectorized scale projection" in capsys.readouterr().out


def test_cli_exits_nonzero_over_budget(capsys):
    rc = main(
        ["--ranks", "1000", "--ops", "write", "--time-budget", "0.0"]
    )
    assert rc == 1
    assert "over the" in capsys.readouterr().err
