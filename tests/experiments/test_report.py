"""Tests for report rendering."""

from repro.core.metrics import StatsCollector
from repro.experiments.harness import SweepPoint
from repro.experiments.report import (
    average_improvements,
    format_table,
    improvement_pct,
    sweep_rows,
    sweep_table,
)


def make_point(buffer_bytes, strategy, op, total_bytes, elapsed):
    c = StatsCollector(strategy, op, n_ranks=4)
    c.mark_start(0.0)
    c.mark_end(elapsed)
    c.record_bytes(total_bytes)
    return SweepPoint(
        buffer_bytes=buffer_bytes, strategy=strategy, op=op, stats=c.finalize()
    )


def sample_points():
    # two-phase: 100 MiB/s at 16 MiB, 50 at 4; mcio: 150 and 100
    mib = 1024**2
    return [
        make_point(16 * mib, "two-phase", "write", 100 * mib, 1.0),
        make_point(16 * mib, "mcio", "write", 150 * mib, 1.0),
        make_point(4 * mib, "two-phase", "write", 50 * mib, 1.0),
        make_point(4 * mib, "mcio", "write", 100 * mib, 1.0),
    ]


def test_format_table_alignment():
    out = format_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows equally wide


import pytest


def test_improvement_pct():
    assert improvement_pct(100, 150) == pytest.approx(50.0)
    assert improvement_pct(100, 80) == pytest.approx(-20.0)
    assert improvement_pct(0, 100) == 0.0


def test_sweep_rows_ordering_and_values():
    rows = sweep_rows(sample_points(), "write")
    assert len(rows) == 2
    assert rows[0][0] > rows[1][0]  # largest buffer first
    b, base, mcio, imp = rows[0]
    assert base == 100.0 and mcio == 150.0 and imp == 50.0
    assert rows[1][3] == 100.0


def test_sweep_rows_skips_incomplete_pairs():
    points = sample_points()[:1]  # only the baseline at 16 MiB
    assert sweep_rows(points, "write") == []


def test_sweep_table_renders():
    out = sweep_table(sample_points(), "write", title="demo")
    assert "demo" in out
    assert "+50.0%" in out
    assert "+100.0%" in out


def test_average_improvements():
    avgs = average_improvements(sample_points())
    assert avgs == {"write": 75.0}
