"""Tests for the Table 1 reproduction."""

from repro.experiments.table1 import derived_rows, render_table1, table1_rows


def test_eleven_paper_rows():
    rows = table1_rows()
    assert len(rows) == 11
    assert rows[0] == ("System Peak", "2 Pf/s", "1 Ef/s", "500")
    assert rows[-1] == ("I/O Bandwidth", "0.2 TB/s", "20 TB/s", "100")


def test_derived_memory_per_core_shrinks():
    rows = derived_rows()
    mpc = next(r for r in rows if r[0].startswith("Memory per core"))
    # the derived factor must be < 1 (memory per core shrinks)
    assert float(mpc[3]) < 1.0
    # and exascale memory per core lands in the ~10 MB regime
    assert "MB" in mpc[2]


def test_render_contains_all_rows():
    text = render_table1()
    for metric in ("System Peak", "Total concurrency", "Memory per core"):
        assert metric in text


def test_main_prints(capsys):
    from repro.experiments.table1 import main

    main()
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "4444" in out
