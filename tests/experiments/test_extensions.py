"""Tests for the dynamic-memory and topology extension experiments."""

import pytest

from repro.experiments import dynamic_memory, topology


@pytest.mark.slow
class TestDynamicMemory:
    def test_runtime_planning_wins_under_churn(self):
        result = dynamic_memory.run(n_calls=3, seed=0, period=0.05)
        assert len(result.baseline) == 3
        assert len(result.mcio) == 3
        # MCIO never pages; the baseline does at least sometimes
        assert all(s.paged_aggregators == 0 for s in result.mcio)
        assert any(s.paged_aggregators > 0 for s in result.baseline)
        assert result.mean_improvement() > 20.0
        text = result.render()
        assert "two-phase" in text

    def test_mcio_replans_per_call(self):
        """Plans differ across calls as the landscape moves."""
        result = dynamic_memory.run(n_calls=3, seed=0, period=0.05)
        plans = {
            (s.aggregator_ranks, tuple(sorted(s.agg_buffer_bytes.values())))
            for s in result.mcio
        }
        base_sets = {s.aggregator_ranks for s in result.baseline}
        assert len(base_sets) == 1  # the baseline never moves
        assert len(plans) > 1  # run-time determination reacts


@pytest.mark.slow
class TestTopology:
    def test_containment_pays_under_oversubscription(self):
        result = topology.run(seed=0)
        # grouped MCIO never sends a byte across racks
        for factor in topology.OVERSUBSCRIPTION:
            label = topology.TopologyResult._label(factor)
            grouped = result.stats[(label, "mcio (groups)")]
            assert grouped.extra["inter_rack_bytes"] == 0
        # the no-groups variant does, and pays for it as taper steepens
        flat = result.containment_ratio(None)
        steep = result.containment_ratio(topology.OVERSUBSCRIPTION[-1])
        assert steep > flat
        assert steep > 1.1  # containment wins at 12:1
        assert "cross-rack" in result.render()
