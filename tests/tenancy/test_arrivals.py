"""Arrival generators and the arrival -> TenantJob mapping."""

from __future__ import annotations

import pytest

from repro.tenancy import jobs_from_arrivals
from repro.workloads import JobArrival, PoissonArrivals, TraceArrivals

KIB = 1024


class TestPoissonArrivals:
    def test_same_seed_same_stream(self):
        gen = dict(rate=3.0, n_jobs=10, seed=11, read_fraction=0.5,
                   blocks=(4 * KIB, 64 * KIB), steps=(1, 2))
        assert PoissonArrivals(**gen).jobs() == PoissonArrivals(**gen).jobs()

    def test_different_seed_different_stream(self):
        a = PoissonArrivals(rate=3.0, n_jobs=10, seed=1).jobs()
        b = PoissonArrivals(rate=3.0, n_jobs=10, seed=2).jobs()
        assert a != b

    def test_times_increase(self):
        arrivals = PoissonArrivals(rate=2.0, n_jobs=20, seed=0).jobs()
        assert len(arrivals) == 20
        assert all(x.time < y.time for x, y in zip(arrivals, arrivals[1:]))
        assert [a.index for a in arrivals] == list(range(20))

    def test_read_fraction_extremes(self):
        reads = PoissonArrivals(rate=1.0, n_jobs=10, seed=0,
                                read_fraction=1.0).jobs()
        writes = PoissonArrivals(rate=1.0, n_jobs=10, seed=0,
                                 read_fraction=0.0).jobs()
        assert all(a.op == "read" for a in reads)
        assert all(a.op == "write" for a in writes)

    def test_draws_from_size_menu(self):
        menu = (4 * KIB, 64 * KIB)
        arrivals = PoissonArrivals(rate=1.0, n_jobs=30, seed=0,
                                   blocks=menu, steps=(1, 3)).jobs()
        assert {a.block for a in arrivals} <= set(menu)
        assert {a.steps for a in arrivals} <= {1, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0, n_jobs=1)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0, n_jobs=0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0, n_jobs=1, read_fraction=1.5)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0, n_jobs=1, blocks=())


class TestTraceArrivals:
    def test_replay_sorted_and_reindexed(self):
        arrivals = TraceArrivals(
            [(1.0, "write"), (0.5, "read", 8), (0.5, "write", 2, KIB, 4)]
        ).jobs()
        assert [a.time for a in arrivals] == [0.5, 0.5, 1.0]
        assert [a.index for a in arrivals] == [0, 1, 2]
        # same-instant entries keep trace order
        assert arrivals[0].op == "read" and arrivals[0].n_ranks == 8
        assert arrivals[1].block == KIB and arrivals[1].steps == 4

    def test_defaults_fill_short_entries(self):
        (a,) = TraceArrivals([(0.0, "write")], n_ranks=6, block=2 * KIB,
                             steps=5).jobs()
        assert (a.n_ranks, a.block, a.steps) == (6, 2 * KIB, 5)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals([(0.0, "append")]).jobs()


class TestJobsFromArrivals:
    def _arrivals(self, n=4):
        return [
            JobArrival(index=j, time=0.1 * j, op="write", n_ranks=4,
                       block=KIB, steps=2)
            for j in range(n)
        ]

    def test_striped_layout_colocates(self):
        jobs = jobs_from_arrivals(self._arrivals(), n_nodes=8)
        assert [j.placement for j in jobs] == [
            [0, 1, 2, 3], [1, 2, 3, 4], [2, 3, 4, 5], [3, 4, 5, 6]
        ]

    def test_packed_layout_disjoint_while_room(self):
        jobs = jobs_from_arrivals(self._arrivals(2), n_nodes=8, layout="packed")
        assert jobs[0].placement == [0, 1, 2, 3]
        assert jobs[1].placement == [4, 5, 6, 7]

    def test_regions_never_overlap(self):
        jobs = jobs_from_arrivals(self._arrivals(), n_nodes=8)
        for a, b in zip(jobs, jobs[1:]):
            assert b.offset == a.offset + a.region_bytes

    def test_metadata_carried_through(self):
        jobs = jobs_from_arrivals(self._arrivals(), n_nodes=8, mode="persistent")
        assert all(j.mode == "persistent" for j in jobs)
        assert [j.payload_seed for j in jobs] == [0, 1, 2, 3]
        assert [j.arrival for j in jobs] == [0.0, 0.1, 0.2, pytest.approx(0.3)]

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError):
            jobs_from_arrivals(self._arrivals(), n_nodes=8, layout="diagonal")
