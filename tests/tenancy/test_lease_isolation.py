"""Regression: one tenant's lease churn must not invalidate another's plans.

Before tenancy, the lease ledger was cluster-wide and every engine
listened to every grant/revoke/expire — correct with one job, but with
N tenants a busy borrower would flush every *other* tenant's plan cache
and persistent handles on each lease event.  These tests pin the filter
rule: a lease tagged with tenant T only invalidates engines (and
caches) owned by T; untagged leases and untenanted engines keep the old
everyone-invalidates behaviour.
"""

from __future__ import annotations

from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.mpi import SimComm

from tests.helpers import make_stack

KIB = 1024


def _cache_cfg() -> MCIOConfig:
    return MCIOConfig(
        msg_ind=4 * 1024 * 1024, mem_min=0, nah=4,
        cb_buffer_size=64 * KIB, plan_cache=True,
    )


def _two_tenant_stack():
    """One cluster, two engines with distinct tenant tags."""
    stack = make_stack(n_ranks=8, n_nodes=4, cores=2)
    comm_b = SimComm(stack.env, stack.cluster, [0, 0, 1, 1, 2, 2, 3, 3])
    engine_a = MemoryConsciousCollectiveIO(
        stack.comm, stack.pfs, _cache_cfg(), tenant="A"
    )
    engine_b = MemoryConsciousCollectiveIO(
        comm_b, stack.pfs, _cache_cfg(), tenant="B"
    )
    return stack, engine_a, engine_b


def _grant(stack, tenant):
    lease = stack.cluster.memory_ledger.grant(
        lender_node=0, borrower_rank=0, nbytes=64 * KIB,
        now=stack.env.now, term=10.0, tenant=tenant,
    )
    assert lease is not None
    return lease


class TestLeaseTenantTag:
    def test_lease_carries_tenant(self):
        stack = make_stack(n_ranks=4, n_nodes=2, cores=2)
        lease = _grant(stack, "A")
        assert lease.tenant == "A"
        assert _grant(stack, None).tenant is None

    def test_digest_filters_foreign_tenants(self):
        stack = make_stack(n_ranks=4, n_nodes=2, cores=2)
        _grant(stack, "A")
        _grant(stack, "B")
        _grant(stack, None)
        ledger = stack.cluster.memory_ledger
        assert len(ledger.digest()) == 3
        # tenant A sees its own leases and untagged ones, not B's
        assert len(ledger.digest(tenant="A")) == 2
        assert len(ledger.digest(tenant="B")) == 2


class TestCrossTenantIsolation:
    def test_foreign_grant_leaves_cache_alone(self):
        stack, engine_a, engine_b = _two_tenant_stack()
        _grant(stack, "B")
        assert engine_a.plan_cache.stats.invalidations == 0
        assert engine_b.plan_cache.stats.invalidations >= 1

    def test_foreign_revoke_leaves_handles_alone(self):
        stack, engine_a, engine_b = _two_tenant_stack()
        hits_a, hits_b = [], []
        engine_a.add_invalidation_listener(hits_a.append)
        engine_b.add_invalidation_listener(hits_b.append)
        lease = _grant(stack, "B")
        stack.cluster.memory_ledger.revoke(lease, now=stack.env.now, reason="test")
        assert hits_a == []
        assert [r for r in hits_b if r.startswith("lease-")]

    def test_untagged_lease_invalidates_everyone(self):
        stack, engine_a, engine_b = _two_tenant_stack()
        _grant(stack, None)
        assert engine_a.plan_cache.stats.invalidations >= 1
        assert engine_b.plan_cache.stats.invalidations >= 1

    def test_untenanted_engine_sees_tagged_leases(self):
        """Single-job setups (tenant=None) keep the old behaviour."""
        stack = make_stack(n_ranks=8, n_nodes=4, cores=2)
        engine = MemoryConsciousCollectiveIO(stack.comm, stack.pfs, _cache_cfg())
        _grant(stack, "A")
        assert engine.plan_cache.stats.invalidations >= 1

    def test_renew_release_never_invalidate(self):
        """Only grant/revoke/expire change placement inputs."""
        stack, engine_a, engine_b = _two_tenant_stack()
        lease = _grant(stack, "A")
        before = engine_a.plan_cache.stats.invalidations
        ledger = stack.cluster.memory_ledger
        ledger.renew(lease, now=stack.env.now, term=10.0)
        ledger.release(lease, now=stack.env.now)
        assert engine_a.plan_cache.stats.invalidations == before
