"""The tenancy sweep and the pipeline --tenants axis (scaled down)."""

from __future__ import annotations

from repro.experiments import pipeline as pipeline_mod
from repro.experiments import tenancy as tenancy_mod


def _small(jobs=1):
    return tenancy_mod.run(
        tenants=(1, 2),
        regimes=("variance",),
        policies=("free-for-all",),
        strategies=("mcio", "oblivious"),
        steps=1,
        seed=0,
        jobs=jobs,
    )


class TestTenancySweep:
    def test_single_tenant_is_interference_free(self):
        result = _small()
        for p in result.points:
            if p.tenants == 1:
                assert p.mean_slowdown == 1.0
                assert p.jain == 1.0

    def test_contention_and_sanity(self):
        result = _small()
        for p in result.points:
            assert p.mean_slowdown >= 1.0
            assert p.max_slowdown >= p.mean_slowdown
            assert 0.0 < p.jain <= 1.0
            assert 0.0 < p.pfs_utilization <= 1.0
            assert len(p.records) == p.tenants

    def test_sharded_run_byte_identical(self):
        assert _small(jobs=1).to_json_str() == _small(jobs=2).to_json_str()

    def test_same_mix_across_policies_and_strategies(self):
        """One (tenants, regime, seed) draws one arrival stream."""
        result = tenancy_mod.run(
            tenants=(2,), regimes=("uniform",),
            policies=("free-for-all", "fifo"), strategies=("mcio",),
            steps=1, seed=0,
        )
        mixes = {
            tuple((r["op"], r["arrived"], r["total_bytes"]) for r in p.records)
            for p in result.points
        }
        assert len(mixes) == 1


class TestPipelineTenants:
    def test_two_tenants_reports_fairness(self):
        result = pipeline_mod.run(steps=1, tenants=2)
        assert all(p.tenants == 2 for p in result.points)
        assert all(0.0 < p.fairness <= 1.0 for p in result.points)
        # the cross-mode datastore check inside run() already passed;
        # persistent handles replanned once per tenant
        for p in result.points:
            if p.mode != "blocking":
                assert p.replans == 2

    def test_single_tenant_unchanged(self):
        """tenants=1 keeps the original cells (defaults untouched)."""
        result = pipeline_mod.run(steps=1, tenants=1)
        assert all(p.tenants == 1 and p.fairness == 1.0 for p in result.points)
