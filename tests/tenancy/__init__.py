"""Multi-tenant layer tests."""
