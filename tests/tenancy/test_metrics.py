"""Fairness math and the scheduler-policy unit surface."""

from __future__ import annotations

import pytest

from repro.tenancy import (
    FairnessReport,
    FifoAdmission,
    FreeForAll,
    OstThrottle,
    SchedulerState,
    jain_index,
    resolve_policy,
)
from repro.tenancy.job import JobRecord


def _record(name, arrived, admitted, finished, nbytes=1000):
    return JobRecord(
        name=name, op="write", mode="blocking", steps=1, n_ranks=4,
        total_bytes=nbytes, arrived=arrived, admitted=admitted,
        finished=finished,
    )


class TestJainIndex:
    def test_even_allocation_is_one(self):
        assert jain_index([2.0, 2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_dominator_approaches_reciprocal(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_cases_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        xs = [1.0, 2.0, 3.0]
        assert jain_index(xs) == pytest.approx(jain_index([10 * x for x in xs]))


class TestFairnessReport:
    def test_build(self):
        shared = [_record("a", 0.0, 0.0, 4.0), _record("b", 1.0, 1.0, 3.0)]
        isolated = [_record("a", 0.0, 0.0, 2.0), _record("b", 0.0, 0.0, 2.0)]
        report = FairnessReport.build(shared, isolated, pfs_bandwidth=1000.0)
        assert report.slowdowns == (2.0, 1.0)
        assert report.mean_slowdown == pytest.approx(1.5)
        assert report.max_slowdown == 2.0
        assert report.jain == pytest.approx(jain_index([2.0, 1.0]))
        assert report.makespan == 4.0  # first arrival 0.0 .. last finish 4.0
        assert report.pfs_utilization == pytest.approx(2000 / (4.0 * 1000.0))

    def test_wait_excluded_from_slowdown(self):
        """Queueing shows up in wait/makespan, never in slowdown."""
        shared = [_record("a", 0.0, 5.0, 7.0)]  # waited 5s, ran 2s
        isolated = [_record("a", 0.0, 0.0, 2.0)]
        report = FairnessReport.build(shared, isolated, pfs_bandwidth=1.0)
        assert report.slowdowns == (1.0,)
        assert shared[0].wait == 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FairnessReport.build([_record("a", 0, 0, 1)], [], 1.0)


class TestPolicies:
    def _state(self, running=(), n_servers=4):
        return SchedulerState(
            now=0.0, running=tuple(running), waiting=("head",),
            n_servers=n_servers,
        )

    def test_free_for_all_always_admits(self):
        assert FreeForAll().admit(None, self._state(running=("a",) * 50))

    def test_fifo_width(self):
        fifo = FifoAdmission(width=2)
        assert fifo.admit(None, self._state(running=("a",)))
        assert not fifo.admit(None, self._state(running=("a", "b")))
        with pytest.raises(ValueError):
            FifoAdmission(width=0)

    def test_ost_throttle_tracks_servers(self):
        throttle = OstThrottle(jobs_per_ost=0.5)
        assert throttle.cap(4) == 2
        assert throttle.cap(16) == 8
        assert throttle.cap(1) == 1
        assert throttle.admit(None, self._state(running=("a",), n_servers=4))
        assert not throttle.admit(
            None, self._state(running=("a", "b"), n_servers=4)
        )

    def test_resolve_policy(self):
        assert resolve_policy("free-for-all").name == "free-for-all"
        assert resolve_policy("fifo").name == "fifo"
        assert resolve_policy("ost-throttle").name == "ost-throttle"
        with pytest.raises(ValueError):
            resolve_policy("lottery")
