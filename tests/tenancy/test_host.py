"""TenancyHost: determinism, co-location, faults, and mid-run arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.tenancy import (
    FairnessReport,
    FifoAdmission,
    FreeForAll,
    OstThrottle,
    TenancyHost,
    TenantJob,
    run_isolated,
)

KIB = 1024
BLOCK = 128 * KIB


def _spec(nodes: int = 8) -> ClusterSpec:
    return ClusterSpec(
        nodes=nodes,
        node=NodeSpec(
            cores=1,
            memory_bytes=10**9,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e6,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=5e5,
            request_overhead=1e-3,
            stripe_size=64 * KIB,
        ),
    )


def _jobs(n: int = 3, stagger: float = 0.05, **kw) -> list[TenantJob]:
    defaults = dict(block=BLOCK, steps=2)
    defaults.update(kw)
    return [
        TenantJob(
            name=f"job{j}",
            placement=[(j + i) % 8 for i in range(4)],
            arrival=j * stagger,
            offset=j * 4 * defaults["block"],
            payload_seed=j,
            **defaults,
        )
        for j in range(n)
    ]


def _run(jobs, policy=None, spec=None, seed=0):
    host = TenancyHost(spec or _spec(), seed=seed, policy=policy)
    for job in jobs:
        host.submit(job)
    return host, host.run()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        """Two identical submissions replay the exact record stream."""
        lines = []
        for _ in range(2):
            _, records = _run(_jobs())
            lines.append("\n".join(r.to_json_str() for r in records))
        assert lines[0] == lines[1]

    def test_policies_deterministic(self):
        for policy in (FreeForAll(), FifoAdmission(), OstThrottle()):
            a = [r.to_json_str() for r in _run(_jobs(), policy=policy)[1]]
            b = [r.to_json_str() for r in _run(_jobs(), policy=policy)[1]]
            assert a == b

    def test_single_tenant_matches_isolated(self):
        """With one tenant, shared == isolated: slowdown exactly 1."""
        job = _jobs(1)[0]
        host, records = _run([job])
        baseline = run_isolated(_spec(), job, seed=0)
        report = FairnessReport.build(records, [baseline], host.pfs_bandwidth)
        assert report.slowdowns == (1.0,)
        assert report.jain == 1.0


class TestSharedPlatform:
    def test_colocated_aggregators_roundtrip(self):
        """Tenants stacked on the same nodes both land correct bytes."""
        # identical placements: every job's aggregators share every host
        jobs = [
            TenantJob(
                name=f"job{j}", placement=[0, 1, 2, 3], block=BLOCK,
                steps=2, offset=j * 4 * BLOCK, payload_seed=j,
            )
            for j in range(2)
        ]
        host, records = _run(jobs)
        for job in jobs:
            for r in range(job.n_ranks):
                got = np.asarray(
                    host.pfs.datastore.read(job.offset + r * job.block, job.block)
                )
                assert np.array_equal(got, job.payload(r)), (job.name, r)

    def test_read_write_mix(self):
        jobs = _jobs(3)
        jobs[1] = TenantJob(
            name="job1", placement=jobs[1].placement, arrival=jobs[1].arrival,
            op="read", block=BLOCK, steps=2, offset=jobs[1].offset,
            payload_seed=1,
        )
        _, records = _run(jobs)
        assert [r.op for r in records] == ["write", "read", "write"]
        assert all(r.finished > r.admitted for r in records)

    def test_contention_slows_tenants_down(self):
        """Concurrent tenants cannot beat their isolated runs."""
        jobs = _jobs(3, stagger=0.0)
        host, records = _run(jobs)
        baselines = [run_isolated(_spec(), j, seed=0) for j in jobs]
        report = FairnessReport.build(records, baselines, host.pfs_bandwidth)
        assert all(s >= 1.0 for s in report.slowdowns)
        assert max(report.slowdowns) > 1.0
        assert 0.0 < report.jain <= 1.0

    def test_tenant_arriving_mid_shuffle(self):
        """A tenant that lands while another is mid-collective is undisturbed."""
        first = _jobs(1, steps=4)[0]
        solo_elapsed = run_isolated(_spec(), first, seed=0).elapsed
        late = TenantJob(
            name="late", placement=[4, 5, 6, 7], arrival=solo_elapsed / 3,
            block=BLOCK, steps=1, offset=10 * 4 * BLOCK, payload_seed=9,
        )
        host, records = _run([first, late])
        by_name = {r.name: r for r in records}
        assert by_name["late"].arrived == pytest.approx(solo_elapsed / 3)
        assert by_name["late"].admitted >= by_name["late"].arrived
        for job in (first, late):
            for r in range(job.n_ranks):
                got = np.asarray(
                    host.pfs.datastore.read(job.offset + r * job.block, job.block)
                )
                assert np.array_equal(got, job.payload(r))

    def test_node_failure_hits_both_tenants(self):
        """A node failing mid-run slows both tenants, corrupts neither."""
        jobs = _jobs(2, stagger=0.0)
        _, healthy = _run(jobs)
        spec = _spec()
        host = TenancyHost(spec, seed=0)
        for job in jobs:
            host.submit(job)
        # node 1 hosts ranks of both jobs (striped placement)
        schedule = FaultSchedule(
            [FaultEvent(time=0.5, kind="node_failure", target=1,
                        magnitude=4.0, duration=5.0)]
        )
        FaultInjector(host.env, host.cluster, host.pfs, schedule).start()
        faulted = host.run()
        for before, after in zip(healthy, faulted):
            assert after.finished >= before.finished
        assert any(
            after.finished > before.finished
            for before, after in zip(healthy, faulted)
        )
        for job in jobs:
            for r in range(job.n_ranks):
                got = np.asarray(
                    host.pfs.datastore.read(job.offset + r * job.block, job.block)
                )
                assert np.array_equal(got, job.payload(r))


class TestAdmission:
    def test_fifo_serializes(self):
        """width=1 FIFO: at most one tenant's run interval at a time."""
        _, records = _run(_jobs(3), policy=FifoAdmission())
        spans = sorted((r.admitted, r.finished) for r in records)
        for (_, end_prev), (start_next, _) in zip(spans, spans[1:]):
            assert start_next >= end_prev

    def test_ost_throttle_caps_concurrency(self):
        """4 OSTs at 0.5 jobs/OST -> at most 2 tenants at once."""
        _, records = _run(_jobs(4, stagger=0.0), policy=OstThrottle())
        times = sorted(
            {r.admitted for r in records} | {r.finished for r in records}
        )
        for t in times:
            running = sum(1 for r in records if r.admitted <= t < r.finished)
            assert running <= 2

    def test_waits_only_from_policy(self):
        _, records = _run(_jobs(3), policy=FreeForAll())
        assert all(r.wait == 0.0 for r in records)


class TestHostSurface:
    def test_duplicate_name_rejected(self):
        host = TenancyHost(_spec())
        host.submit(_jobs(1)[0])
        with pytest.raises(ValueError):
            host.submit(_jobs(1)[0])

    def test_host_single_use(self):
        host, _ = _run(_jobs(1))
        with pytest.raises(RuntimeError):
            host.run()
        with pytest.raises(RuntimeError):
            host.submit(_jobs(2)[1])

    def test_persistent_mode_records_replans(self):
        jobs = _jobs(2, mode="persistent")
        _, records = _run(jobs)
        assert all(r.mode == "persistent" for r in records)
        assert all(r.replans >= 1 for r in records)
        assert all(r.collectives == r.steps for r in records)
