"""Byte-accurate backing store for correctness-mode runs.

The timing model never needs real bytes, but the test suite does: after a
collective write, the file's contents must equal the logically expected
array byte-for-byte.  :class:`SparseFile` stores data in fixed-size chunks
keyed by chunk index, so a file can be logically huge while only written
regions consume memory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseFile"]


class SparseFile:
    """A sparse, growable byte file backed by chunked numpy arrays.

    Unwritten regions read back as zeros (like a POSIX sparse file).

    Parameters
    ----------
    chunk_size:
        Allocation granularity in bytes.
    """

    def __init__(self, chunk_size: int = 64 * 1024):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        self._chunks: dict[int, np.ndarray] = {}
        self._size = 0

    @property
    def size(self) -> int:
        """Logical file size (one past the highest byte ever written)."""
        return self._size

    @property
    def allocated_bytes(self) -> int:
        """Physical bytes held by chunks (sparseness measure)."""
        return len(self._chunks) * self.chunk_size

    # ------------------------------------------------------------------
    def write(self, offset: int, data: np.ndarray | bytes | bytearray) -> None:
        """Write `data` at byte `offset`."""
        if offset < 0:
            raise ValueError("negative offset")
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(
            data, np.ndarray
        ) else np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        n = buf.size
        if n == 0:
            return
        self._size = max(self._size, offset + n)
        pos = 0
        while pos < n:
            abs_off = offset + pos
            ci = abs_off // self.chunk_size
            within = abs_off - ci * self.chunk_size
            take = min(n - pos, self.chunk_size - within)
            chunk = self._chunks.get(ci)
            if chunk is None:
                chunk = np.zeros(self.chunk_size, dtype=np.uint8)
                self._chunks[ci] = chunk
            chunk[within : within + take] = buf[pos : pos + take]
            pos += take

    def read(self, offset: int, length: int) -> np.ndarray:
        """Read `length` bytes at `offset` (zeros where unwritten)."""
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        out = np.zeros(length, dtype=np.uint8)
        pos = 0
        while pos < length:
            abs_off = offset + pos
            ci = abs_off // self.chunk_size
            within = abs_off - ci * self.chunk_size
            take = min(length - pos, self.chunk_size - within)
            chunk = self._chunks.get(ci)
            if chunk is not None:
                out[pos : pos + take] = chunk[within : within + take]
            pos += take
        return out

    def truncate(self) -> None:
        """Discard all contents."""
        self._chunks.clear()
        self._size = 0
