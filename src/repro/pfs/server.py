"""I/O server (OST) model.

Each server owns a FIFO service queue (one request in service at a time by
default) and charges::

    requests * request_overhead + nbytes / server_bandwidth

The per-request overhead is the mechanism that makes many small requests
slower than one large request — the inefficiency collective I/O exists to
remove.
"""

from __future__ import annotations

from repro.sim import Environment, Resource

__all__ = ["IOServer"]


class IOServer:
    """One parallel-file-system object server.

    Parameters
    ----------
    env:
        Simulation environment.
    server_id:
        Index within the file system.
    bandwidth:
        Streaming bandwidth, bytes/second.
    request_overhead:
        Fixed seconds charged per discrete request.
    queue_depth:
        Concurrent requests in service (1 = strictly serial disk).
    """

    def __init__(
        self,
        env: Environment,
        server_id: int,
        bandwidth: float,
        request_overhead: float,
        queue_depth: int = 1,
        write_bandwidth_factor: float = 1.0,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if request_overhead < 0:
            raise ValueError("request_overhead must be >= 0")
        if not 0 < write_bandwidth_factor <= 1:
            raise ValueError("write_bandwidth_factor must be in (0, 1]")
        self.env = env
        self.server_id = int(server_id)
        self.bandwidth = float(bandwidth)
        self.request_overhead = float(request_overhead)
        self.write_bandwidth_factor = float(write_bandwidth_factor)
        self.queue = Resource(env, capacity=queue_depth, name=f"ost{server_id}")
        #: Totals for metrics.
        self.bytes_served = 0
        self.requests_served = 0

    def service_time(self, nbytes: int, requests: int = 1, write: bool = False) -> float:
        """Time to serve `requests` requests totalling `nbytes`."""
        if nbytes < 0 or requests < 0:
            raise ValueError("nbytes/requests must be >= 0")
        bw = self.bandwidth * (self.write_bandwidth_factor if write else 1.0)
        return requests * self.request_overhead + nbytes / bw

    def serve(self, nbytes: int, requests: int = 1, write: bool = False):
        """Process generator: queue for the server and hold it for service."""
        req = self.queue.request()
        yield req
        try:
            yield self.env.timeout(self.service_time(nbytes, requests, write=write))
            self.bytes_served += nbytes
            self.requests_served += requests
        finally:
            self.queue.release(req)
