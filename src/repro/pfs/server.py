"""I/O server (OST) model.

Each server owns a FIFO service queue (one request in service at a time by
default) and charges::

    requests * request_overhead + nbytes / server_bandwidth

The per-request overhead is the mechanism that makes many small requests
slower than one large request — the inefficiency collective I/O exists to
remove.

Fault model.  Real object servers degrade and disappear transiently
(failing RAID rebuilds, network partitions, controller resets), so the
server carries two injectable states:

* a **degradation factor** — service time is multiplied by it, modelling a
  slowed but live server;
* an **unavailable state** (outage windows, reference-counted so windows
  can overlap) — new requests are rejected with
  :class:`ServerUnavailableError` and, on entering an outage, queued
  waiters are failed too, so clients back off and retry instead of parking
  behind a dead queue.
"""

from __future__ import annotations

from repro.obs.tracer import PID_PFS
from repro.sim import Environment, Resource

__all__ = ["IOServer", "ServerUnavailableError"]


class ServerUnavailableError(RuntimeError):
    """The target I/O server is inside an outage window."""

    def __init__(self, server_id: int, message: str = ""):
        super().__init__(
            message or f"I/O server {server_id} is unavailable (outage)"
        )
        self.server_id = server_id


class IOServer:
    """One parallel-file-system object server.

    Parameters
    ----------
    env:
        Simulation environment.
    server_id:
        Index within the file system.
    bandwidth:
        Streaming bandwidth, bytes/second.
    request_overhead:
        Fixed seconds charged per discrete request.
    queue_depth:
        Concurrent requests in service (1 = strictly serial disk).
    """

    def __init__(
        self,
        env: Environment,
        server_id: int,
        bandwidth: float,
        request_overhead: float,
        queue_depth: int = 1,
        write_bandwidth_factor: float = 1.0,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if request_overhead < 0:
            raise ValueError("request_overhead must be >= 0")
        if not 0 < write_bandwidth_factor <= 1:
            raise ValueError("write_bandwidth_factor must be in (0, 1]")
        self.env = env
        self.server_id = int(server_id)
        self.bandwidth = float(bandwidth)
        self.request_overhead = float(request_overhead)
        self.write_bandwidth_factor = float(write_bandwidth_factor)
        self.queue = Resource(env, capacity=queue_depth, name=f"ost{server_id}")
        #: Totals for metrics.
        self.bytes_served = 0
        self.requests_served = 0
        #: Fault-model state and counters.
        self.degradation = 1.0
        self._outages = 0
        self.outage_rejections = 0

    # ------------------------------------------------------------------
    # fault-injection surface
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """False while at least one outage window is open."""
        return self._outages == 0

    def set_degradation(self, factor: float) -> None:
        """Set the service-time multiplier (1.0 = healthy)."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1.0")
        self.degradation = float(factor)

    def begin_outage(self) -> None:
        """Open an outage window; queued waiters are failed immediately."""
        self._outages += 1
        failed = self.queue.fail_waiters(
            ServerUnavailableError(self.server_id)
        )
        self.outage_rejections += failed

    def end_outage(self) -> None:
        """Close one outage window (windows may overlap)."""
        if self._outages <= 0:
            raise RuntimeError(
                f"end_outage without begin_outage on server {self.server_id}"
            )
        self._outages -= 1

    # ------------------------------------------------------------------
    def service_time(self, nbytes: int, requests: int = 1, write: bool = False) -> float:
        """Healthy-state time to serve `requests` requests totalling `nbytes`."""
        if nbytes < 0 or requests < 0:
            raise ValueError("nbytes/requests must be >= 0")
        bw = self.bandwidth * (self.write_bandwidth_factor if write else 1.0)
        return requests * self.request_overhead + nbytes / bw

    def serve(self, nbytes: int, requests: int = 1, write: bool = False):
        """Process generator: queue for the server and hold it for service.

        Raises :class:`ServerUnavailableError` if the server is inside an
        outage window when the request is issued or granted; clients are
        expected to back off and retry (see
        :class:`~repro.pfs.filesystem.RetryPolicy`).  Safe against
        interruption at any point: the queue slot is always reclaimed.
        """
        if not self.available:
            self.outage_rejections += 1
            raise ServerUnavailableError(self.server_id)
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        req = self.queue.request()
        try:
            yield req
            if tracer.enabled:
                t1 = tracer.now()
                if t1 > t0:
                    tracer.complete(
                        "pfs", "pfs.queue_wait", PID_PFS, self.server_id,
                        t0, t1 - t0,
                    )
            if not self.available:
                self.outage_rejections += 1
                raise ServerUnavailableError(self.server_id)
            t = self.service_time(nbytes, requests, write=write)
            # capture the service start: the degradation factor can change
            # mid-sleep (fault windows), so the span duration must be the
            # observed elapsed time, not recomputed from the end state
            t2 = tracer.now() if tracer.enabled else 0.0
            yield self.env.sleep(t * self.degradation)
            self.bytes_served += nbytes
            self.requests_served += requests
            if tracer.enabled:
                tracer.complete(
                    "pfs", "pfs.serve", PID_PFS, self.server_id,
                    t2, tracer.now() - t2,
                    bytes=nbytes, requests=requests,
                    write=write, degradation=self.degradation,
                )
        finally:
            self.queue.release(req)
