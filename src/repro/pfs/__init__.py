"""Simulated parallel file system (Lustre-like striping over I/O servers).

Substitutes for the paper's 600 TB Lustre / DDN storage (see DESIGN.md §2):
round-robin striping, per-server bandwidth and request overhead, FIFO
queueing, and an optional byte-accurate datastore for correctness runs.
"""

from .datastore import SparseFile
from .filesystem import ParallelFileSystem
from .layout import StripeLayout
from .server import IOServer

__all__ = ["IOServer", "ParallelFileSystem", "SparseFile", "StripeLayout"]
