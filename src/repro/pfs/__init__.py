"""Simulated parallel file system (Lustre-like striping over I/O servers).

Substitutes for the paper's 600 TB Lustre / DDN storage (see DESIGN.md §2):
round-robin striping, per-server bandwidth and request overhead, FIFO
queueing, and an optional byte-accurate datastore for correctness runs.
"""

from .datastore import SparseFile
from .filesystem import IOAbandonedError, ParallelFileSystem, RetryPolicy
from .layout import StripeLayout
from .server import IOServer, ServerUnavailableError

__all__ = [
    "IOAbandonedError",
    "IOServer",
    "ParallelFileSystem",
    "RetryPolicy",
    "ServerUnavailableError",
    "SparseFile",
    "StripeLayout",
]
