"""Parallel file system facade: striping + servers + optional real data.

Clients (rank processes) call :meth:`ParallelFileSystem.write_extent` /
:meth:`read_extent` for contiguous transfers (what aggregators issue) and
:meth:`write_pattern` / :meth:`read_pattern` for noncontiguous requests
(what independent I/O issues).  Timing charges:

* the client node's NIC (injection/ejection), so a node hosting many
  aggregators bottlenecks on its own interface;
* each touched server's FIFO queue: ``requests x overhead + bytes/bw``.

A contiguous extent costs one request per touched server; a noncontiguous
pattern costs one request per *block* — which is exactly why two-phase
aggregation wins, and what the simulator must preserve.

When a :class:`~repro.pfs.datastore.SparseFile` is attached, payloads are
stored/retrieved byte-accurately so tests can verify end-to-end data
integrity independent of timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster import Node
from repro.cluster.spec import StorageSpec
from repro.core.request import AccessPattern, Extent
from repro.sim import Environment

from .datastore import SparseFile
from .layout import StripeLayout
from .server import IOServer, ServerUnavailableError

__all__ = ["IOAbandonedError", "ParallelFileSystem", "RetryPolicy"]


class IOAbandonedError(RuntimeError):
    """A server request was abandoned after exhausting its retry budget."""

    def __init__(self, server_id: int, attempts: int):
        super().__init__(
            f"abandoned request to I/O server {server_id} "
            f"after {attempts} attempts"
        )
        self.server_id = server_id
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Degraded-mode client policy: per-request timeout + capped backoff.

    With a policy attached to the file system, every per-server request is
    raced against `request_timeout`; a timed-out or outage-rejected
    attempt backs off ``min(backoff_base * 2**k, backoff_cap)`` seconds
    and retries, up to `max_retries` times, after which the request is
    abandoned with :class:`IOAbandonedError`.  Retries and abandons are
    counted on the file system (``io_retries`` / ``io_abandons``).

    The policy is deliberately *timing-neutral in the absence of faults*:
    a request that completes before its timeout finishes at exactly the
    same simulated instant it would without the policy.
    """

    request_timeout: float = 5.0
    backoff_base: float = 0.01
    backoff_cap: float = 1.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before retry number `attempt` (1-based), seconds."""
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)

#: Above this many blocks, per-server accounting for noncontiguous patterns
#: switches from exact per-block mapping to an even approximation.
_EXACT_BLOCK_LIMIT = 65536


class ParallelFileSystem:
    """A striped parallel file system on the simulated cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Storage hardware description (servers, bandwidth, overhead, stripe).
    datastore:
        Optional byte-accurate backing file; attach one to run in
        correctness mode.
    queue_depth:
        Concurrent requests in service per server.
    """

    def __init__(
        self,
        env: Environment,
        spec: StorageSpec,
        datastore: Optional[SparseFile] = None,
        queue_depth: int = 1,
        retry: Optional[RetryPolicy] = None,
    ):
        self.env = env
        self.spec = spec
        self.layout = StripeLayout(spec.stripe_size, spec.servers)
        self.servers = [
            IOServer(
                env,
                server_id=i,
                bandwidth=spec.server_bandwidth,
                request_overhead=spec.request_overhead,
                queue_depth=queue_depth,
                write_bandwidth_factor=spec.write_bandwidth_factor,
            )
            for i in range(spec.servers)
        ]
        self.datastore = datastore
        self.bytes_written = 0
        self.bytes_read = 0
        #: Degraded-mode client policy; None = fail-fast (no retries).
        self.retry = retry
        #: Cumulative retry/abandon counters across all clients.
        self.io_retries = 0
        self.io_abandons = 0

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _per_server_plan(self, pattern: AccessPattern) -> list[tuple[int, int, int]]:
        """``(server, nbytes, requests)`` per touched server for a pattern."""
        if pattern.empty:
            return []
        n = self.layout.n_servers
        nbytes = np.zeros(n, dtype=np.int64)
        requests = np.zeros(n, dtype=np.int64)
        if pattern.block_count <= _EXACT_BLOCK_LIMIT:
            for seg in pattern.segments:
                for i in range(seg.count):
                    ext = seg.block_extent(i)
                    per = self.layout.per_server_bytes(ext)
                    nbytes += per
                    requests += per > 0
        else:
            # even approximation: blocks and bytes spread over all servers
            total = pattern.nbytes
            blocks = pattern.block_count
            base_b, rem_b = divmod(total, n)
            base_r, rem_r = divmod(blocks, n)
            nbytes[:] = base_b
            nbytes[:rem_b] += 1
            requests[:] = base_r
            requests[:rem_r] += 1
        return [
            (s, int(nbytes[s]), int(max(1, requests[s])))
            for s in range(n)
            if nbytes[s] > 0
        ]

    def _extent_plan(self, ext: Extent) -> list[tuple[int, int, int]]:
        """``(server, nbytes, requests)`` for one contiguous extent."""
        per = self.layout.per_server_bytes(ext)
        return [(s, int(per[s]), 1) for s in np.flatnonzero(per)]

    # ------------------------------------------------------------------
    # timing core
    # ------------------------------------------------------------------
    def _serve_with_retry(self, server: IOServer, nbytes: int, requests: int,
                          write: bool):
        """Process generator: one server request under the retry policy.

        Races the service against the per-request timeout; outage
        rejections and timeouts back off exponentially (capped) and
        retry.  Exhausting the budget raises :class:`IOAbandonedError`.
        """
        policy = self.retry
        env = self.env
        attempt = 0
        while True:
            attempt += 1
            proc = env.process(
                server.serve(nbytes, requests, write=write),
                name=f"pfs.ost{server.server_id}.try{attempt}",
            )
            timer = env.timeout(policy.request_timeout)
            try:
                which, _ = yield env.any_of([proc, timer])
            except ServerUnavailableError:
                pass  # rejected at issue or while queued: retry below
            else:
                if which == 0:
                    return  # served within the timeout
                if proc.is_alive:
                    proc.interrupt("pfs-request-timeout")
            if attempt > policy.max_retries:
                self.io_abandons += 1
                raise IOAbandonedError(server.server_id, attempt)
            self.io_retries += 1
            yield env.timeout(policy.backoff(attempt))

    def _do_io(self, client: Node, plan: list[tuple[int, int, int]], write: bool):
        """Run one client I/O against the servers in `plan`, in parallel.

        Holds the client NIC (tx for writes, rx for reads) for the wire
        time of the full transfer, concurrently with server service.
        """
        total = sum(nbytes for _, nbytes, _ in plan)
        if total == 0:
            return
        env = self.env

        def nic_hold():
            nic = client.nic_tx if write else client.nic_rx
            req = nic.request()
            yield req
            try:
                # storage traffic rides the same (possibly fenced) NIC as
                # rank-to-rank messages, so it degrades with the node
                yield env.sleep(
                    client.spec.nic_latency
                    + total * client.failure_slowdown
                    / client.spec.nic_bandwidth
                )
            finally:
                nic.release(req)

        procs = [env.process(nic_hold(), name="pfs.nic")]
        for server_id, nbytes, requests in plan:
            if self.retry is None:
                gen = self.servers[server_id].serve(nbytes, requests, write=write)
            else:
                gen = self._serve_with_retry(
                    self.servers[server_id], nbytes, requests, write
                )
            procs.append(env.process(gen, name=f"pfs.ost{server_id}"))
        yield env.all_of(procs)
        if write:
            self.bytes_written += total
        else:
            self.bytes_read += total

    # ------------------------------------------------------------------
    # contiguous ops (aggregator path)
    # ------------------------------------------------------------------
    def write_extent(
        self, client: Node, ext: Extent, payload: Optional[np.ndarray] = None
    ):
        """Process generator: write one contiguous extent from `client`."""
        if payload is not None:
            if len(payload) != ext.length:
                raise ValueError(
                    f"payload {len(payload)} B != extent {ext.length} B"
                )
            if self.datastore is not None:
                self.datastore.write(ext.offset, payload)
        yield from self._do_io(client, self._extent_plan(ext), write=True)

    def read_extent(self, client: Node, ext: Extent):
        """Process generator: read one contiguous extent; returns bytes or None.

        Returns a numpy uint8 array when a datastore is attached, else None.
        """
        yield from self._do_io(client, self._extent_plan(ext), write=False)
        if self.datastore is not None:
            return self.datastore.read(ext.offset, ext.length)
        return None

    # ------------------------------------------------------------------
    # noncontiguous ops (independent-I/O path)
    # ------------------------------------------------------------------
    def write_pattern(
        self, client: Node, pattern: AccessPattern, payload: Optional[np.ndarray] = None
    ):
        """Process generator: write a noncontiguous pattern request-by-request."""
        if payload is not None:
            if len(payload) != pattern.nbytes:
                raise ValueError(
                    f"payload {len(payload)} B != pattern {pattern.nbytes} B"
                )
            if self.datastore is not None:
                for off, ln, buf in pattern.iter_mapped_extents():
                    self.datastore.write(off, payload[buf : buf + ln])
        yield from self._do_io(client, self._per_server_plan(pattern), write=True)

    def read_pattern(self, client: Node, pattern: AccessPattern):
        """Process generator: read a noncontiguous pattern; returns packed bytes.

        Returns a numpy uint8 array (pattern order) when a datastore is
        attached, else None.
        """
        yield from self._do_io(client, self._per_server_plan(pattern), write=False)
        if self.datastore is not None:
            out = np.zeros(pattern.nbytes, dtype=np.uint8)
            for off, ln, buf in pattern.iter_mapped_extents():
                out[buf : buf + ln] = self.datastore.read(off, ln)
            return out
        return None

    # ------------------------------------------------------------------
    def estimate_extent_time(self, client: Node, ext: Extent) -> float:
        """Uncontended service time for a contiguous extent (planning aid)."""
        plan = self._extent_plan(ext)
        if not plan:
            return 0.0
        nic = client.spec.nic_latency + ext.length / client.spec.nic_bandwidth
        server = max(
            self.servers[s].service_time(nbytes, reqs) for s, nbytes, reqs in plan
        )
        return max(nic, server)

    def server_stats(self) -> list[tuple[int, int, int]]:
        """``(server_id, bytes_served, requests_served)`` per server."""
        return [(s.server_id, s.bytes_served, s.requests_served) for s in self.servers]
