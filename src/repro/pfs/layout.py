"""Round-robin striping layout (Lustre-style).

A file is split into fixed-size stripes assigned to I/O servers round-robin
(stripe ``k`` lives on server ``k mod n_servers``), matching the paper's
testbed ("files were striped over all I/O servers with the round robin
default striping strategy, 1 MB unit size").

Per-server byte counts for a contiguous extent are computed in
O(n_servers) arithmetic, not per-stripe loops, so multi-gigabyte domains
cost nothing to plan.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import Extent

__all__ = ["StripeLayout"]


class StripeLayout:
    """Maps file byte ranges onto striped I/O servers.

    Parameters
    ----------
    stripe_size:
        Bytes per stripe unit.
    n_servers:
        Number of I/O servers in the round-robin cycle.
    """

    def __init__(self, stripe_size: int, n_servers: int):
        if stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        self.stripe_size = int(stripe_size)
        self.n_servers = int(n_servers)

    # ------------------------------------------------------------------
    def stripe_of(self, offset: int) -> int:
        """Stripe index containing byte `offset`."""
        if offset < 0:
            raise ValueError("negative offset")
        return offset // self.stripe_size

    def server_of(self, offset: int) -> int:
        """Server holding byte `offset`."""
        return self.stripe_of(offset) % self.n_servers

    def stripe_extent(self, stripe: int) -> Extent:
        """The byte range of stripe index `stripe`."""
        return Extent(stripe * self.stripe_size, self.stripe_size)

    # ------------------------------------------------------------------
    def split_extent(self, ext: Extent) -> Iterator[tuple[int, Extent]]:
        """Yield ``(server, piece)`` per stripe piece of `ext`, in file order.

        Per-stripe iteration — use for data placement of bounded extents
        (collective-buffer sized), not for planning huge domains.
        """
        if ext.empty:
            return
        pos = ext.offset
        end = ext.end
        while pos < end:
            stripe = pos // self.stripe_size
            stripe_end = (stripe + 1) * self.stripe_size
            piece_end = min(end, stripe_end)
            yield (stripe % self.n_servers, Extent(pos, piece_end - pos))
            pos = piece_end

    def per_server_bytes(self, ext: Extent) -> np.ndarray:
        """Bytes of `ext` landing on each server — O(n_servers) arithmetic."""
        out = np.zeros(self.n_servers, dtype=np.int64)
        if ext.empty:
            return out
        ss = self.stripe_size
        k0 = ext.offset // ss
        k1 = (ext.end - 1) // ss
        if k0 == k1:
            out[k0 % self.n_servers] = ext.length
            return out
        # full assignment assuming every stripe fully covered ...
        n_stripes = k1 - k0 + 1
        full_cycles, rem = divmod(n_stripes, self.n_servers)
        out[:] = full_cycles * ss
        # ... the `rem` extra stripes start at server k0 % n
        first = k0 % self.n_servers
        for i in range(rem):
            out[(first + i) % self.n_servers] += ss
        # correct the partial first and last stripes
        head_cut = ext.offset - k0 * ss
        out[k0 % self.n_servers] -= head_cut
        tail_cut = (k1 + 1) * ss - ext.end
        out[k1 % self.n_servers] -= tail_cut
        return out

    def servers_touched(self, ext: Extent) -> list[int]:
        """Servers holding at least one byte of `ext`."""
        return [int(s) for s in np.flatnonzero(self.per_server_bytes(ext))]

    def align_down(self, offset: int) -> int:
        """Largest stripe boundary <= `offset`."""
        return (offset // self.stripe_size) * self.stripe_size

    def align_up(self, offset: int) -> int:
        """Smallest stripe boundary >= `offset`."""
        return -(-offset // self.stripe_size) * self.stripe_size
