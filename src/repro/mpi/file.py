"""MPI-IO-style file interface over the collective-I/O engines.

ROMIO sits behind ``MPI_File_open`` / ``MPI_File_set_view`` /
``MPI_File_write_all``; this module provides the same ergonomics so
application-style code reads like MPI-IO:

>>> fh = SimFile.open(comm, engine)                   # collective
>>> # inside a rank process:
>>> fh.set_view(ctx, subarray_view_3d(...))
>>> yield from fh.write_all(ctx, payload)             # collective write
>>> data = yield from fh.read_all(ctx)                # collective read
>>> yield from fh.write_at(ctx, offset, payload)      # independent
>>> fh.close(ctx)

``write_all``/``read_all`` route through the file's collective engine
(two-phase or MCIO); ``write_at``/``read_at`` issue independent requests
straight to the file system, like the POSIX path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.request import AccessPattern, Extent

from .comm import RankContext, SimComm

__all__ = ["SimFile"]


class SimFile:
    """A shared file handle bound to a communicator and an engine.

    Parameters
    ----------
    comm:
        The communicator whose ranks share the file.
    engine:
        A collective-I/O engine (``TwoPhaseCollectiveIO``,
        ``MemoryConsciousCollectiveIO``) providing ``write``/``read``
        and carrying the file system.
    """

    def __init__(self, comm: SimComm, engine):
        self.comm = comm
        self.engine = engine
        self.pfs = engine.pfs
        self._views: dict[int, AccessPattern] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, comm: SimComm, engine) -> "SimFile":
        """Collectively open the shared file (all ranks get the handle)."""
        return cls(comm, engine)

    def set_view(self, ctx: RankContext, pattern: AccessPattern) -> None:
        """Set this rank's file view (like MPI_File_set_view)."""
        self._check_open()
        self._views[ctx.rank] = pattern

    def view(self, ctx: RankContext) -> AccessPattern:
        """This rank's current view (empty pattern if never set)."""
        return self._views.get(ctx.rank, AccessPattern(()))

    # ------------------------------------------------------------------
    # collective data operations
    # ------------------------------------------------------------------
    def write_all(self, ctx: RankContext, payload: Optional[np.ndarray] = None):
        """Process generator: collective write of this rank's view."""
        self._check_open()
        return (yield from self.engine.write(ctx, self.view(ctx), payload))

    def read_all(self, ctx: RankContext, payload: Optional[np.ndarray] = None):
        """Process generator: collective read of this rank's view."""
        self._check_open()
        return (yield from self.engine.read(ctx, self.view(ctx), payload))

    # ------------------------------------------------------------------
    # independent data operations
    # ------------------------------------------------------------------
    def write_at(self, ctx: RankContext, offset: int, payload: np.ndarray):
        """Process generator: independent contiguous write at `offset`."""
        self._check_open()
        ext = Extent(offset, len(payload))
        yield from self.pfs.write_extent(ctx.node, ext, np.asarray(payload, np.uint8))

    def read_at(self, ctx: RankContext, offset: int, nbytes: int):
        """Process generator: independent contiguous read; returns bytes."""
        self._check_open()
        return (yield from self.pfs.read_extent(ctx.node, Extent(offset, nbytes)))

    # ------------------------------------------------------------------
    def sync(self, ctx: RankContext):
        """Process generator: barrier-like flush (MPI_File_sync)."""
        self._check_open()
        yield from self.comm.barrier(ctx)

    def close(self, ctx: RankContext) -> None:
        """Close this rank's handle; the file closes when all ranks did."""
        self._views.pop(ctx.rank, None)
        # the handle stays usable for other ranks until everyone closed;
        # tracking is intentionally loose, matching MPI's per-rank close
        if not self._views:
            self._closed = True

    @property
    def size(self) -> int:
        """Current file size (0 without a datastore)."""
        store = self.pfs.datastore
        return store.size if store is not None else 0

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O on a closed SimFile")
