"""MPI-IO-style file interface over the collective-I/O engines.

ROMIO sits behind ``MPI_File_open`` / ``MPI_File_set_view`` /
``MPI_File_write_all``; this module provides the same ergonomics so
application-style code reads like MPI-IO:

>>> fh = SimFile.open(comm, engine)                   # collective
>>> # inside a rank process:
>>> fh.set_view(ctx, subarray_view_3d(...))
>>> yield from fh.write_all(ctx, payload)             # collective write
>>> data = yield from fh.read_all(ctx)                # collective read
>>> yield from fh.write_at(ctx, offset, payload)      # independent
>>> fh.close(ctx)

``write_all``/``read_all`` route through the file's collective engine
(two-phase or MCIO); ``write_at``/``read_at`` issue independent requests
straight to the file system, like the POSIX path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.persistent import PersistentCollective
from repro.core.request import AccessPattern, Extent

from .comm import RankContext, SimComm
from .request import Request

__all__ = ["SimFile"]


class SimFile:
    """A shared file handle bound to a communicator and an engine.

    Parameters
    ----------
    comm:
        The communicator whose ranks share the file.
    engine:
        A collective-I/O engine (``TwoPhaseCollectiveIO``,
        ``MemoryConsciousCollectiveIO``) providing ``write``/``read``
        and carrying the file system.
    """

    def __init__(self, comm: SimComm, engine):
        self.comm = comm
        self.engine = engine
        self.pfs = engine.pfs
        self._views: dict[int, AccessPattern] = {}
        self._closed = False
        #: Shared persistent-collective handles, in init-call order.
        self._pcs: list = []
        self._pc_seq: dict[int, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, comm: SimComm, engine) -> "SimFile":
        """Collectively open the shared file (all ranks get the handle)."""
        return cls(comm, engine)

    def set_view(self, ctx: RankContext, pattern: AccessPattern) -> None:
        """Set this rank's file view (like MPI_File_set_view)."""
        self._check_open()
        self._views[ctx.rank] = pattern

    def view(self, ctx: RankContext) -> AccessPattern:
        """This rank's current view (empty pattern if never set)."""
        return self._views.get(ctx.rank, AccessPattern(()))

    # ------------------------------------------------------------------
    # collective data operations
    # ------------------------------------------------------------------
    def write_all(self, ctx: RankContext, payload: Optional[np.ndarray] = None):
        """Process generator: collective write of this rank's view."""
        self._check_open()
        return (yield from self.engine.write(ctx, self.view(ctx), payload))

    def read_all(self, ctx: RankContext, payload: Optional[np.ndarray] = None):
        """Process generator: collective read of this rank's view."""
        self._check_open()
        return (yield from self.engine.read(ctx, self.view(ctx), payload))

    # ------------------------------------------------------------------
    # nonblocking collective data operations
    # ------------------------------------------------------------------
    def iwrite_all(
        self, ctx: RankContext, payload: Optional[np.ndarray] = None
    ) -> Request:
        """Nonblocking collective write; returns a :class:`Request`.

        The operation runs as a child process of the calling rank —
        overlap it with computation, then ``yield from req.wait(ctx)``.
        Waiting immediately after issue is equivalent to ``write_all``.
        """
        self._check_open()
        return Request(
            ctx.spawn(
                self.engine.write(ctx, self.view(ctx), payload),
                name=f"rank{ctx.rank}.iwrite",
            )
        )

    def iread_all(
        self, ctx: RankContext, payload: Optional[np.ndarray] = None
    ) -> Request:
        """Nonblocking collective read; the request's result is the data."""
        self._check_open()
        return Request(
            ctx.spawn(
                self.engine.read(ctx, self.view(ctx), payload),
                name=f"rank{ctx.rank}.iread",
            )
        )

    # ------------------------------------------------------------------
    # persistent collective data operations
    # ------------------------------------------------------------------
    def write_all_init(
        self, ctx: Optional[RankContext] = None, overlap: bool = True
    ) -> PersistentCollective:
        """Create a persistent collective write on this file's views.

        Collective, like ``MPI_File_write_all_init``: either call once
        outside rank processes (the handle is shared like the file), or
        call from *every* rank's process passing `ctx` — matching init
        calls (same order on every rank) return the same shared handle.
        Each timestep then runs ``pc.start(ctx, payload)`` followed by
        ``yield from pc.wait(ctx)``.  With `overlap` the replay uses the
        engine's pipelined executor (shuffle of round t over the PFS
        drain of round t-1); without it the replay is bit-identical to
        a blocking ``write_all`` minus the re-planning preamble.
        """
        return self._persistent_init(ctx, "write", overlap)

    def read_all_init(
        self, ctx: Optional[RankContext] = None, overlap: bool = True
    ) -> PersistentCollective:
        """Create a persistent collective read on this file's views."""
        return self._persistent_init(ctx, "read", overlap)

    def _persistent_init(
        self, ctx: Optional[RankContext], op: str, overlap: bool
    ) -> PersistentCollective:
        self._check_open()
        if ctx is None:
            return PersistentCollective(self, op, overlap=overlap)
        # per-rank call-order matching: rank r's i-th init call joins the
        # shared i-th handle (the MPI collective-ordering contract)
        seq = self._pc_seq.get(ctx.rank, 0)
        self._pc_seq[ctx.rank] = seq + 1
        if seq == len(self._pcs):
            self._pcs.append(PersistentCollective(self, op, overlap=overlap))
        pc = self._pcs[seq]
        if pc.op != op or pc.overlap != overlap:
            raise ValueError(
                f"rank {ctx.rank}: persistent init #{seq} mismatches other "
                f"ranks' ({pc.op}/overlap={pc.overlap} vs {op}/overlap={overlap})"
            )
        return pc

    # ------------------------------------------------------------------
    # independent data operations
    # ------------------------------------------------------------------
    def write_at(self, ctx: RankContext, offset: int, payload: np.ndarray):
        """Process generator: independent contiguous write at `offset`."""
        self._check_open()
        ext = Extent(offset, len(payload))
        yield from self.pfs.write_extent(ctx.node, ext, np.asarray(payload, np.uint8))

    def read_at(self, ctx: RankContext, offset: int, nbytes: int):
        """Process generator: independent contiguous read; returns bytes."""
        self._check_open()
        return (yield from self.pfs.read_extent(ctx.node, Extent(offset, nbytes)))

    # ------------------------------------------------------------------
    def sync(self, ctx: RankContext):
        """Process generator: barrier-like flush (MPI_File_sync)."""
        self._check_open()
        yield from self.comm.barrier(ctx)

    def close(self, ctx: RankContext) -> None:
        """Close this rank's handle; the file closes when all ranks did."""
        self._views.pop(ctx.rank, None)
        # the handle stays usable for other ranks until everyone closed;
        # tracking is intentionally loose, matching MPI's per-rank close
        if not self._views:
            self._closed = True

    @property
    def size(self) -> int:
        """Current file size (0 without a datastore)."""
        store = self.pfs.datastore
        return store.size if store is not None else 0

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O on a closed SimFile")
