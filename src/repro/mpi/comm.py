"""Simulated MPI communicator over the cluster model.

Ranks are discrete-event processes; :class:`SimComm` gives them the MPI
surface that ROMIO-style collective I/O is written against:

* point-to-point ``send``/``recv``/``isend`` with tag matching, charged on
  the cluster network (NIC contention, intra-node shared-memory path);
* group collectives (``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``alltoall``, ``allreduce``) with value semantics identical to MPI and a
  binomial-tree time charge — these carry *metadata* (offset lists, sizes);
  bulk shuffle data always moves through explicit p2p so contention and
  memory effects are simulated per message;
* sub-groups (:meth:`SimComm.group`) so MCIO's aggregation groups can run
  their own collectives independently, like a communicator split.

All calls taking a ``ctx`` are generators and must be ``yield from``-ed
inside the calling rank's process.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Optional, Sequence

from repro.cluster import Cluster, Node
from repro.sim import Environment, Event, Process

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "RankContext", "CommGroup", "SimComm"]


class _AnySentinel:
    def __init__(self, label: str):
        self._label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._label


#: Wildcard source for :meth:`SimComm.recv`.
ANY_SOURCE = _AnySentinel("ANY_SOURCE")
#: Wildcard tag for :meth:`SimComm.recv`.
ANY_TAG = _AnySentinel("ANY_TAG")


@dataclass(frozen=True)
class Message:
    """A delivered point-to-point message."""

    source: int
    tag: int
    nbytes: int
    payload: Any = None


@dataclass
class RankContext:
    """Per-rank handle passed to SPMD process functions."""

    comm: "SimComm"
    rank: int

    @property
    def env(self) -> Environment:
        """The simulation environment."""
        return self.comm.env

    @property
    def node(self) -> Node:
        """The node this rank runs on."""
        return self.comm.node_of_rank(self.rank)

    @property
    def size(self) -> int:
        """World size."""
        return self.comm.size

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run `generator` as a concurrent sub-process of this rank."""
        return self.comm.env.process(generator, name=name or f"rank{self.rank}.sub")


class CommGroup:
    """An ordered subset of world ranks with its own collective context.

    A ``range`` is accepted and kept as-is: the world group of a
    million-rank communicator must not materialise a million-entry tuple
    and rank->index dict just to answer O(1) membership questions.
    """

    _next_gid = 1

    def __init__(self, ranks: Sequence[int], gid: Optional[int] = None):
        if isinstance(ranks, range):
            self.ranks: Sequence[int] = ranks
            self._index: Optional[dict[int, int]] = None
        else:
            self.ranks = tuple(ranks)
            if len(set(self.ranks)) != len(self.ranks):
                raise ValueError("duplicate ranks in group")
            self._index = {r: i for i, r in enumerate(self.ranks)}
        if gid is None:
            gid = CommGroup._next_gid
            CommGroup._next_gid += 1
        self.gid = gid

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.ranks)

    def index_of(self, rank: int) -> int:
        """Position of `rank` inside the group."""
        if self._index is None:
            return self.ranks.index(rank)  # range.index is O(1)
        return self._index[rank]

    def __contains__(self, rank: int) -> bool:
        if self._index is None:
            return rank in self.ranks  # range membership is O(1)
        return rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommGroup gid={self.gid} size={self.size}>"


class _LazyDequeMap(dict):
    """``{rank: deque}`` materialising entries on first touch.

    Mailboxes and receive-post queues used to be dense
    ``list[deque]``s; at 10^6 ranks that is a million deques allocated
    up front even though the vectorized execution path never runs a
    single rank coroutine.  Indexing semantics are unchanged — every
    access site indexes a specific rank, nothing iterates the map.
    """

    __slots__ = ()

    def __missing__(self, rank):
        value = self[rank] = deque()
        return value


@dataclass
class _CollectiveState:
    event: Event
    values: dict[int, Any] = field(default_factory=dict)
    nbytes_max: int = 0
    #: Per-destination-node paged flags deposited by
    #: :meth:`SimComm.staged_batched_send` callers (or-merged).
    paged_map: dict[int, bool] = field(default_factory=dict)


class SimComm:
    """MPI-like runtime binding ranks to cluster nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    cluster:
        The simulated platform.
    placement:
        ``placement[rank]`` = node id, e.g. from
        :func:`repro.cluster.block_placement`.
    metadata_bandwidth:
        Effective bytes/second used for collective metadata time charges.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        placement: Sequence[int],
        metadata_bandwidth: float = 1e9,
    ):
        from repro.cluster.placement import validate_placement

        validate_placement(placement, len(cluster.nodes), cluster.spec.node.cores)
        self.env = env
        self.cluster = cluster
        self.placement = list(placement)
        self.size = len(placement)
        self.metadata_bandwidth = float(metadata_bandwidth)
        self.world = CommGroup(range(self.size), gid=0)
        self._mail: Mapping[int, deque[Message]] = _LazyDequeMap()
        self._recv_posts: Mapping[int, deque[tuple[Event, Any, Any]]] = (
            _LazyDequeMap()
        )
        #: Counting receives posted by :meth:`recv_many`, per rank.
        self._drain_posts: Mapping[int, deque[list]] = _LazyDequeMap()
        self._coll_state: dict[tuple[str, int, int], _CollectiveState] = {}
        self._coll_seq: dict[tuple[int, str, int], int] = {}
        #: In-flight :meth:`staged_batched_send` rendezvous, by caller key.
        self._stage_state: dict[Any, _CollectiveState] = {}

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def node_of_rank(self, rank: int) -> Node:
        """The node object hosting `rank`."""
        return self.cluster.nodes[self.placement[rank]]

    def node_id_of_rank(self, rank: int) -> int:
        """The node id hosting `rank`."""
        return self.placement[rank]

    def ranks_on_node(self, node_id: int) -> list[int]:
        """All ranks placed on `node_id`, in rank order."""
        return [r for r in range(self.size) if self.placement[r] == node_id]

    def group(self, ranks: Sequence[int]) -> CommGroup:
        """Create a collective sub-group (like MPI_Comm_split)."""
        for r in ranks:
            if not 0 <= r < self.size:
                raise ValueError(f"rank {r} out of range")
        return CommGroup(tuple(ranks))

    # ------------------------------------------------------------------
    # SPMD launch
    # ------------------------------------------------------------------
    def launch(
        self, main: Callable[[RankContext], Generator], ranks: Optional[Sequence[int]] = None
    ) -> list[Process]:
        """Start ``main(ctx)`` as a process on every rank (or on `ranks`)."""
        targets = range(self.size) if ranks is None else ranks
        procs = []
        for rank in targets:
            ctx = RankContext(self, rank)
            procs.append(self.env.process(main(ctx), name=f"rank{rank}"))
        return procs

    def run_spmd(self, main: Callable[[RankContext], Generator]) -> list[Any]:
        """Launch `main` on all ranks, run to completion, return rank results."""
        procs = self.launch(main)
        done = self.env.all_of(procs)
        self.env.run(until=done)
        return [p.value for p in procs]

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(
        self,
        ctx: RankContext,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        paged_dst: bool = False,
    ):
        """Process generator: blocking send of `nbytes` to `dest`.

        Completion means the data has crossed the network (eager protocol);
        matching order at the receiver is arrival order.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid dest rank {dest}")
        src_node = self.node_of_rank(ctx.rank)
        dst_node = self.node_of_rank(dest)
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        yield from self.cluster.network.transfer(
            src_node, dst_node, nbytes, paged_dst=paged_dst
        )
        self._deliver(dest, Message(ctx.rank, tag, nbytes, payload))
        if tracer.enabled:
            tracer.complete(
                "comm", "comm.send",
                self.placement[ctx.rank], ctx.rank,
                t0, tracer.now() - t0,
                dest=dest, bytes=nbytes, tag=tag,
            )

    def isend(
        self,
        ctx: RankContext,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        paged_dst: bool = False,
    ) -> Process:
        """Non-blocking send; returns a joinable :class:`Process`."""
        return ctx.spawn(
            self.send(ctx, dest, nbytes, tag=tag, payload=payload, paged_dst=paged_dst),
            name=f"rank{ctx.rank}.isend->{dest}",
        )

    def batched_send(
        self,
        ctx: RankContext,
        items: Sequence[tuple[int, int, int, Any, Any]],
        paged_dst: bool = False,
    ):
        """Process generator: several messages as one aggregated transfer.

        `items` is a sequence of ``(source, dest, nbytes, tag, payload)``
        tuples.  All destinations must live on one node; the physical
        transfer leaves the *calling* rank's node as a single
        :meth:`~repro.cluster.network.Network.batched_transfer` (the
        closed-form serialization model), after which every message is
        delivered individually with its own logical source and tag, in
        item order.  Matching semantics at each receiver are identical to
        `len(items)` back-to-back :meth:`send` calls; only the number of
        simulated wire events differs.
        """
        if not items:
            return
        dst_nodes = {self.node_id_of_rank(dest) for _, dest, _, _, _ in items}
        if len(dst_nodes) != 1:
            raise ValueError(
                f"batched_send requires a single destination node, got {dst_nodes}"
            )
        src_node = self.node_of_rank(ctx.rank)
        dst_nid = dst_nodes.pop()
        dst_node = self.cluster.nodes[dst_nid]
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        yield from self.cluster.network.batched_transfer(
            src_node, dst_node, [nbytes for _, _, nbytes, _, _ in items],
            paged_dst=paged_dst,
        )
        for source, dest, nbytes, tag, payload in items:
            self._deliver(dest, Message(source, tag, nbytes, payload))
        if tracer.enabled:
            tracer.complete(
                "comm", "comm.batched_send",
                self.placement[ctx.rank], ctx.rank,
                t0, tracer.now() - t0,
                dst_node=dst_nid, messages=len(items),
                bytes=sum(nbytes for _, _, nbytes, _, _ in items),
            )

    def staged_batched_send(
        self,
        ctx: RankContext,
        key: Any,
        n_expected: int,
        items: Any,
        paged_dst: bool = False,
    ):
        """Process generator: co-located senders pool one wire transfer.

        All `n_expected` participants must live on the calling rank's
        node and deposit — under the same `key`, unique per logical
        exchange — either one ``(source, dest, nbytes, tag, payload)``
        item or a sequence of them (one deposit per rank either way,
        so a sender's whole round fan-out costs a single rendezvous).
        The last depositor charges the node's staging cost — every
        other rank's bytes hop the intra-node path once, as a single
        closed-form intra-node
        :meth:`~repro.cluster.network.Network.batched_transfer` — and
        then ships the pooled items with one :meth:`batched_send` per
        destination node (ascending node id, items in source-rank
        order).  Every participant resumes when the last wire transfer
        completes, mirroring the blocking-send semantics of the
        per-message path.

        `paged_dst` may be a bool (applied to every destination node) or
        a ``{node_id: bool}`` mapping; mapping entries from all
        depositors are or-merged per destination node, letting one
        rendezvous carry transfers toward a mix of healthy and
        overcommitted aggregator hosts.
        """
        state = self._stage_state.get(key)
        if state is None:
            state = _CollectiveState(event=self.env.event())
            self._stage_state[key] = state
        if isinstance(paged_dst, Mapping):
            for nid, flag in paged_dst.items():
                state.paged_map[nid] = state.paged_map.get(nid, False) or bool(flag)
            paged_dst = False
        if items and isinstance(items[0], int):
            items = (items,)  # a single bare item tuple
        state.values[ctx.rank] = items
        if len(state.values) == n_expected:
            del self._stage_state[key]
            all_items = []
            for r in sorted(state.values):
                all_items.extend(state.values[r])
            src_node = self.node_of_rank(ctx.rank)
            stage_sizes = [
                nbytes
                for source, _, nbytes, _, _ in all_items
                if source != ctx.rank
            ]
            by_dst: dict[int, list] = {}
            for it in all_items:
                by_dst.setdefault(self.node_id_of_rank(it[1]), []).append(it)

            def _ship(event):
                tracer = self.env.tracer
                t0 = tracer.now() if tracer.enabled else 0.0
                if stage_sizes:
                    yield from self.cluster.network.batched_transfer(
                        src_node, src_node, stage_sizes
                    )
                for nid in sorted(by_dst):
                    yield from self.batched_send(
                        ctx,
                        by_dst[nid],
                        paged_dst=state.paged_map.get(nid, paged_dst),
                    )
                event.succeed()
                if tracer.enabled:
                    tracer.complete(
                        "comm", "comm.stage.ship",
                        self.placement[ctx.rank], ctx.rank,
                        t0, tracer.now() - t0,
                        messages=len(all_items),
                        bytes=sum(it[2] for it in all_items),
                        staged_bytes=sum(stage_sizes),
                        dst_nodes=len(by_dst),
                    )

            self.env.process(_ship(state.event), name=f"stage.{key}")
        yield state.event

    def recv(self, ctx: RankContext, source: Any = ANY_SOURCE, tag: Any = ANY_TAG):
        """Process generator: blocking receive; returns a :class:`Message`."""
        mail = self._mail[ctx.rank]
        for i, msg in enumerate(mail):
            if self._matches(msg, source, tag):
                del mail[i]
                return msg
        ev = self.env.event()
        self._recv_posts[ctx.rank].append((ev, source, tag))
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        msg = yield ev
        if tracer.enabled:
            tracer.complete(
                "comm", "comm.recv.wait",
                self.placement[ctx.rank], ctx.rank,
                t0, tracer.now() - t0,
                source=msg.source, bytes=msg.nbytes, tag=msg.tag,
            )
        return msg

    def recv_many(
        self,
        ctx: RankContext,
        count: int,
        source: Any = ANY_SOURCE,
        tag: Any = ANY_TAG,
    ):
        """Process generator: blocking receive of `count` matching messages.

        Semantically equivalent to `count` back-to-back :meth:`recv`
        calls with the same `source`/`tag` (messages are returned in
        arrival order and matched with the same rules), but the waiter
        posts a single counting receive instead of re-posting one event
        per message — the aggregator-side drain of a batched shuffle
        round.  Returns the list of :class:`Message` objects.
        """
        if count <= 0:
            return []
        got: list[Message] = []
        mail = self._mail[ctx.rank]
        if mail:
            i = 0
            while i < len(mail) and len(got) < count:
                if self._matches(mail[i], source, tag):
                    got.append(mail[i])
                    del mail[i]
                else:
                    i += 1
        if len(got) == count:
            return got
        ev = self.env.event()
        # [event, source, tag, remaining, collected]: _deliver fills
        # `collected` in place and fires the event on the last message
        self._drain_posts[ctx.rank].append([ev, source, tag, count - len(got), got])
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        yield ev
        if tracer.enabled:
            tracer.complete(
                "comm", "comm.recv_many.wait",
                self.placement[ctx.rank], ctx.rank,
                t0, tracer.now() - t0,
                messages=count, bytes=sum(m.nbytes for m in got),
            )
        return got

    def _deliver(self, dest: int, msg: Message) -> None:
        posts = self._recv_posts[dest]
        for i, (ev, source, tag) in enumerate(posts):
            if self._matches(msg, source, tag):
                del posts[i]
                ev.succeed(msg)
                return
        drains = self._drain_posts[dest]
        if drains:
            for i, entry in enumerate(drains):
                if self._matches(msg, entry[1], entry[2]):
                    entry[4].append(msg)
                    entry[3] -= 1
                    if entry[3] == 0:
                        del drains[i]
                        entry[0].succeed(entry[4])
                    return
        self._mail[dest].append(msg)

    @staticmethod
    def _matches(msg: Message, source: Any, tag: Any) -> bool:
        if source is not ANY_SOURCE and msg.source != source:
            return False
        if tag is not ANY_TAG and msg.tag != tag:
            return False
        return True

    # ------------------------------------------------------------------
    # collectives (metadata plane)
    # ------------------------------------------------------------------
    def _collective(
        self, ctx: RankContext, op: str, group: Optional[CommGroup], value: Any, nbytes: int
    ):
        """Shared rendezvous machinery for all collectives.

        Returns the dict of all participants' deposited values (keyed by
        rank), after charging a binomial-tree latency + metadata transfer.
        """
        grp = group if group is not None else self.world
        if ctx.rank not in grp:
            raise ValueError(f"rank {ctx.rank} not in group {grp!r}")
        seq_key = (ctx.rank, op, grp.gid)
        seq = self._coll_seq.get(seq_key, 0)
        self._coll_seq[seq_key] = seq + 1

        state_key = (op, grp.gid, seq)
        state = self._coll_state.get(state_key)
        if state is None:
            state = _CollectiveState(event=self.env.event())
            self._coll_state[state_key] = state
        if ctx.rank in state.values:
            raise RuntimeError(f"rank {ctx.rank} re-entered collective {state_key}")
        state.values[ctx.rank] = value
        state.nbytes_max = max(state.nbytes_max, nbytes)

        if len(state.values) == grp.size:
            del self._coll_state[state_key]
            hops = max(1, (grp.size - 1).bit_length()) if grp.size > 1 else 0
            latency = self.cluster.spec.node.nic_latency
            t = hops * (latency + state.nbytes_max / self.metadata_bandwidth)
            values = state.values

            def _complete(env, event, result, delay):
                yield env.sleep(delay)
                event.succeed(result)

            self.env.process(
                _complete(self.env, state.event, values, t),
                name=f"coll.{op}.{grp.gid}.{seq}",
            )
        tracer = self.env.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        values = yield state.event
        if tracer.enabled:
            tracer.complete(
                "comm", f"coll.{op}",
                self.placement[ctx.rank], ctx.rank,
                t0, tracer.now() - t0,
                group=grp.gid, size=grp.size,
            )
        return values

    def barrier(self, ctx: RankContext, group: Optional[CommGroup] = None):
        """Process generator: synchronize all ranks of the group."""
        yield from self._collective(ctx, "barrier", group, None, 0)

    def bcast(
        self,
        ctx: RankContext,
        value: Any = None,
        root: int = 0,
        group: Optional[CommGroup] = None,
        nbytes: int = 64,
    ):
        """Process generator: every rank returns the root's value."""
        values = yield from self._collective(ctx, "bcast", group, value, nbytes)
        if root not in values:
            raise ValueError(f"bcast root {root} not in group")
        return values[root]

    def gather(
        self,
        ctx: RankContext,
        value: Any,
        root: int = 0,
        group: Optional[CommGroup] = None,
        nbytes: int = 64,
    ):
        """Process generator: root returns the list of values (group order),
        others return None."""
        grp = group if group is not None else self.world
        values = yield from self._collective(ctx, "gather", group, value, nbytes)
        if ctx.rank != root:
            return None
        return [values[r] for r in grp.ranks]

    def allgather(
        self,
        ctx: RankContext,
        value: Any,
        group: Optional[CommGroup] = None,
        nbytes: int = 64,
    ):
        """Process generator: every rank returns the list of all values."""
        grp = group if group is not None else self.world
        values = yield from self._collective(ctx, "allgather", group, value, nbytes)
        return [values[r] for r in grp.ranks]

    def alltoall(
        self,
        ctx: RankContext,
        values: Sequence[Any],
        group: Optional[CommGroup] = None,
        nbytes: int = 64,
    ):
        """Process generator: metadata all-to-all.

        `values[i]` goes to the group's i-th rank; returns the list received
        (entry j from the group's j-th rank).
        """
        grp = group if group is not None else self.world
        if len(values) != grp.size:
            raise ValueError(f"need {grp.size} values, got {len(values)}")
        all_values = yield from self._collective(
            ctx, "alltoall", group, list(values), nbytes
        )
        my_index = grp.index_of(ctx.rank)
        return [all_values[r][my_index] for r in grp.ranks]

    def allreduce(
        self,
        ctx: RankContext,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        group: Optional[CommGroup] = None,
        nbytes: int = 64,
    ):
        """Process generator: every rank returns the reduction of all values."""
        grp = group if group is not None else self.world
        values = yield from self._collective(ctx, "allreduce", group, value, nbytes)
        acc = values[grp.ranks[0]]
        for r in grp.ranks[1:]:
            acc = op(acc, values[r])
        return acc
