"""Simulated MPI runtime: communicator, rank processes, file-view datatypes.

Substitutes for MPICH2/mpi4py on the simulated cluster (see DESIGN.md §2).
"""

from .comm import ANY_SOURCE, ANY_TAG, CommGroup, Message, RankContext, SimComm
from .file import SimFile
from .request import Request, waitall
from .datatypes import (
    block_decompose_3d,
    contiguous_view,
    dims_create,
    hindexed_view,
    subarray_view_3d,
    vector_view,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommGroup",
    "Message",
    "RankContext",
    "Request",
    "SimComm",
    "SimFile",
    "waitall",
    "block_decompose_3d",
    "contiguous_view",
    "dims_create",
    "hindexed_view",
    "subarray_view_3d",
    "vector_view",
]
