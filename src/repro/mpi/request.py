"""Nonblocking-operation request handles (MPI_Request semantics, sim-time).

``SimFile.iwrite_all`` / ``iread_all`` spawn the collective as a child
process of the calling rank and hand back a :class:`Request`.  The rank
generator keeps running — overlapping computation with the collective in
simulated time — and later completes the handle:

>>> req = fh.iwrite_all(ctx, payload)      # returns immediately
>>> yield ctx.env.sleep(compute_time)      # overlapped computation
>>> yield from req.wait(ctx)               # MPI_Wait

``test`` is the nonblocking probe (MPI_Test), :func:`waitall` completes a
whole batch.  A request wraps an ordinary simulation process, so waiting
on an already-completed request costs no simulated time.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Request", "waitall"]


class Request:
    """Handle for an in-flight nonblocking operation.

    Wraps the simulation process running the operation; completing the
    request (``wait``) joins that process and returns the operation's
    result (the payload for writes, the filled buffer for reads).
    """

    __slots__ = ("_proc", "_waited")

    def __init__(self, proc):
        self._proc = proc
        self._waited = False

    @property
    def complete(self) -> bool:
        """Whether the operation has finished (does not advance time)."""
        return self._proc.triggered

    def test(self):
        """MPI_Test: ``(done, result)`` — result is None while running."""
        if self._proc.triggered:
            return True, self._proc.value
        return False, None

    def wait(self, ctx):
        """Process generator: block until the operation completes.

        Returns the operation's result.  Idempotent — waiting twice (or
        waiting after a successful ``test``) returns the same value
        without advancing simulated time.
        """
        if not self._proc.triggered:
            yield self._proc
        self._waited = True
        return self._proc.value


def waitall(ctx, requests: Sequence[Request]):
    """Process generator: complete every request; returns their results.

    MPI_Waitall — the caller resumes when the *last* operation finishes,
    at the same simulated instant as waiting on each in turn.
    """
    requests = list(requests)
    pending = [r._proc for r in requests if not r._proc.triggered]
    if pending:
        yield ctx.env.all_of(pending)
    out = []
    for r in requests:
        r._waited = True
        out.append(r._proc.value)
    return out
