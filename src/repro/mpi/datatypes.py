"""MPI-style file views as access patterns.

ROMIO's collective I/O consumes each rank's *file view* — an MPI derived
datatype mapped onto the file — flattened into an offset/length list.  This
module provides the equivalent constructors, producing
:class:`~repro.core.request.AccessPattern` objects in ADIO-flattened
(strided-segment) form:

* :func:`contiguous_view` — plain ``(offset, length)``;
* :func:`vector_view` — ``MPI_Type_vector``: count × block every stride;
* :func:`hindexed_view` — explicit offset/length list;
* :func:`subarray_view_3d` — ``MPI_Type_create_subarray`` for a 3D block
  of a row-major global array (the coll_perf pattern);
* :func:`dims_create` / :func:`block_decompose_3d` — the processor-grid
  factorization MPI_Dims_create performs, and the resulting per-rank
  subarrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.request import AccessPattern, Extent, StridedSegment

__all__ = [
    "contiguous_view",
    "vector_view",
    "hindexed_view",
    "subarray_view_3d",
    "dims_create",
    "block_decompose_3d",
]


def contiguous_view(offset: int, length: int) -> AccessPattern:
    """A single contiguous byte range at `offset`."""
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be >= 0")
    return AccessPattern.contiguous(offset, length)


def vector_view(offset: int, count: int, block: int, stride: int) -> AccessPattern:
    """``count`` blocks of ``block`` bytes every ``stride`` bytes.

    Equivalent to an ``MPI_Type_vector`` file view with byte units — the
    pattern IOR's interleaved mode produces for each rank.
    """
    if count == 0:
        return AccessPattern(())
    return AccessPattern((StridedSegment(offset, block, stride, count),))


def hindexed_view(pieces: Iterable[tuple[int, int]]) -> AccessPattern:
    """Explicit ``(offset, length)`` list (must be sorted and disjoint).

    Equivalent to ``MPI_Type_create_hindexed``; zero-length pieces are
    dropped.
    """
    extents = [Extent(off, ln) for off, ln in pieces]
    return AccessPattern.from_extents(extents).coalesce()


def subarray_view_3d(
    global_shape: Sequence[int],
    sub_shape: Sequence[int],
    starts: Sequence[int],
    elem_size: int = 1,
) -> AccessPattern:
    """File view of a 3D subarray of a row-major global array.

    The global array has shape ``(nx, ny, nz)`` stored row-major (z fastest)
    and the rank owns the block ``[sx:sx+cx, sy:sy+cy, sz:sz+cz]``.  Each
    ``(x, y)`` pair contributes one contiguous run of ``cz * elem_size``
    bytes; runs with consecutive ``y`` are one strided segment, so the view
    has ``cx`` segments (or fewer after coalescing full planes).
    """
    nx, ny, nz = (int(v) for v in global_shape)
    cx, cy, cz = (int(v) for v in sub_shape)
    sx, sy, sz = (int(v) for v in starts)
    if min(nx, ny, nz) < 1:
        raise ValueError(f"bad global shape {global_shape}")
    if min(cx, cy, cz) < 1:
        raise ValueError(f"bad sub shape {sub_shape}")
    if min(sx, sy, sz) < 0:
        raise ValueError(f"negative starts {starts}")
    if sx + cx > nx or sy + cy > ny or sz + cz > nz:
        raise ValueError(f"subarray {starts}+{sub_shape} exceeds {global_shape}")
    if elem_size < 1:
        raise ValueError("elem_size must be >= 1")

    run = cz * elem_size
    row_stride = nz * elem_size

    if cy == ny and cz == nz:
        # full y-z planes: the whole block is one contiguous chunk
        offset = ((sx * ny + sy) * nz + sz) * elem_size
        return AccessPattern.contiguous(offset, cx * cy * cz * elem_size)

    segments = []
    for x in range(sx, sx + cx):
        offset = ((x * ny + sy) * nz + sz) * elem_size
        if cz == nz:
            # full z rows merge across y into one contiguous run
            segments.append(StridedSegment(offset, cy * run, cy * run, 1))
        else:
            segments.append(StridedSegment(offset, run, row_stride, cy))
    return AccessPattern(tuple(segments)).coalesce()


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Factor `nnodes` into `ndims` near-equal factors (MPI_Dims_create).

    Returns factors in non-increasing order, e.g. ``dims_create(120, 3) ==
    [6, 5, 4]``.
    """
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # repeatedly strip the smallest prime factor and assign to smallest dim
    factors = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims.sort()
        dims[0] *= factor
    return sorted(dims, reverse=True)


def block_decompose_3d(
    global_shape: Sequence[int], n_ranks: int
) -> list[tuple[tuple[int, int, int], tuple[int, int, int]]]:
    """Block-decompose a 3D array over `n_ranks` ranks.

    Uses :func:`dims_create` for the processor grid and splits each axis
    into near-equal blocks (first ``remainder`` blocks one element larger,
    as MPI block distribution does).

    Returns
    -------
    list of ``(starts, sub_shape)``
        One entry per rank, rank order = row-major order of the grid.
    """
    nx, ny, nz = (int(v) for v in global_shape)
    px, py, pz = dims_create(n_ranks, 3)
    if px > nx or py > ny or pz > nz:
        raise ValueError(
            f"grid {px}x{py}x{pz} does not fit array {global_shape}"
        )

    def axis_blocks(n: int, p: int) -> list[tuple[int, int]]:
        base, rem = divmod(n, p)
        out = []
        start = 0
        for i in range(p):
            size = base + (1 if i < rem else 0)
            out.append((start, size))
            start += size
        return out

    xs = axis_blocks(nx, px)
    ys = axis_blocks(ny, py)
    zs = axis_blocks(nz, pz)
    result = []
    for ix in range(px):
        for iy in range(py):
            for iz in range(pz):
                starts = (xs[ix][0], ys[iy][0], zs[iz][0])
                shape = (xs[ix][1], ys[iy][1], zs[iz][1])
                result.append((starts, shape))
    return result
