"""Per-node memory model: capacity, availability variance, paging penalty.

The paper's evaluation creates memory pressure two ways: it shrinks the
collective-buffer size per aggregator, and it gives each process an
*available* memory drawn from a normal distribution (mean = nominal buffer
size, σ = 50 MB).  This module models the node-side mechanics:

* every node has a physical ``capacity`` and an ``available`` amount
  (capacity minus background usage — applications, OS, other ranks);
* allocations never fail (real systems overcommit); instead an allocation
  that pushes committed memory beyond ``available`` is marked **paged**, and
  memory traffic touching a paged allocation is charged a multiplicative
  :attr:`paging penalty <MemoryModel.paging_penalty>` — the observable cost
  of swap/thrash the paper argues aggregators suffer;
* committed/peak statistics feed the memory-pressure and memory-variance
  metrics reported by the experiments.

Remote-memory borrowing (DOLMA-style disaggregation) adds a second
allocation channel: a :class:`LeaseLedger` hands out sim-time-bounded
:class:`Lease` claims on a *lender* node's available memory, backed by a
real :class:`Allocation` on the lender's :class:`MemoryModel`.  The
ledger is the shared source of truth the collective engine's
round-boundary checks read — lender death, a memory shock squeezing the
leased bytes, or plain expiry all surface as a revocation verdict, and
every lifecycle edge notifies registered listeners (the plan cache drops
entries on grants and revocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Allocation",
    "Lease",
    "LeaseLedger",
    "MemoryModel",
    "availability_bucket",
]


def availability_bucket(
    avail_bytes: int, thresholds: tuple[int, ...], quantum: int
) -> tuple[int, int]:
    """Quantize an available-memory reading into planning-relevant buckets.

    Returns ``(rank, quanta)`` where `rank` counts how many of the given
    `thresholds` the reading meets and `quanta` is the reading divided by
    `quantum` (e.g. ``Msg_ind``: roughly how many aggregation domains the
    host could absorb).  Two readings with equal buckets are
    indistinguishable to the remerge / placement thresholds derived from
    those values, which is what lets the plan cache reuse a plan across
    small memory wiggle while a genuine threshold crossing — a memory
    shock, a big background-load step — forces a replan.
    """
    if avail_bytes < 0:
        raise ValueError("avail_bytes must be >= 0")
    rank = sum(1 for t in thresholds if avail_bytes >= t)
    return rank, avail_bytes // max(1, quantum)


@dataclass
class Allocation:
    """A live memory allocation on a node.

    Attributes
    ----------
    nbytes:
        Size of the allocation.
    label:
        Free-form tag ("collective-buffer", ...) used in traces.
    paged:
        True if, at allocation time, committed memory exceeded the node's
        available memory — every touch of this buffer pays the paging
        penalty.
    """

    nbytes: int
    label: str = ""
    paged: bool = False
    _freed: bool = field(default=False, repr=False)


class MemoryModel:
    """Tracks memory commitments on one node.

    Parameters
    ----------
    capacity_bytes:
        Physical memory size.
    available_bytes:
        Memory actually available to collective-I/O buffers (capacity minus
        background usage).  Defaults to the full capacity.
    paging_penalty:
        Multiplier applied to memory-copy time for paged allocations.
    """

    def __init__(
        self,
        capacity_bytes: int,
        available_bytes: Optional[int] = None,
        paging_penalty: float = 4.0,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if paging_penalty < 1.0:
            raise ValueError("paging_penalty must be >= 1.0")
        self.capacity = int(capacity_bytes)
        avail = capacity_bytes if available_bytes is None else int(available_bytes)
        if avail < 0:
            raise ValueError("available_bytes must be >= 0")
        self._base_available = min(avail, self.capacity)
        self.paging_penalty = float(paging_penalty)
        self._committed = 0
        self._peak = 0
        self._paged_allocs = 0
        self._total_allocs = 0
        #: Bytes claimed by injected memory shocks (fault model); available
        #: memory is the externally set base minus the live shock total.
        self._shock = 0

    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Memory available to collective-I/O buffers right now.

        The externally managed base (set at construction, by experiment
        setup, or by :class:`~repro.cluster.background.BackgroundLoad`)
        minus any live injected memory shock, floored at zero — so shocks
        compose with the background-load walk instead of being overwritten
        by its next update.
        """
        return max(0, self._base_available - self._shock)

    @property
    def shock_bytes(self) -> int:
        """Bytes currently claimed by injected memory shocks."""
        return self._shock

    @property
    def committed(self) -> int:
        """Bytes currently allocated."""
        return self._committed

    @property
    def peak_committed(self) -> int:
        """High-water mark of committed bytes."""
        return self._peak

    @property
    def free_available(self) -> int:
        """Available memory not yet committed (>= 0)."""
        return max(0, self.available - self._committed)

    @property
    def paged_alloc_count(self) -> int:
        """How many allocations so far were paged."""
        return self._paged_allocs

    @property
    def alloc_count(self) -> int:
        """Total allocations so far."""
        return self._total_allocs

    # ------------------------------------------------------------------
    def set_available(self, available_bytes: int) -> None:
        """Reset the node's base available memory (experiment setup hook).

        Live memory shocks persist across this call: the effective
        :attr:`available` stays ``base - shock``.
        """
        if available_bytes < 0:
            raise ValueError("available_bytes must be >= 0")
        self._base_available = min(int(available_bytes), self.capacity)

    def apply_shock(self, nbytes: int) -> None:
        """Inject a sudden step drop of `nbytes` in available memory."""
        if nbytes < 0:
            raise ValueError("shock nbytes must be >= 0")
        self._shock += int(nbytes)

    def release_shock(self, nbytes: int) -> None:
        """Lift `nbytes` of a previously applied shock."""
        if nbytes < 0:
            raise ValueError("shock nbytes must be >= 0")
        self._shock = max(0, self._shock - int(nbytes))

    def would_page(self, nbytes: int) -> bool:
        """True if allocating `nbytes` now would exceed available memory."""
        return self._committed + nbytes > self.available

    @property
    def overcommitted(self) -> bool:
        """True while committed memory exceeds available memory."""
        return self._committed > self.available

    @property
    def current_paging_factor(self) -> float:
        """Slowdown of memory traffic given the current overcommit.

        1.0 while commitments fit in available memory; grades linearly up
        to the full :attr:`paging_penalty` as the overcommitted fraction
        of committed memory approaches 1 (mild spill thrashes mildly, a
        buffer many times larger than available memory pays nearly the
        full swap-bandwidth ratio).
        """
        if self._committed <= self.available:
            return 1.0
        frac = (self._committed - self.available) / self._committed
        return 1.0 + (self.paging_penalty - 1.0) * frac

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Commit `nbytes`; never blocks, may return a paged allocation."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        paged = self.would_page(nbytes) and nbytes > 0
        self._committed += nbytes
        self._peak = max(self._peak, self._committed)
        self._total_allocs += 1
        if paged:
            self._paged_allocs += 1
        return Allocation(nbytes=int(nbytes), label=label, paged=paged)

    def free(self, allocation: Allocation) -> None:
        """Release a previous allocation (idempotent per allocation)."""
        if allocation._freed:
            raise ValueError(f"double free of allocation {allocation.label!r}")
        allocation._freed = True
        self._committed -= allocation.nbytes
        if self._committed < 0:  # pragma: no cover - defensive
            raise RuntimeError("memory model went negative")

    def copy_time(self, nbytes: int, bandwidth: float, paged: bool = False) -> float:
        """Seconds to move `nbytes` at `bandwidth`, with paging penalty."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        t = nbytes / bandwidth
        return t * self.paging_penalty if paged else t


@dataclass
class Lease:
    """A sim-time-bounded claim on a lender node's memory.

    Backed by a live :class:`Allocation` on the lender's
    :class:`MemoryModel`; the allocation is released exactly once, when
    the lease leaves the ``active`` state (release, revoke, or expiry).

    Attributes
    ----------
    lease_id:
        Ledger-unique, monotonically increasing id (grant order).
    lender_node:
        Node id of the node whose memory backs the lease.
    borrower_rank:
        Rank that acquired the lease (the aggregator of a borrowed
        file domain) — the only rank allowed to renew or release it.
    nbytes:
        Leased capacity.
    granted_at / expires_at:
        Sim-time lease term; :meth:`LeaseLedger.renew` pushes
        ``expires_at`` forward.
    tenant:
        Owning job's identity in a multi-tenant environment (None for
        single-job runs).  Invalidation listeners filter on it so one
        tenant's lease churn never stales another tenant's cached or
        frozen plans; an untagged lease conservatively invalidates
        everyone.
    state:
        ``active`` | ``released`` | ``revoked`` | ``expired``.
    outcome_reason:
        Why the lease left the active state (``lender-failed``,
        ``memory-squeeze``, ``expired``, ...); None while active or
        after a normal release.
    """

    lease_id: int
    lender_node: int
    borrower_rank: int
    nbytes: int
    granted_at: float
    expires_at: float
    label: str = ""
    tenant: Optional[str] = None
    state: str = "active"
    outcome_reason: Optional[str] = None
    _alloc: Optional[Allocation] = field(default=None, repr=False)

    @property
    def active(self) -> bool:
        return self.state == "active"


class LeaseLedger:
    """Cluster-wide registry of remote-memory leases.

    One ledger per :class:`~repro.cluster.cluster.Cluster`; all ranks
    share it, which makes it the single source of truth the engine's
    deterministic round-boundary checks read.  Mutations (grant, renew,
    release, revoke) are performed only by the borrowing rank; other
    ranks observe state through :meth:`soundness` snapshots taken at
    barrier-aligned instants.

    Listeners registered with :meth:`add_listener` are called as
    ``listener(lease, event)`` for events ``grant``, ``renew``,
    ``release``, ``revoke``, and ``expire`` — the plan cache subscribes
    so cached plans never replay against a changed lease landscape.
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self._next_id = 0
        self._active: dict[int, Lease] = {}
        self.history: list[Lease] = []
        self._listeners: list = []
        # lifecycle counters
        self.granted = 0
        self.renewed = 0
        self.released = 0
        self.revoked = 0
        self.expired = 0
        self.denied = 0
        self.granted_bytes = 0

    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register ``listener(lease, event)`` for lifecycle events."""
        self._listeners.append(listener)

    def _notify(self, lease: Lease, event: str) -> None:
        for listener in self._listeners:
            listener(lease, event)

    @property
    def outstanding(self) -> int:
        """Number of currently active leases."""
        return len(self._active)

    @property
    def outstanding_bytes(self) -> int:
        """Bytes currently held under active leases."""
        return sum(lease.nbytes for lease in self._active.values())

    def active_leases(self) -> list[Lease]:
        """Active leases in grant order."""
        return [self._active[k] for k in sorted(self._active)]

    def digest(self, tenant: Optional[str] = None) -> tuple:
        """Order-stable fingerprint of the active lease set.

        Part of the plan-cache signature: a plan built against one lease
        landscape must not be replayed against another.  With `tenant`,
        foreign tenants' tagged leases are excluded — their pinned bytes
        already show through the lenders' committed memory (and hence the
        memory digest), so they must not churn this tenant's signatures.
        Untagged leases are always included.
        """
        leases = self.active_leases()
        if tenant is not None:
            leases = [
                lease for lease in leases if lease.tenant in (None, tenant)
            ]
        return tuple(
            (lease.lease_id, lease.lender_node, lease.nbytes)
            for lease in leases
        )

    # ------------------------------------------------------------------
    def grant(
        self,
        lender_node: int,
        borrower_rank: int,
        nbytes: int,
        now: float,
        term: float,
        headroom: int = 0,
        tenant: Optional[str] = None,
    ) -> Optional[Lease]:
        """Try to lease `nbytes` on `lender_node`; None on denial.

        A grant is denied — and counted — when the lender is failed,
        the request is empty, or the lender's uncommitted available
        memory cannot cover the request plus the configured `headroom`.
        The backing allocation is a first-class commitment on the
        lender's memory model, so a later shock can push the lender into
        overcommit, which :meth:`soundness` reports as a squeeze.
        """
        node = self.cluster.node_of(lender_node)
        if nbytes <= 0 or term <= 0 or node.failed:
            self.denied += 1
            return None
        if node.memory.free_available < nbytes + max(0, headroom):
            self.denied += 1
            return None
        lease_id = self._next_id
        self._next_id += 1
        label = f"lease.{lease_id}.r{borrower_rank}"
        lease = Lease(
            lease_id=lease_id,
            lender_node=lender_node,
            borrower_rank=borrower_rank,
            nbytes=int(nbytes),
            granted_at=float(now),
            expires_at=float(now) + float(term),
            label=label,
            tenant=tenant,
            _alloc=node.memory.alloc(int(nbytes), label=label),
        )
        self._active[lease_id] = lease
        self.history.append(lease)
        self.granted += 1
        self.granted_bytes += lease.nbytes
        self._notify(lease, "grant")
        return lease

    def renew(self, lease: Lease, now: float, term: float) -> bool:
        """Extend an active, healthy lease's term; False otherwise."""
        if not lease.active or self.soundness(lease, now) is not None:
            return False
        lease.expires_at = float(now) + float(term)
        self.renewed += 1
        self._notify(lease, "renew")
        return True

    def release(self, lease: Lease, now: float) -> None:
        """Normal end-of-use teardown by the borrower (idempotent)."""
        if not lease.active:
            return
        lease.state = "released"
        self._retire(lease)
        self.released += 1
        self._notify(lease, "release")

    def revoke(self, lease: Lease, now: float, reason: str) -> None:
        """Forcible teardown: lender failure, squeeze, expiry (idempotent)."""
        if not lease.active:
            return
        lease.outcome_reason = reason
        if reason == "expired":
            lease.state = "expired"
            self._retire(lease)
            self.expired += 1
            self._notify(lease, "expire")
        else:
            lease.state = "revoked"
            self._retire(lease)
            self.revoked += 1
            self._notify(lease, "revoke")

    def _retire(self, lease: Lease) -> None:
        self._active.pop(lease.lease_id, None)
        if lease._alloc is not None:
            self.cluster.node_of(lease.lender_node).memory.free(lease._alloc)
            lease._alloc = None

    # ------------------------------------------------------------------
    def soundness(self, lease: Lease, now: float) -> Optional[str]:
        """Why this lease must be revoked right now, or None if healthy.

        Pure read — safe for every rank to evaluate at the same sim
        instant.  Checks, in order: lender death, a memory squeeze on
        the lender (committed memory, leases included, exceeds its
        post-shock availability), and term expiry.
        """
        if not lease.active:
            return lease.outcome_reason or lease.state
        node = self.cluster.node_of(lease.lender_node)
        if node.failed:
            return "lender-failed"
        if node.memory.overcommitted:
            return "memory-squeeze"
        if now >= lease.expires_at:
            return "expired"
        return None
