"""Time-varying background memory load.

The paper's memory-variance environment is static per run; on a real
shared machine the application's own phases and co-located services move
each node's available memory *between* collective calls.  MCIO replans at
every collective from the live availability snapshot, so a dynamic
environment is where run-time aggregator determination earns its keep.

:class:`BackgroundLoad` is a simulation process that updates every node's
available memory on a fixed period with a seeded mean-reverting random
walk (discrete Ornstein-Uhlenbeck): each node wanders around its own mean
with configurable volatility, clipped to ``[floor, capacity]``.
Deterministic given ``(rng, period)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim import Environment, Process

from .cluster import Cluster

__all__ = ["BackgroundLoad"]


class BackgroundLoad:
    """Mean-reverting background memory churn on every node.

    Parameters
    ----------
    cluster:
        The cluster whose nodes' availability is driven.
    mean_bytes:
        Long-run mean available memory per node (scalar or per-node array).
    sigma_bytes:
        Innovation scale per update step.
    reversion:
        Pull toward the mean per step, in (0, 1]; 1 = i.i.d. redraws,
        small values = slow drift.
    period:
        Simulated seconds between updates.
    floor_bytes:
        Lower clip for availability.
    """

    def __init__(
        self,
        cluster: Cluster,
        mean_bytes: float | np.ndarray,
        sigma_bytes: float,
        reversion: float = 0.3,
        period: float = 0.05,
        floor_bytes: float = 1 << 20,
    ):
        if sigma_bytes < 0:
            raise ValueError("sigma_bytes must be >= 0")
        if not 0 < reversion <= 1:
            raise ValueError("reversion must be in (0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.cluster = cluster
        n = len(cluster.nodes)
        self.mean = np.broadcast_to(np.asarray(mean_bytes, dtype=float), (n,)).copy()
        self.sigma = float(sigma_bytes)
        self.reversion = float(reversion)
        self.period = float(period)
        self.floor = float(floor_bytes)
        self._gen = cluster.rng.stream("background-load")
        self._level = self.mean.copy()
        self.updates = 0
        self._proc: Optional[Process] = None

    # ------------------------------------------------------------------
    def step(self) -> np.ndarray:
        """Advance one update: perturb and apply availability to the nodes."""
        noise = self._gen.normal(0.0, self.sigma, size=len(self._level))
        self._level = self._level + self.reversion * (self.mean - self._level) + noise
        capacity = np.array(
            [node.memory.capacity for node in self.cluster.nodes], dtype=float
        )
        clipped = np.clip(self._level, self.floor, capacity)
        self.cluster.set_memory_availability(clipped.astype(np.int64))
        self.updates += 1
        return clipped

    def _run(self, env: Environment):
        from repro.sim import Interrupt

        try:
            while True:
                yield env.timeout(self.period)
                self.step()
        except Interrupt:
            return

    def start(self) -> Process:
        """Launch the churn process (runs until the simulation ends)."""
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("background load already running")
        self.step()  # apply the initial landscape
        self._proc = self.cluster.env.process(
            self._run(self.cluster.env), name="background-load"
        )
        return self._proc

    def stop(self) -> None:
        """Interrupt the churn process."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
            self._proc = None
