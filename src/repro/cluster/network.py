"""Interconnect model: α–β links with per-node NIC contention.

By default the fabric is full-bisection (the paper's testbed is a
full-cross-section DDR InfiniBand cluster), so the only network contention
points are the NICs: each node can inject one message at a time and eject
one message at a time.  A transfer costs::

    latency + nbytes / min(src_bw, dst_bw)

holding both endpoints' NIC engines for the duration, so many-to-one
shuffle traffic (everyone sending to an aggregator) serializes at the
aggregator's ejection engine — exactly the hotspot two-phase I/O creates.

Intra-node "transfers" (ranks co-located on one node) bypass the NIC and
cost a memory-system copy instead, which is why restricting aggregation
traffic inside a node/group is cheaper — the mechanism MCIO exploits.

Optionally the network models a **two-level (racked) topology**: nodes
are grouped into racks of ``rack_size``; transfers crossing rack
boundaries additionally serialize on both racks' *uplinks* of
``uplink_bandwidth``.  With oversubscribed uplinks (uplink slower than
the sum of the rack's NICs), containing shuffle traffic within a
rack-aligned aggregation group has a direct, measurable payoff — the
extreme-scale regime the paper targets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim import Environment, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Network"]


class Network:
    """Point-to-point transfer engine over a set of nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    nodes:
        The cluster's nodes, indexed by ``node_id``.
    intra_node_latency:
        Fixed cost of an intra-node handoff (shared-memory queue), seconds.
    """

    def __init__(
        self,
        env: Environment,
        nodes: list["Node"],
        intra_node_latency: float = 0.3e-6,
        chunk_bytes: int = 4 * 1024 * 1024,
        rack_size: Optional[int] = None,
        uplink_bandwidth: Optional[float] = None,
    ):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if (rack_size is None) != (uplink_bandwidth is None):
            raise ValueError("rack_size and uplink_bandwidth go together")
        if rack_size is not None and rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if uplink_bandwidth is not None and uplink_bandwidth <= 0:
            raise ValueError("uplink_bandwidth must be positive")
        self.env = env
        self.nodes = nodes
        self.intra_node_latency = float(intra_node_latency)
        #: Messages move in chunks of this size so concurrent transfers
        #: interleave fairly at the NICs instead of convoying whole
        #: messages (an engine is still exclusive per chunk).
        self.chunk_bytes = int(chunk_bytes)
        self.rack_size = rack_size
        self.uplink_bandwidth = uplink_bandwidth
        self._uplinks: list[Resource] = []
        if rack_size is not None:
            n_racks = -(-len(nodes) // rack_size)
            self._uplinks = [
                Resource(env, capacity=1, name=f"rack{i}.uplink")
                for i in range(n_racks)
            ]
        #: Total bytes moved across NICs (inter-node only).
        self.inter_node_bytes = 0
        #: Total bytes moved through shared memory (intra-node).
        self.intra_node_bytes = 0
        #: Number of inter-node messages.
        self.inter_node_messages = 0
        #: Bytes that crossed rack uplinks (0 without a racked topology).
        self.inter_rack_bytes = 0

    def rack_of(self, node: "Node") -> Optional[int]:
        """The rack holding `node` (None in flat topologies)."""
        if self.rack_size is None:
            return None
        return node.node_id // self.rack_size

    def link_cost(
        self, src: "Node", dst: "Node"
    ) -> tuple[float, float, list[Resource]]:
        """The single shared cost model for a ``src -> dst`` wire.

        Returns ``(latency, wire_bandwidth, uplinks)``: the per-message
        injection latency, the effective bytes/second of the path (NIC
        speeds, narrowed to the uplink speed when the transfer crosses
        rack boundaries), and the uplink resources the transfer must hold
        (empty in flat topologies or within a rack).

        Both :meth:`transfer` (the simulated data path) and
        :meth:`estimate_transfer_time` (the planning estimate) derive
        their arithmetic from this one function, so the two can never
        drift apart.
        """
        wire_bw = min(src.spec.nic_bandwidth, dst.spec.nic_bandwidth)
        uplinks: list[Resource] = []
        src_rack, dst_rack = self.rack_of(src), self.rack_of(dst)
        if src_rack is not None and src_rack != dst_rack:
            wire_bw = min(wire_bw, self.uplink_bandwidth)
            # acquire in rack-id order (uniform hierarchy: no deadlock)
            lo, hi = sorted((src_rack, dst_rack))
            uplinks = [self._uplinks[lo], self._uplinks[hi]]
        return src.spec.nic_latency, wire_bw, uplinks

    def transfer(self, src: "Node", dst: "Node", nbytes: int, paged_dst: bool = False):
        """Process generator: move `nbytes` from `src` to `dst`.

        Parameters
        ----------
        src, dst:
            Endpoint nodes; equal nodes take the shared-memory path.
        nbytes:
            Message size in bytes (0 is allowed and costs only latency).
        paged_dst:
            If true, an endpoint buffer spilled past available memory; the
            wire is throttled by the destination's paging penalty (the NIC
            cannot move data faster than the memory system pages it).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if src.node_id == dst.node_id:
            self.intra_node_bytes += nbytes
            yield self.env.sleep(self.intra_node_latency)
            yield from src.memcopy(nbytes, paged=paged_dst)
            return
        self.inter_node_bytes += nbytes
        self.inter_node_messages += 1
        yield from self._wire(src, dst, nbytes, 1, paged_dst)

    def batched_transfer(
        self, src: "Node", dst: "Node", sizes: list[int], paged_dst: bool = False
    ):
        """Process generator: move `len(sizes)` messages as one transfer.

        The closed-form serialization model for aggregated shuffle
        traffic: the constituent messages ride the wire back-to-back, so
        the batch charges every message's injection latency once up front
        (``latency * n``) and then streams ``sum(sizes)`` bytes through
        the same chunked NIC/uplink machinery as :meth:`transfer`.  Byte
        and message accounting match `n` individual transfers; what
        disappears is the per-message simulation events, not the cost.
        """
        total = 0
        for s in sizes:
            if s < 0:
                raise ValueError("nbytes must be >= 0")
            total += s
        n = len(sizes)
        if n == 0:
            return
        if src.node_id == dst.node_id:
            self.intra_node_bytes += total
            yield self.env.sleep(self.intra_node_latency * n)
            yield from src.memcopy(total, paged=paged_dst)
            return
        self.inter_node_bytes += total
        self.inter_node_messages += n
        yield from self._wire(src, dst, total, n, paged_dst)

    def _wire(
        self, src: "Node", dst: "Node", nbytes: int, n_messages: int,
        paged_dst: bool,
    ):
        """Chunked inter-node wire movement shared by both transfer paths."""
        latency, wire_bw, uplinks = self.link_cost(src, dst)
        if uplinks:
            self.inter_rack_bytes += nbytes
        env = self.env
        yield env.sleep(latency * n_messages)
        chunk_bytes = self.chunk_bytes
        sent = 0
        while sent < nbytes or (nbytes == 0 and sent == 0):
            chunk = min(chunk_bytes, max(0, nbytes - sent))
            wire_time = chunk / wire_bw
            if paged_dst:
                wire_time *= dst.memory.current_paging_factor
            # a failed endpoint cannot source/sink data at wire speed: the
            # transfer crawls at the slower endpoint's degraded pace
            if src.failed:
                wire_time *= src.failure_slowdown
            if dst.failed:
                wire_time *= dst.failure_slowdown
            # receiver-side ejection engine first, then the injection
            # engine, then the uplinks: a fixed class order, so a transfer
            # never parks an engine waiting for the other side beyond one
            # chunk and the hierarchy is deadlock-free
            rx = dst.nic_rx.request()
            yield rx
            held = [(dst.nic_rx, rx)]
            try:
                tx = src.nic_tx.request()
                yield tx
                held.append((src.nic_tx, tx))
                for uplink in uplinks:
                    req = uplink.request()
                    yield req
                    held.append((uplink, req))
                yield env.sleep(wire_time)
            finally:
                for resource, req in reversed(held):
                    resource.release(req)
            sent += chunk
            if nbytes == 0:
                break

    def estimate_transfer_time(self, src: "Node", dst: "Node", nbytes: int) -> float:
        """Uncontended transfer time (no queueing), for planning/tuning.

        Built on :meth:`link_cost`, the same arithmetic the simulated
        data path uses, so an uncontended :meth:`transfer` takes exactly
        this long.
        """
        if src.node_id == dst.node_id:
            return self.intra_node_latency + nbytes / src.channel_bandwidth
        latency, wire_bw, _uplinks = self.link_cost(src, dst)
        return latency + nbytes / wire_bw
