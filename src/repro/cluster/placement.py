"""Rank-to-node placement policies.

MPI launchers place ranks on nodes either *block*-wise (fill node 0, then
node 1, ...) or *round-robin* (cyclic).  Group division in MCIO reasons
about node boundaries in the linearized rank order, so placement is a
first-class input to every experiment.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["block_placement", "round_robin_placement", "ranks_on_node", "validate_placement"]


def block_placement(n_ranks: int, n_nodes: int, cores_per_node: int) -> list[int]:
    """Fill nodes in order: ranks 0..c-1 on node 0, c..2c-1 on node 1, ...

    Raises
    ------
    ValueError
        If the ranks do not fit on the cluster.
    """
    _check(n_ranks, n_nodes, cores_per_node)
    return [rank // cores_per_node for rank in range(n_ranks)]


def round_robin_placement(n_ranks: int, n_nodes: int, cores_per_node: int) -> list[int]:
    """Cyclic placement: rank r on node ``r % n_nodes``."""
    _check(n_ranks, n_nodes, cores_per_node)
    placement = [rank % n_nodes for rank in range(n_ranks)]
    return placement


def ranks_on_node(placement: Sequence[int], node_id: int) -> list[int]:
    """Return the ranks placed on `node_id`, in rank order."""
    return [rank for rank, nid in enumerate(placement) if nid == node_id]


def validate_placement(placement: Sequence[int], n_nodes: int, cores_per_node: int) -> None:
    """Check a placement maps into the cluster and respects core counts.

    Raises
    ------
    ValueError
        On out-of-range node ids or oversubscribed nodes.
    """
    counts: dict[int, int] = {}
    for rank, nid in enumerate(placement):
        if not 0 <= nid < n_nodes:
            raise ValueError(f"rank {rank} placed on invalid node {nid}")
        counts[nid] = counts.get(nid, 0) + 1
    for nid, count in counts.items():
        if count > cores_per_node:
            raise ValueError(
                f"node {nid} oversubscribed: {count} ranks > {cores_per_node} cores"
            )


def _check(n_ranks: int, n_nodes: int, cores_per_node: int) -> None:
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks > n_nodes * cores_per_node:
        raise ValueError(
            f"{n_ranks} ranks do not fit on {n_nodes} nodes x {cores_per_node} cores"
        )
