"""Simulated HPC cluster: nodes, memory, interconnect, placement.

Substitutes for the paper's 640-node Xeon/InfiniBand testbed (see DESIGN.md
§2).  Exposes hardware specs (including the Table 1 exascale projections),
node-level memory/bandwidth models, and the interconnect.
"""

from .background import BackgroundLoad
from .cluster import Cluster
from .memory import Allocation, Lease, LeaseLedger, MemoryModel, availability_bucket
from .network import Network
from .node import Node
from .placement import (
    block_placement,
    ranks_on_node,
    round_robin_placement,
    validate_placement,
)
from .spec import (
    GIB,
    KIB,
    MIB,
    TABLE1_ROWS,
    TIB,
    ClusterSpec,
    NodeSpec,
    StorageSpec,
    exascale_2018,
    memory_per_core_factor,
    petascale_2010,
    ross13_testbed,
)

__all__ = [
    "Allocation",
    "availability_bucket",
    "BackgroundLoad",
    "Cluster",
    "ClusterSpec",
    "GIB",
    "KIB",
    "Lease",
    "LeaseLedger",
    "MIB",
    "MemoryModel",
    "Network",
    "Node",
    "NodeSpec",
    "StorageSpec",
    "TABLE1_ROWS",
    "TIB",
    "block_placement",
    "exascale_2018",
    "memory_per_core_factor",
    "petascale_2010",
    "ranks_on_node",
    "ross13_testbed",
    "round_robin_placement",
    "validate_placement",
]
