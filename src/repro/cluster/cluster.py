"""Cluster assembly: nodes + network + memory-availability setup."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim import Environment, RngFactory

from .memory import LeaseLedger
from .network import Network
from .node import Node
from .spec import ClusterSpec, MIB

__all__ = ["Cluster"]


class Cluster:
    """A simulated platform built from a :class:`~repro.cluster.spec.ClusterSpec`.

    Parameters
    ----------
    env:
        Simulation environment the cluster lives in.
    spec:
        Hardware description.
    rng:
        Seeded stream factory; the ``"memory"`` stream drives availability
        sampling in :meth:`sample_memory_availability`.

    Attributes
    ----------
    nodes:
        ``spec.nodes`` :class:`~repro.cluster.node.Node` objects.
    network:
        The interconnect shared by the nodes.
    """

    def __init__(self, env: Environment, spec: ClusterSpec, rng: Optional[RngFactory] = None):
        self.env = env
        self.spec = spec
        self.rng = rng if rng is not None else RngFactory(0)
        self.nodes = [
            Node(env, node_id=i, spec=spec.node, paging_penalty=spec.paging_penalty)
            for i in range(spec.nodes)
        ]
        self.network = Network(
            env,
            self.nodes,
            rack_size=spec.rack_size,
            uplink_bandwidth=spec.uplink_bandwidth,
        )
        #: Shared remote-memory lease registry (borrowed aggregation buffers).
        self.memory_ledger = LeaseLedger(self)

    def node_of(self, node_id: int) -> Node:
        """Return the node with the given id."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # memory availability (the paper's variance environment)
    # ------------------------------------------------------------------
    def set_memory_availability(self, available_bytes: Sequence[int]) -> None:
        """Pin each node's available memory explicitly (bytes, one per node)."""
        if len(available_bytes) != len(self.nodes):
            raise ValueError(
                f"got {len(available_bytes)} values for {len(self.nodes)} nodes"
            )
        for node, avail in zip(self.nodes, available_bytes):
            node.memory.set_available(int(avail))

    def sample_memory_availability(
        self,
        mean_bytes: float,
        sigma_bytes: float = 50 * MIB,
        floor_bytes: float = 1 * MIB,
    ) -> np.ndarray:
        """Draw per-node available memory ~ N(mean, sigma), clipped.

        This reproduces the paper's evaluation setup: "the memory buffer
        sizes for processes were set up as random variables following a
        normal distribution [...] the standard deviation was set as 50"
        (interpreted as 50 MB around the nominal aggregation-buffer size).

        Returns
        -------
        numpy.ndarray
            The sampled availability per node (also applied to the nodes).
        """
        if mean_bytes <= 0:
            raise ValueError("mean_bytes must be positive")
        if sigma_bytes < 0:
            raise ValueError("sigma_bytes must be >= 0")
        gen = self.rng.stream("memory")
        draws = gen.normal(loc=mean_bytes, scale=sigma_bytes, size=len(self.nodes))
        draws = np.clip(draws, floor_bytes, self.spec.node.memory_bytes)
        self.set_memory_availability(draws.astype(np.int64))
        return draws

    # ------------------------------------------------------------------
    # convenience metrics
    # ------------------------------------------------------------------
    def memory_availability(self) -> np.ndarray:
        """Current available memory per node, bytes."""
        return np.array([n.memory.available for n in self.nodes], dtype=np.int64)

    def peak_committed(self) -> np.ndarray:
        """Peak committed memory per node, bytes."""
        return np.array([n.memory.peak_committed for n in self.nodes], dtype=np.int64)
