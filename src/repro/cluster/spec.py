"""Hardware specifications for simulated clusters.

Includes the paper's two reference designs:

* :func:`ross13_testbed` — the evaluation platform of the paper (640-node
  Linux cluster, two 6-core Xeons and 24 GB per node, DDR InfiniBand,
  Lustre over DDN storage);
* :func:`petascale_2010` / :func:`exascale_2018` — the two columns of the
  paper's Table 1 ("Potential exascale computer design and its relationship
  to current HPC designs", after Vetter et al.), exposed both as cluster
  specs and as the raw table for the Table 1 experiment.

Units: bytes and bytes/second throughout; seconds for latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "NodeSpec",
    "StorageSpec",
    "ClusterSpec",
    "ross13_testbed",
    "petascale_2010",
    "exascale_2018",
    "TABLE1_ROWS",
    "memory_per_core_factor",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node.

    Parameters
    ----------
    cores:
        Cores (and therefore maximum MPI ranks) per node.
    memory_bytes:
        Physical memory capacity.
    memory_bandwidth:
        Aggregate off-chip memory bandwidth in bytes/second.
    memory_channels:
        Number of concurrently usable memory channels; each channel provides
        ``memory_bandwidth / memory_channels`` of bandwidth.  Contention for
        channels is how the simulator models off-chip bandwidth pressure.
    nic_bandwidth:
        Injection bandwidth of the node's network interface, bytes/second.
    nic_latency:
        One-way small-message latency in seconds.
    """

    cores: int = 12
    memory_bytes: int = 24 * GIB
    memory_bandwidth: float = 25e9
    memory_channels: int = 4
    nic_bandwidth: float = 1.5e9
    nic_latency: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.memory_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.memory_channels < 1:
            raise ValueError("memory_channels must be >= 1")
        if self.nic_latency < 0:
            raise ValueError("nic_latency must be >= 0")

    @property
    def memory_per_core(self) -> float:
        """Bytes of memory per core — the quantity Table 1 shows collapsing."""
        return self.memory_bytes / self.cores

    @property
    def bandwidth_per_core(self) -> float:
        """Off-chip bytes/second per core."""
        return self.memory_bandwidth / self.cores


@dataclass(frozen=True)
class StorageSpec:
    """Parallel-file-system hardware description.

    Parameters
    ----------
    servers:
        Number of I/O servers (Lustre OSTs).
    server_bandwidth:
        Streaming bandwidth of one server, bytes/second.
    request_overhead:
        Fixed per-request service cost in seconds (seek + RPC + metadata);
        this is what makes many small requests slower than one large one.
    stripe_size:
        Round-robin striping unit in bytes (paper: 1 MB).
    write_bandwidth_factor:
        Write bandwidth as a fraction of read bandwidth (RAID parity and
        journaling make storage writes slower; the paper's read bandwidth
        consistently exceeds its write bandwidth).
    """

    servers: int = 16
    server_bandwidth: float = 500e6
    request_overhead: float = 0.5e-3
    stripe_size: int = 1 * MIB
    write_bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.server_bandwidth <= 0:
            raise ValueError("server_bandwidth must be positive")
        if self.request_overhead < 0:
            raise ValueError("request_overhead must be >= 0")
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if not 0 < self.write_bandwidth_factor <= 1:
            raise ValueError("write_bandwidth_factor must be in (0, 1]")

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak file-system bandwidth with all servers streaming."""
        return self.servers * self.server_bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """Full description of a simulated platform."""

    nodes: int = 10
    node: NodeSpec = field(default_factory=NodeSpec)
    storage: StorageSpec = field(default_factory=StorageSpec)
    #: Multiplier on memory-copy time for allocations beyond a node's
    #: available memory (models paging/thrashing).
    paging_penalty: float = 4.0
    #: Optional two-level topology: nodes per rack (None = full bisection).
    rack_size: Optional[int] = None
    #: Rack uplink bandwidth, bytes/second (required with rack_size).
    uplink_bandwidth: Optional[float] = None
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.paging_penalty < 1.0:
            raise ValueError("paging_penalty must be >= 1.0")
        if (self.rack_size is None) != (self.uplink_bandwidth is None):
            raise ValueError("rack_size and uplink_bandwidth go together")
        if self.rack_size is not None and self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.uplink_bandwidth is not None and self.uplink_bandwidth <= 0:
            raise ValueError("uplink_bandwidth must be positive")

    @property
    def total_cores(self) -> int:
        """Total concurrency of the platform."""
        return self.nodes * self.node.cores

    @property
    def total_memory(self) -> int:
        """System memory in bytes."""
        return self.nodes * self.node.memory_bytes

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        """Return a copy scaled to `nodes` nodes."""
        return replace(self, nodes=nodes)


def ross13_testbed(nodes: int = 10) -> ClusterSpec:
    """The paper's evaluation platform, scaled to `nodes` nodes.

    640-node cluster; 2 × Intel Xeon 2.8 GHz 6-core and 24 GB per node; DDR
    InfiniBand (~1.5 GB/s effective per port); Lustre with 1 MB round-robin
    stripes on DDN storage.  The paper's runs use 120 and 1080 processes,
    i.e. 10 and 90 nodes of the machine — pass `nodes` accordingly.

    Calibration notes: the per-request overhead (3 ms) reflects Lustre
    RPC + extent-lock costs for uncached data, which is what degrades
    small collective-buffer rounds; the paging penalty (16x) reflects
    swap-device versus memory-channel bandwidth on the 2012-era nodes.
    """
    return ClusterSpec(
        nodes=nodes,
        node=NodeSpec(
            cores=12,
            memory_bytes=24 * GIB,
            memory_bandwidth=25e9,
            memory_channels=4,
            nic_bandwidth=1.5e9,
            nic_latency=1.5e-6,
        ),
        storage=StorageSpec(
            servers=16,
            server_bandwidth=500e6,
            request_overhead=3e-3,
            stripe_size=1 * MIB,
            write_bandwidth_factor=0.8,
        ),
        paging_penalty=16.0,
        name=f"ross13-testbed-{nodes}n",
    )


def petascale_2010() -> ClusterSpec:
    """The 2010 column of Table 1 (2 Pf/s-class system)."""
    return ClusterSpec(
        nodes=20_000,
        node=NodeSpec(
            cores=12,
            memory_bytes=int(0.3e15 / 20_000),  # 0.3 PB system memory
            memory_bandwidth=25e9,
            memory_channels=4,
            nic_bandwidth=1.5e9,
        ),
        storage=StorageSpec(
            servers=128,
            server_bandwidth=0.2e12 / 128,  # 0.2 TB/s aggregate
            stripe_size=1 * MIB,
        ),
        name="petascale-2010",
    )


def exascale_2018() -> ClusterSpec:
    """The 2018 (projected exascale) column of Table 1.

    1 M nodes, O(1000) cores per node, 10 PB system memory — which is how
    memory per core drops to ~10 MB, the regime the paper targets.
    """
    return ClusterSpec(
        nodes=1_000_000,
        node=NodeSpec(
            cores=1000,
            memory_bytes=int(10e15 / 1_000_000),  # 10 PB system memory
            memory_bandwidth=400e9,
            memory_channels=8,
            nic_bandwidth=50e9,
        ),
        storage=StorageSpec(
            servers=4096,
            server_bandwidth=20e12 / 4096,  # 20 TB/s aggregate
            stripe_size=1 * MIB,
        ),
        name="exascale-2018",
    )


#: The raw rows of the paper's Table 1: (metric, 2010 value, 2018 value,
#: factor change).  Values are kept in the paper's own units/strings so the
#: experiment module can regenerate the table verbatim.
TABLE1_ROWS: tuple[tuple[str, str, str, float], ...] = (
    ("System Peak", "2 Pf/s", "1 Ef/s", 500),
    ("Power", "6 MW", "20 MW", 3),
    ("System Memory", "0.3 PB", "10 PB", 33),
    ("Node Performance", "0.125 Tf/s", "10 Tf/s", 80),
    ("Node Memory BW", "25 GB/s", "400 GB/s", 16),
    ("Node Concurrency", "12 CPUs", "1000 CPUs", 83),
    ("Interconnect BW", "1.5 GB/s", "50 GB/s", 33),
    ("System Size (nodes)", "20 K nodes", "1 M nodes", 50),
    ("Total concurrency", "225 K", "1 B", 4444),
    ("Storage", "15 PB", "300 PB", 20),
    ("I/O Bandwidth", "0.2 TB/s", "20 TB/s", 100),
)


def memory_per_core_factor(
    memory_factor: float, system_size_factor: float, node_concurrency_factor: float
) -> float:
    """The paper's memory-per-core scaling formula ``M / (SZ * NC)``.

    The quotient of the factor change of system memory and system size,
    divided by the factor change of node concurrency.  For Table 1's numbers
    this evaluates to well below 1, i.e. memory per core *shrinks* while
    total concurrency explodes.
    """
    if system_size_factor <= 0 or node_concurrency_factor <= 0:
        raise ValueError("factors must be positive")
    return memory_factor / (system_size_factor * node_concurrency_factor)
