"""Simulated compute node: cores, memory, NIC."""

from __future__ import annotations

from repro.sim import Environment, Resource

from .memory import MemoryModel
from .spec import NodeSpec

__all__ = ["Node"]


class Node:
    """One compute node inside a simulated cluster.

    Exposes the three contended resources the paper reasons about:

    * :attr:`memory` — capacity/availability tracking with paging penalty;
    * :attr:`mem_bus` — ``memory_channels`` slots; holding one charges
      bandwidth ``spec.memory_bandwidth / spec.memory_channels``, so
      concurrent copies on one node fight for off-chip bandwidth;
    * :attr:`nic_tx` / :attr:`nic_rx` — injection/ejection engines, one
      message at a time each, so shuffle traffic into one aggregator
      serializes at its NIC.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        spec: NodeSpec,
        paging_penalty: float = 4.0,
    ):
        self.env = env
        self.node_id = int(node_id)
        self.spec = spec
        self.memory = MemoryModel(
            capacity_bytes=spec.memory_bytes, paging_penalty=paging_penalty
        )
        self.mem_bus = Resource(
            env, capacity=spec.memory_channels, name=f"node{node_id}.membus"
        )
        self.nic_tx = Resource(env, capacity=1, name=f"node{node_id}.tx")
        self.nic_rx = Resource(env, capacity=1, name=f"node{node_id}.rx")
        #: Fault-model state: a failed host is not dead — its processes
        #: limp along (OS thrash, reboot, fenced NIC) at `failure_slowdown`
        #: times the healthy speed, and planners/failover must avoid it.
        self.failed = False
        self.failure_slowdown = 1.0

    def fail(self, slowdown: float = 16.0) -> None:
        """Mark this host failed; local memory traffic slows by `slowdown`."""
        if slowdown < 1.0:
            raise ValueError("failure slowdown must be >= 1.0")
        self.failed = True
        self.failure_slowdown = float(slowdown)

    def recover(self) -> None:
        """Return the host to healthy operation."""
        self.failed = False
        self.failure_slowdown = 1.0

    @property
    def channel_bandwidth(self) -> float:
        """Bytes/second deliverable by one memory channel."""
        return self.spec.memory_bandwidth / self.spec.memory_channels

    def memcopy(self, nbytes: int, paged: bool = False):
        """Process generator: move `nbytes` through this node's memory system.

        Acquires one memory channel FIFO-fairly and holds it for the copy
        time; with `paged` the copy is throttled by the node's *current*
        graded paging factor (1.0 when commitments fit available memory,
        up to the full penalty under deep overcommit).
        """
        req = self.mem_bus.request()
        yield req
        try:
            factor = self.memory.current_paging_factor if paged else 1.0
            if self.failed:
                factor *= self.failure_slowdown
            t = self.memory.copy_time(nbytes, self.channel_bandwidth) * factor
            yield self.env.sleep(t)
        finally:
            self.mem_bus.release(req)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} cores={self.spec.cores}>"
