"""Million-rank projection sweeps on the vectorized node-level driver.

The paper's argument is about machines that cannot be simulated one
coroutine per rank: exascale systems with 10^5–10^6 MPI processes.
This CLI sweeps a block-partitioned checkpoint workload (every rank
owns one contiguous tile, :meth:`PatternArray.tiled`) up a geometric
rank ladder to a target scale, running each point through the
node-level vectorized execution mode (DESIGN.md §11) and reporting
projected collective bandwidth, planner output, and wall-clock cost
per point.

Run::

    PYTHONPATH=src python -m repro.experiments.scale_sweep \\
        --ranks 1000000 --ranks-per-node 64 --time-budget 300

The ``--time-budget`` is enforced: the process exits nonzero if the
whole sweep (all ladder points, write + read each) exceeds it, which is
how CI keeps the 10^5-rank smoke sweep honest and how the acceptance
criterion (10^6 ranks in under five minutes) stays pinned.  Every point
must report ``execution_mode == "vectorized"`` with zero refusals —
these are fault-free, lease-free, metadata-only runs, exactly the
regime vectorization targets — and the CLI exits nonzero otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cluster import MIB, ClusterSpec, NodeSpec, StorageSpec
from repro.core import MCIOConfig, MemoryConsciousCollectiveIO
from repro.core.pattern_array import PatternArray
from repro.core.vectorized import run_vectorized_collective
from repro.experiments.harness import Platform
from repro.experiments.report import format_table
from repro.parallel import ParallelRunner, cell_seed, resolve_jobs

__all__ = ["build_spec", "rank_ladder", "run_point", "run_sweep", "main"]


def build_spec(n_nodes: int, ranks_per_node: int) -> ClusterSpec:
    """An exascale-projection platform: fat nodes, fast fabric, big PFS.

    The node and storage numbers are held fixed across the ladder so
    the sweep isolates *scale*: only the node count grows with the rank
    count.
    """
    return ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=ranks_per_node,
            memory_bytes=2**31,
            memory_bandwidth=1e11,
            memory_channels=8,
            nic_bandwidth=1e10,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=256,
            server_bandwidth=5e9,
            request_overhead=1e-4,
            stripe_size=8 * MIB,
        ),
    )


def rank_ladder(target: int, base: int = 1000, factor: int = 10) -> list[int]:
    """Geometric rank counts up to and always including `target`."""
    if target < 1:
        raise ValueError("target rank count must be >= 1")
    ladder = []
    point = base
    while point < target:
        ladder.append(point)
        point *= factor
    ladder.append(target)
    return ladder


def _ladder_cell(cell) -> list[dict]:
    """Picklable wrapper around :func:`run_point` for cell sharding.

    The per-point platform seed is derived from the cell's own
    signature (:func:`~repro.parallel.cell_seed`), never from worker
    identity, so the ladder's records are identical at any ``--jobs``
    count — and to the serial run (these fault-free metadata sweeps
    never draw from the platform RNG).
    """
    n_ranks, ranks_per_node, bytes_per_rank, ops, seed = cell
    return run_point(
        n_ranks,
        ranks_per_node,
        bytes_per_rank,
        ops,
        seed=cell_seed(seed, n_ranks, ranks_per_node, bytes_per_rank),
    )


def run_point(
    n_ranks: int,
    ranks_per_node: int,
    bytes_per_rank: int,
    ops: tuple[str, ...] = ("write", "read"),
    seed: int = 0,
) -> list[dict]:
    """One ladder point: build, plan, and run every op vectorized."""
    n_nodes = -(-n_ranks // ranks_per_node)
    platform = Platform.build(build_spec(n_nodes, ranks_per_node), n_ranks, seed=seed)
    patterns = PatternArray.tiled(n_ranks, bytes_per_rank)
    engine = MemoryConsciousCollectiveIO(
        platform.comm,
        platform.pfs,
        MCIOConfig(
            msg_group=1 << 40,
            msg_ind=64 * MIB,
            mem_min=0,
            nah=4,
            cb_buffer_size=64 * MIB,
            min_buffer=1 * MIB,
            execution_mode="vectorized",
        ),
    )
    rows = []
    for op in ops:
        wall0 = time.perf_counter()
        stats = run_vectorized_collective(engine, patterns, op)
        wall = time.perf_counter() - wall0
        rows.append(
            {
                "ranks": n_ranks,
                "nodes": n_nodes,
                "op": op,
                "execution_mode": stats.execution_mode,
                "vectorized_refusals": stats.vectorized_refusals,
                "n_aggregators": stats.n_aggregators,
                "rounds_total": stats.rounds_total,
                "total_bytes": stats.total_bytes,
                "sim_elapsed_s": stats.elapsed,
                "bandwidth_mib_s": stats.bandwidth_mib,
                "wall_s": wall,
            }
        )
    return rows


def run_sweep(
    target_ranks: int,
    ranks_per_node: int,
    bytes_per_rank: int,
    ops: tuple[str, ...] = ("write", "read"),
    seed: int = 0,
    jobs: int | None = 1,
) -> list[dict]:
    """Every ladder point up to `target_ranks`, in ascending order.

    `jobs` fans the independent ladder points out across worker
    processes (``None``/``0`` = one per core, ``1`` = serial); record
    order and content are jobs-independent.
    """
    cells = [
        (n_ranks, ranks_per_node, bytes_per_rank, tuple(ops), seed)
        for n_ranks in rank_ladder(target_ranks)
    ]
    rows: list[dict] = []
    if resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            for point_rows in runner.map(_ladder_cell, cells):
                rows.extend(point_rows)
    else:
        for cell in cells:
            rows.extend(_ladder_cell(cell))
    return rows


def _render(rows: list[dict]) -> str:
    return format_table(
        ["ranks", "nodes", "op", "aggs", "rounds", "GiB moved",
         "proj. MiB/s", "wall"],
        [
            (
                f"{r['ranks']:,}",
                f"{r['nodes']:,}",
                r["op"],
                str(r["n_aggregators"]),
                str(r["rounds_total"]),
                f"{r['total_bytes'] / 2**30:.1f}",
                f"{r['bandwidth_mib_s']:,.0f}",
                f"{r['wall_s']:.1f}s",
            )
            for r in rows
        ],
        title="Vectorized scale projection (node-level simulation):",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="vectorized-mode rank-scale projection sweep"
    )
    parser.add_argument(
        "--ranks", type=int, default=1_000_000,
        help="target rank count, top of the ladder (default 1e6)",
    )
    parser.add_argument(
        "--ranks-per-node", type=int, default=64,
        help="co-located ranks folded into each node process (default 64)",
    )
    parser.add_argument(
        "--bytes-per-rank", type=int, default=256 * 1024,
        help="checkpoint tile owned by each rank (default 256 KiB)",
    )
    parser.add_argument(
        "--ops", nargs="+", default=["write", "read"],
        choices=["write", "read"],
        help="collective operations per point (default: write read)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=300.0,
        help="wall-clock seconds the whole sweep must fit in (default 300)",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the per-point records as JSON",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent ladder points "
        "(0 = one per core; default 1 = serial)",
    )
    args = parser.parse_args(argv)

    wall0 = time.perf_counter()
    rows = run_sweep(
        args.ranks,
        args.ranks_per_node,
        args.bytes_per_rank,
        ops=tuple(args.ops),
        seed=args.seed,
        jobs=args.jobs,
    )
    total_wall = time.perf_counter() - wall0

    print(_render(rows))
    print(
        f"\n{len(rows)} cells, top of ladder {args.ranks:,} ranks x "
        f"{args.ranks_per_node} ranks/node, total wall {total_wall:.1f}s "
        f"(budget {args.time_budget:.0f}s)"
    )

    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "target_ranks": args.ranks,
                    "ranks_per_node": args.ranks_per_node,
                    "bytes_per_rank": args.bytes_per_rank,
                    "total_wall_s": total_wall,
                    "time_budget_s": args.time_budget,
                    "cells": rows,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {args.json}")

    failed = False
    not_vectorized = [
        r for r in rows
        if r["execution_mode"] != "vectorized" or r["vectorized_refusals"]
    ]
    if not_vectorized:
        print(
            f"ERROR: {len(not_vectorized)} cell(s) fell back to per-rank "
            "execution — the sweep regime must vectorize",
            file=sys.stderr,
        )
        failed = True
    if total_wall > args.time_budget:
        print(
            f"ERROR: sweep took {total_wall:.1f}s, over the "
            f"{args.time_budget:.0f}s budget",
            file=sys.stderr,
        )
        # per-cell wall times point at the offending ladder rung
        for r in rows:
            print(
                f"  {r['ranks']:>9,} ranks {r['op']:5s} "
                f"{r['wall_s']:6.1f}s",
                file=sys.stderr,
            )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
