"""Dynamic-memory extension: run-time aggregator determination over time.

The paper argues MCIO "determines I/O aggregators at run time"; the
figures evaluate a static memory landscape.  This extension drives each
node's available memory with a mean-reverting background load and issues
a *sequence* of collective writes: the memory-conscious planner takes a
fresh availability snapshot before every collective, while the baseline's
aggregator set is fixed, so the dynamic environment isolates the value of
run-time planning.

Run as a script::

    python -m repro.experiments.dynamic_memory
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import MIB, ross13_testbed
from repro.cluster.background import BackgroundLoad
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.workloads import CollPerfWorkload

from .harness import Platform
from .report import format_table, improvement_pct

__all__ = ["DynamicMemoryResult", "run", "main"]


@dataclass
class DynamicMemoryResult:
    """Per-collective stats for both strategies under memory churn."""

    baseline: list[CollectiveStats]
    mcio: list[CollectiveStats]

    def rows(self):
        """Report rows, one per collective call."""
        out = []
        for i, (b, m) in enumerate(zip(self.baseline, self.mcio)):
            out.append(
                (
                    str(i),
                    f"{b.bandwidth_mib:.0f}",
                    str(b.paged_aggregators),
                    f"{m.bandwidth_mib:.0f}",
                    str(m.paged_aggregators),
                    f"{improvement_pct(b.bandwidth_mib, m.bandwidth_mib):+.0f}%",
                )
            )
        return out

    def render(self) -> str:
        """The per-collective comparison table."""
        return format_table(
            ["call", "two-phase MiB/s", "paged", "MCIO MiB/s", "paged", "improvement"],
            self.rows(),
            title="Collective writes under shifting memory (per call)",
        )

    def mean_improvement(self) -> float:
        """Average improvement over the call sequence, percent."""
        imps = [
            improvement_pct(b.bandwidth_mib, m.bandwidth_mib)
            for b, m in zip(self.baseline, self.mcio)
        ]
        return float(np.mean(imps)) if imps else 0.0


def run(
    n_calls: int = 6,
    buffer_mib: int = 16,
    sigma_mib: int = 40,
    seed: int = 0,
    period: float = 0.5,
) -> DynamicMemoryResult:
    """Run `n_calls` collective writes per strategy under memory churn.

    `period` is the churn update interval in simulated seconds; one
    collective at these sizes takes ~0.1-0.5 s, so the default shifts the
    landscape every call or two, while a small period (e.g. 0.05) also
    exercises planning-snapshot staleness within a call.
    """
    spec = ross13_testbed(nodes=10)
    workload = CollPerfWorkload(array_shape=(384, 384, 512), n_ranks=120)
    patterns = workload.patterns()

    results = {}
    for strategy in ("two-phase", "mcio"):
        platform = Platform.build(spec, workload.n_ranks, seed=seed)
        # churn period ~ one collective duration: the landscape shifts
        # between calls but holds roughly still within one (drop `period`
        # below a call's duration to study planning-snapshot staleness)
        load = BackgroundLoad(
            platform.cluster,
            mean_bytes=buffer_mib * MIB,
            sigma_bytes=sigma_mib * MIB,
            reversion=0.5,
            period=period,
        )
        load.start()
        if strategy == "two-phase":
            engine = TwoPhaseCollectiveIO(
                platform.comm, platform.pfs,
                TwoPhaseConfig(cb_buffer_size=buffer_mib * MIB),
            )
        else:
            engine = MemoryConsciousCollectiveIO(
                platform.comm, platform.pfs,
                MCIOConfig(
                    msg_group=256 * MIB, msg_ind=32 * MIB, mem_min=0, nah=2,
                    cb_buffer_size=buffer_mib * MIB, min_buffer=1 * MIB,
                ),
            )

        def main_fn(ctx):
            for _ in range(n_calls):
                yield from engine.write(ctx, patterns[ctx.rank])

        platform.comm.run_spmd(main_fn)
        load.stop()
        results[strategy] = list(engine.history)
    return DynamicMemoryResult(baseline=results["two-phase"], mcio=results["mcio"])


def main() -> None:
    """CLI entry point."""
    result = run()
    print(result.render())
    print(f"\nmean improvement across the sequence: "
          f"{result.mean_improvement():+.1f}%")


if __name__ == "__main__":
    main()
