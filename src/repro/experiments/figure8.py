"""Figure 8: IOR bandwidth vs aggregation memory at 1080 cores.

Paper setup: IOR interleaved at 1080 processes (90 nodes), aggregation
memory swept 128 MB -> 2 MB.  Paper result: the baseline's write
bandwidth dropped from 1631.91 to 396.36 MB/s (4.1x) and read from
2047.05 to 861.62 MB/s (2.4x); MCIO improved write by +24.3 % and read
by +57.8 % on average.

``small`` scale keeps all 1080 processes but moves 2 MiB per process
(2.1 GiB shared file) over four sweep points; ``paper`` scale moves the
full 32 MB per process (33.75 GB file, metadata-only).

Run as a script::

    python -m repro.experiments.figure8 [--scale small|paper]
"""

from __future__ import annotations

from repro.cluster import MIB, ross13_testbed
from repro.core import MCIOConfig
from repro.workloads import IORWorkload

from .figures import FigureConfig, FigureResult, figure_cli, run_figure

__all__ = ["small_config", "paper_config", "run", "main"]

_PAPER_REFERENCE = (
    "baseline write 1631.91->396.36 MB/s, read 2047.05->861.62 MB/s "
    "(128->2 MB); MCIO avg +24.3% write, +57.8% read (Fig. 8)"
)


def _mcio(msg_group: int, msg_ind: int) -> MCIOConfig:
    return MCIOConfig(
        msg_group=msg_group,
        msg_ind=msg_ind,
        mem_min=0,
        nah=4,
        min_buffer=1 * MIB,
    )


def small_config(seed: int = 0) -> FigureConfig:
    """1080 ranks x 8 MiB interleaved (8.4 GiB file); buffers 32 -> 4 MiB.

    Per-rank data is kept large enough that file domains span several
    buffer rounds — the regime where aggregation memory matters.
    """
    return FigureConfig(
        figure_id="Figure 8 (small)",
        description="IOR interleaved 8 MiB/proc, 1080 procs, 90 nodes",
        spec=ross13_testbed(nodes=90),
        workload=IORWorkload(n_ranks=1080, block_size=2 * MIB, segments=4),
        buffer_sizes=tuple(m * MIB for m in (32, 16, 8, 4)),
        sigma_bytes=50 * MIB,
        mcio=_mcio(msg_group=384 * MIB, msg_ind=96 * MIB),
        granularity="round",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def paper_config(seed: int = 0) -> FigureConfig:
    """The paper's 32 MB per process at 1080 ranks, buffers 128 -> 2 MB."""
    return FigureConfig(
        figure_id="Figure 8 (paper)",
        description="IOR interleaved 32 MB/proc, 1080 procs, 90 nodes",
        spec=ross13_testbed(nodes=90),
        workload=IORWorkload.paper(n_ranks=1080),
        buffer_sizes=tuple(m * MIB for m in (128, 64, 32, 16, 8, 4, 2)),
        sigma_bytes=50 * MIB,
        mcio=_mcio(msg_group=1536 * MIB, msg_ind=256 * MIB),
        granularity="domain",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def run(config: FigureConfig | None = None, seed: int = 0) -> FigureResult:
    """Run the Figure 8 sweep (small scale by default)."""
    return run_figure(config if config is not None else small_config(seed))


def main() -> None:
    """CLI entry point."""
    figure_cli(small_config, paper_config)


if __name__ == "__main__":
    main()
