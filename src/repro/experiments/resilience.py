"""Resilience extension: collective I/O under injected faults.

The paper's evaluation assumes a healthy machine; at extreme scale the
interesting regime is the unhealthy one — object servers slow down and
disappear, nodes lose memory to co-located services, aggregator hosts
fail mid-collective.  This experiment drives both strategies through a
seeded chaos schedule of increasing intensity and reports how gracefully
each degrades:

* the PFS client retry policy (timeout + capped exponential backoff)
  absorbs server outage windows for *both* strategies;
* MCIO additionally re-plans around degraded hosts (soft exclusion of
  failed nodes), fails aggregators over to live hosts between rounds,
  and falls back to a two-phase or independent plan when placement is
  impossible — the baseline has none of these, so the gap widens with
  the fault rate.

At fault rate 0 the schedule is empty and both engines execute exactly
the code path of a fault-free run (the degraded-mode hooks add no
simulation events), so the rate-0 row doubles as a regression anchor.

Run as a script::

    python -m repro.experiments.resilience
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.request import AccessPattern, StridedSegment
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.pfs import RetryPolicy

from .harness import Platform
from .report import format_table

__all__ = ["ChaosPoint", "ResilienceResult", "chaos_schedule", "run", "main"]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class ChaosPoint:
    """One (fault rate, strategy) cell of the chaos sweep."""

    fault_rate: float
    strategy: str
    stats: CollectiveStats
    outages: int
    node_failures: int
    completed: bool


@dataclass
class ResilienceResult:
    """Chaos-sweep outcomes for both strategies."""

    points: list[ChaosPoint]

    def rows(self):
        """Report rows, one per (rate, strategy)."""
        out = []
        for p in sorted(self.points, key=lambda p: (p.fault_rate, p.strategy)):
            st = p.stats
            out.append(
                (
                    f"{p.fault_rate:.2f}",
                    p.strategy,
                    f"{st.bandwidth_mib:.1f}",
                    f"{st.elapsed:.2f}",
                    str(p.outages),
                    str(p.node_failures),
                    str(st.io_retries),
                    str(st.failovers),
                    st.tier,
                )
            )
        return out

    def render(self) -> str:
        """The chaos-sweep comparison table."""
        return format_table(
            [
                "rate", "strategy", "MiB/s", "elapsed s", "outages",
                "node fails", "retries", "failovers", "tier",
            ],
            self.rows(),
            title="Collective write under injected faults",
        )


def _small_spec(n_nodes: int, memory_mib: int) -> ClusterSpec:
    """A deliberately memory-tight platform: multi-round collectives."""
    return ClusterSpec(
        nodes=n_nodes,
        node=NodeSpec(
            cores=4,
            memory_bytes=memory_mib * MIB,
            memory_bandwidth=10**8,
            memory_channels=2,
            nic_bandwidth=10**7,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=10**6,
            request_overhead=1e-3,
            stripe_size=256,
        ),
        paging_penalty=4.0,
    )


def chaos_schedule(
    seed: int,
    rate: float,
    horizon: float,
    n_servers: int,
    n_nodes: int,
) -> FaultSchedule:
    """The sweep's fault plan for one intensity level.

    Random faults arrive Poisson at `rate`-proportional per-kind rates
    (node failures transient — the host reboots); on top, one server
    outage and one *permanent* node failure are pinned early in the
    window so every nonzero-rate cell exercises both recovery paths
    (retry/backoff and aggregator failover) regardless of the Poisson
    draw.  The last node is spared so a live failover target always
    exists.
    """
    if rate <= 0:
        return FaultSchedule()
    generated = FaultSchedule.generate(
        seed,
        horizon=horizon,
        n_servers=n_servers,
        n_nodes=n_nodes,
        server_slowdown_rate=0.5 * rate,
        server_outage_rate=0.25 * rate,
        memory_shock_rate=0.5 * rate,
        node_failure_rate=0.1 * rate,
        outage_duration=(0.05, 0.3),
        shock_bytes=(1 * MIB, 2 * MIB),
        failure_slowdown=16.0,
        failure_duration=horizon / 4,
        spare_nodes=(n_nodes - 1,),
    )
    guaranteed = [
        FaultEvent(
            time=horizon * 0.05, kind="server_outage", target=0, duration=0.3
        ),
        FaultEvent(
            time=horizon * 0.1,
            kind="node_failure",
            target=0,
            duration=None,
            magnitude=16.0,
        ),
    ]
    return generated.merged(guaranteed)


def _chaos_cell(cell, tracer=None) -> ChaosPoint:
    """One (rate, strategy) cell of the chaos sweep.

    Module-level and driven by a plain picklable tuple so the
    cell-sharding runner can ship it to worker processes; the body is
    the serial sweep's, cell for cell — same platform seed, same
    ``(seed, rate)``-derived fault schedule — so results are identical
    at any ``jobs`` count.  `tracer` is only ever passed on the serial
    in-process path (a live tracer cannot cross a process boundary).
    """
    from repro.core import ConservationAuditor

    rate, strategy, seed, n_ranks, n_nodes, payload_kib, horizon, audit = cell
    nbytes = payload_kib * KIB
    # 4 MB nodes with N_ah=4 give ~1 MB buffers on ~4 MB domains: four
    # lockstep rounds (so mid-run failover has rounds left to save) and
    # enough headroom on live hosts to absorb an orphaned buffer
    spec = _small_spec(n_nodes, memory_mib=4)
    platform = Platform.build(
        spec, n_ranks, seed=seed, with_data=False, tracer=tracer
    )
    # generous timeout: outage rejections fail instantly (no timeout
    # needed), and a backstop this large never trips on mere queueing
    # congestion, keeping the rate-0 rows retry-free
    platform.pfs.retry = RetryPolicy(
        request_timeout=30.0, backoff_base=0.01, backoff_cap=0.2, max_retries=25
    )
    schedule = chaos_schedule(
        seed, rate, horizon, len(platform.pfs.servers), n_nodes
    )
    injector = FaultInjector(
        platform.env, platform.cluster, platform.pfs, schedule
    )
    if len(schedule):
        injector.start()
    if strategy == "two-phase":
        engine = TwoPhaseCollectiveIO(
            platform.comm, platform.pfs,
            TwoPhaseConfig(cb_buffer_size=64 * KIB),
        )
    else:
        # "mcio-static" ablates the degraded modes: same planner,
        # no mid-run failover and no fallback chain
        degraded = strategy == "mcio"
        engine = MemoryConsciousCollectiveIO(
            platform.comm, platform.pfs,
            MCIOConfig(
                cb_buffer_size=64 * KIB, msg_ind=4 * MIB, mem_min=0,
                nah=4, failover=degraded, fallback_chain=degraded,
            ),
        )
        engine.watch_faults(injector)
    auditor = ConservationAuditor().attach(engine) if audit else None

    def main_fn(ctx):
        # interleaved (coll_perf-style) pattern: every file domain
        # receives data from every node, so a failed aggregator
        # host degrades shuffle *and* storage injection — the
        # regime where failover to a healthy host pays off
        chunk = 64 * KIB
        pattern = AccessPattern(
            (
                StridedSegment(
                    ctx.rank * chunk,
                    chunk,
                    n_ranks * chunk,
                    nbytes // chunk,
                ),
            )
        )
        yield from engine.write(ctx, pattern)

    platform.comm.run_spmd(main_fn)
    injector.stop()
    stats = engine.history[-1]
    if auditor is not None:
        chunk = 64 * KIB
        auditor.verify(
            [
                AccessPattern(
                    (
                        StridedSegment(
                            r * chunk, chunk, n_ranks * chunk,
                            nbytes // chunk,
                        ),
                    )
                )
                for r in range(n_ranks)
            ]
        )
    return ChaosPoint(
        fault_rate=float(rate),
        strategy=strategy,
        stats=stats,
        outages=injector.applied.get("server_outage", 0),
        node_failures=injector.applied.get("node_failure", 0),
        completed=True,
    )


def run(
    fault_rates=(0.0, 0.5, 1.0),
    seed: int = 0,
    n_ranks: int = 12,
    n_nodes: int = 3,
    payload_kib: int = 1024,
    horizon: float = 8.0,
    tracer=None,
    audit: bool = False,
    jobs=1,
) -> ResilienceResult:
    """Sweep fault intensity for both strategies on a paired platform.

    Every (rate, strategy) cell gets a fresh platform built from the same
    seed and the same fault schedule (derived from ``(seed, rate)``), so
    within a rate the two strategies face an identical storm.  Passing a
    :class:`~repro.obs.Tracer` records every cell onto one concatenated
    timeline (see ``--trace-out`` on the CLI).  With `audit`, every cell
    runs under a :class:`~repro.core.audit.ConservationAuditor` and the
    no-lost-bytes invariant is asserted after each storm (raising
    :class:`~repro.core.audit.ConservationError` on violation).

    `jobs` fans the independent cells out across worker processes
    (``None``/``0`` = one per core, ``1`` = serial).  Point-for-point
    identical results at any jobs count; a tracer forces the serial
    path so timelines concatenate deterministically.
    """
    from repro.parallel import ParallelRunner, resolve_jobs

    cells = [
        (rate, strategy, seed, n_ranks, n_nodes, payload_kib, horizon, audit)
        for rate in fault_rates
        for strategy in ("two-phase", "mcio-static", "mcio")
    ]
    if tracer is None and resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            points = runner.map(_chaos_cell, cells)
    else:
        points = [_chaos_cell(cell, tracer=tracer) for cell in cells]
    return ResilienceResult(points)


def main(argv=None) -> None:
    """CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.resilience",
        description="Collective write under injected faults.",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export a Chrome/Perfetto trace of the whole sweep to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent sweep cells "
        "(0 = one per core; ignored with --trace-out)",
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(capacity=1 << 20)
    result = run(tracer=tracer, jobs=args.jobs)
    print(result.render())
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(tracer, args.trace_out)
        print(
            f"wrote {len(tracer)} trace events to {args.trace_out} "
            f"({tracer.dropped} dropped) — load in ui.perfetto.dev"
        )


if __name__ == "__main__":
    main()
