"""Pipelining extension: persistent collectives with shuffle/PFS overlap.

Iterative checkpoint loops re-run the same collective every timestep.
Two orthogonal savings apply:

* **plan reuse** — a :class:`~repro.core.persistent.PersistentCollective`
  freezes the MCIO plan after the first ``start()`` and skips the
  pattern/memory allgathers and the planning pass on every later epoch;
* **stage overlap** — the pipelined executor double-buffers each planned
  aggregation window as two half-sized slots, so the shuffle of window t
  runs over the PFS service of window t-1 (write: drain to the OSTs;
  read: prefetch) *within the plan's memory budget*.

Whether overlap pays depends on where the aggregators land, which is
exactly what the paper's memory-conscious placement decides.  The sweep
therefore crosses execution mode (blocking loop / persistent /
persistent + overlap) with two memory regimes on the same 16-node
platform:

* ``uniform`` — every node has the same availability, placement spreads
  aggregators everywhere, and every NIC carries shuffle *and* storage
  traffic: the stages share their bottleneck resource and overlap buys
  little;
* ``variance`` — two memory-rich nodes host every aggregator
  (``mem_min`` excludes the poor ones), so shuffle arrives on the rich
  nodes' ingress links while drains leave on egress: disjoint resources,
  and the overlapped pipeline approaches ``max(shuffle, PFS)`` per round
  instead of their sum.

Every cell writes (or reads) the same bytes; the sweep cross-checks the
datastore images across modes within each regime, so the speedup column
is backed by a byte-identical result.

With ``--tenants N`` (N > 1) every cell hosts N copies of the loop as
concurrent tenant jobs on one shared platform
(:class:`repro.tenancy.TenancyHost`): same regimes, same modes, but the
shuffle and the PFS drain now contend with N-1 other tenants.  The
table gains a Jain fairness column over the per-tenant loop times, so
the overlap speedup can be read against what sharing costs.  The
default ``--tenants 1`` keeps the original single-job path bit-for-bit.

Run as a script::

    python -m repro.experiments.pipeline [--tenants N] [--jobs N]
        [--trace-out PATH]
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core import CollectiveStats, MCIOConfig, MemoryConsciousCollectiveIO
from repro.mpi import SimFile, contiguous_view

from .harness import Platform
from .report import format_table

__all__ = ["PipelinePoint", "PipelineResult", "run", "main"]

KIB = 1024

#: Per-rank contiguous block per timestep.
BLOCK = 500_000
N_RANKS = 16
N_NODES = 16
STEPS = 3

RICH = 3_000_000
POOR = 100_000

REGIMES = {
    # placement spreads: every node can host, every NIC is shared
    "uniform": (RICH,) * N_NODES,
    # placement concentrates: only two nodes pass mem_min, all
    # aggregation (and all storage traffic) runs through them
    "variance": (RICH, RICH) + (POOR,) * (N_NODES - 2),
}

MODES = ("blocking", "persistent", "persistent+overlap")


def _spec() -> ClusterSpec:
    return ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(
            cores=1,
            memory_bytes=10**9,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e6,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=1e6,
            request_overhead=1e-3,
            stripe_size=256,
        ),
    )


@dataclass
class PipelinePoint:
    """One (regime, mode, op) cell of the sweep."""

    regime: str
    mode: str
    op: str
    elapsed: float  # simulated seconds for the whole STEPS-epoch loop
    replans: int  # planning passes the persistent handle(s) performed
    overlapped: int  # background PFS-service stages across all epochs
    datastore_sha256: str
    stats: CollectiveStats  # last epoch's record (first tenant's)
    tenants: int = 1  # concurrent copies of the loop sharing the platform
    fairness: float = 1.0  # Jain index over per-tenant loop times


def _rank_bytes(rank: int, nbytes: int) -> np.ndarray:
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + 13) % 251).astype(np.uint8)


def _pipeline_cell(cell, tracer=None) -> PipelinePoint:
    """One sweep cell on a fresh platform.

    Module-level and driven by a plain picklable tuple so the
    cell-sharding runner can ship it to worker processes; identical
    results at any ``jobs`` count.  `tracer` is only passed on the
    serial path (a live tracer cannot cross a process boundary).
    """
    regime, mode, op, steps, seed = cell[:5]
    if len(cell) > 5 and cell[5] > 1:
        return _tenant_pipeline_cell(cell, tracer=tracer)
    platform = Platform.build(
        _spec(), N_RANKS, seed=seed, with_data=True, tracer=tracer
    )
    platform.cluster.set_memory_availability(REGIMES[regime])
    engine = MemoryConsciousCollectiveIO(
        platform.comm,
        platform.pfs,
        MCIOConfig(
            msg_group=10**9, msg_ind=256 * KIB, mem_min=200_000, nah=4,
            min_buffer=1, cb_buffer_size=64 * KIB,
        ),
    )
    fh = SimFile.open(platform.comm, engine)
    if op == "read":
        for r in range(N_RANKS):
            platform.pfs.datastore.write(r * BLOCK, _rank_bytes(r, BLOCK))

    def main_fn(ctx):
        fh.set_view(ctx, contiguous_view(ctx.rank * BLOCK, BLOCK))
        payload = _rank_bytes(ctx.rank, BLOCK) if op == "write" else None
        if mode == "blocking":
            for _ in range(steps):
                if op == "write":
                    yield from fh.write_all(ctx, payload)
                else:
                    yield from fh.read_all(ctx)
            return
        init = fh.write_all_init if op == "write" else fh.read_all_init
        pc = init(ctx, overlap=(mode == "persistent+overlap"))
        for _ in range(steps):
            pc.start(ctx, payload)
            yield from pc.wait(ctx)

    platform.comm.run_spmd(main_fn)
    image = platform.pfs.datastore.read(0, N_RANKS * BLOCK)
    replans = overlapped = 0
    if mode != "blocking":
        replans = fh._pcs[0].replans if fh._pcs else 0
    for stats in engine.history:
        overlapped += stats.extra.get("pipeline_overlapped", 0)
    return PipelinePoint(
        regime=regime,
        mode=mode,
        op=op,
        elapsed=platform.env.now,
        replans=replans,
        overlapped=overlapped,
        datastore_sha256=hashlib.sha256(np.asarray(image).tobytes()).hexdigest(),
        stats=engine.history[-1],
    )


def _tenant_pipeline_cell(cell, tracer=None) -> PipelinePoint:
    """One sweep cell with N concurrent tenants on a shared platform.

    Each tenant runs the same STEPS-epoch checkpoint loop as the
    single-job cell — same ranks-per-job, block size, mode, and regime —
    against its own disjoint file region, all admitted at t=0 (pure
    contention, no queueing policy).  `elapsed` is the makespan and
    `fairness` the Jain index over the per-tenant loop times; the
    datastore image spans every tenant's region, so the cross-mode
    byte check still holds per (regime, op).
    """
    from repro.tenancy import TenancyHost, TenantJob, jain_index

    regime, mode, op, steps, seed, tenants = cell
    config = MCIOConfig(
        msg_group=10**9, msg_ind=256 * KIB, mem_min=200_000, nah=4,
        min_buffer=1, cb_buffer_size=64 * KIB,
    )
    host = TenancyHost(_spec(), seed=seed, tracer=tracer)
    host.cluster.set_memory_availability(REGIMES[regime])
    # every tenant uses the full machine: rank r on node r, so tenants
    # co-locate on every node and contend for its memory and NIC
    placement = list(range(N_NODES))
    for t in range(tenants):
        host.submit(
            TenantJob(
                name=f"t{t}",
                placement=placement,
                op=op,
                steps=steps,
                block=BLOCK,
                offset=t * N_RANKS * BLOCK,
                mode=mode,
                payload_seed=t,
                config=config,
            )
        )
    records = host.run()
    image = host.pfs.datastore.read(0, tenants * N_RANKS * BLOCK)
    replans = overlapped = 0
    if mode != "blocking":
        for fh in host.files.values():
            replans += fh._pcs[0].replans if fh._pcs else 0
    for engine in host.engines.values():
        for stats in engine.history:
            overlapped += stats.extra.get("pipeline_overlapped", 0)
    return PipelinePoint(
        regime=regime,
        mode=mode,
        op=op,
        elapsed=max(r.finished for r in records),
        replans=replans,
        overlapped=overlapped,
        datastore_sha256=hashlib.sha256(np.asarray(image).tobytes()).hexdigest(),
        stats=host.engines["t0"].history[-1],
        tenants=tenants,
        fairness=jain_index([r.elapsed for r in records]),
    )


@dataclass
class PipelineResult:
    """All sweep points plus derived speedups."""

    points: list[PipelinePoint]
    steps: int

    def speedup(self, point: PipelinePoint) -> float:
        """Loop speedup of `point` vs the blocking loop of its cell."""
        base = next(
            p.elapsed
            for p in self.points
            if p.regime == point.regime
            and p.op == point.op
            and p.mode == "blocking"
        )
        return base / point.elapsed

    def render(self) -> str:
        # single-tenant output is unchanged; the fairness column only
        # appears once a multi-tenant cell is present
        multi = any(p.tenants > 1 for p in self.points)
        rows = [
            (
                p.regime,
                p.op,
                p.mode,
                f"{p.elapsed:.3f}",
                f"{self.speedup(p):.3f}",
                p.replans,
                p.overlapped,
            )
            + ((p.tenants, f"{p.fairness:.4f}") if multi else ())
            for p in self.points
        ]
        return format_table(
            ("regime", "op", "mode", "sim time (s)", "speedup",
             "replans", "overlapped")
            + (("tenants", "jain") if multi else ()),
            rows,
            title=(
                f"Persistent & pipelined collective I/O — "
                f"{self.steps}-step loop, {N_RANKS} ranks / {N_NODES} nodes"
            ),
        )


def run(
    steps: int = STEPS, seed: int = 0, jobs=1, tracer=None, tenants: int = 1
) -> PipelineResult:
    """Sweep execution mode x memory regime x op on paired platforms.

    Every cell runs the same per-rank byte pattern, so within one
    (regime, op) the final datastore image must be identical across
    modes — asserted here, making the speedup column trustworthy.
    `jobs` fans the independent cells out across worker processes
    (``None``/``0`` = one per core, ``1`` = serial); identical results
    at any jobs count.  A tracer forces the serial path and lays every
    cell on one concatenated timeline.  ``tenants > 1`` runs every cell
    as that many concurrent copies of the loop sharing one platform
    (the byte check then spans every tenant's file region).
    """
    from repro.parallel import ParallelRunner, resolve_jobs

    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    cells = [
        (regime, mode, op, steps, seed, tenants)
        for regime in REGIMES
        for op in ("write", "read")
        for mode in MODES
    ]
    if tracer is None and resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            points = runner.map(_pipeline_cell, cells)
    else:
        points = [_pipeline_cell(cell, tracer=tracer) for cell in cells]
    for regime in REGIMES:
        for op in ("write", "read"):
            digests = {
                p.datastore_sha256
                for p in points
                if p.regime == regime and p.op == op
            }
            if len(digests) != 1:
                raise AssertionError(
                    f"{regime}/{op}: datastore images diverge across modes"
                )
    return PipelineResult(points=list(points), steps=steps)


def main(argv=None) -> None:
    """CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.pipeline",
        description="Persistent & pipelined collective I/O sweep.",
    )
    parser.add_argument(
        "--steps", type=int, default=STEPS, metavar="N",
        help=f"checkpoint epochs per cell (default {STEPS})",
    )
    parser.add_argument(
        "--tenants", type=int, default=1, metavar="N",
        help="concurrent copies of the loop sharing each cell's platform "
        "(default 1 = the original single-job sweep)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep cells "
        "(0 = one per core; ignored with --trace-out)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export a Chrome/Perfetto trace of the whole sweep to PATH",
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(capacity=1 << 20)
    result = run(
        steps=args.steps, tracer=tracer, jobs=args.jobs, tenants=args.tenants
    )
    print(result.render())
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(tracer, args.trace_out)
        print(f"trace written to {args.trace_out}")


if __name__ == "__main__":
    main()
