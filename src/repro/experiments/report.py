"""Text rendering of experiment results (the tables the figures plot)."""

from __future__ import annotations

from typing import Optional, Sequence

from .harness import SweepPoint

__all__ = [
    "format_table",
    "improvement_pct",
    "sweep_rows",
    "sweep_table",
    "average_improvements",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement of `improved` over `baseline`, percent."""
    if baseline <= 0:
        return 0.0
    return (improved / baseline - 1.0) * 100.0


def _index(points: Sequence[SweepPoint]) -> dict[tuple[int, str, str], SweepPoint]:
    return {(p.buffer_bytes, p.strategy, p.op): p for p in points}


def sweep_rows(
    points: Sequence[SweepPoint], op: str
) -> list[tuple[int, float, float, float]]:
    """``(buffer, baseline MiB/s, MCIO MiB/s, improvement %)`` per buffer."""
    idx = _index(points)
    buffers = sorted({p.buffer_bytes for p in points}, reverse=True)
    rows = []
    for b in buffers:
        base = idx.get((b, "two-phase", op))
        mcio = idx.get((b, "mcio", op))
        if base is None or mcio is None:
            continue
        rows.append(
            (
                b,
                base.bandwidth_mib,
                mcio.bandwidth_mib,
                improvement_pct(base.bandwidth_mib, mcio.bandwidth_mib),
            )
        )
    return rows


def sweep_table(points: Sequence[SweepPoint], op: str, title: str = "") -> str:
    """Render one operation's sweep as the paper's figure table."""
    rows = [
        (
            f"{b / 2**20:g}",
            f"{base:.1f}",
            f"{mcio:.1f}",
            f"{imp:+.1f}%",
        )
        for b, base, mcio, imp in sweep_rows(points, op)
    ]
    return format_table(
        ["mem/agg (MiB)", "two-phase (MiB/s)", "MCIO (MiB/s)", "improvement"],
        rows,
        title=title or f"{op} bandwidth vs aggregation memory",
    )


def average_improvements(points: Sequence[SweepPoint]) -> dict[str, float]:
    """Mean improvement % per op across the sweep (the paper's headline)."""
    out = {}
    for op in sorted({p.op for p in points}):
        rows = sweep_rows(points, op)
        if rows:
            out[op] = sum(r[3] for r in rows) / len(rows)
    return out
