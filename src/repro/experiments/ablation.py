"""Ablation study: which of MCIO's mechanisms buys what.

DESIGN.md calls out three separable design choices; each variant disables
one while keeping the rest:

* ``no-groups`` — one aggregation group for the whole workload
  (``msg_group`` = ∞): loses the traffic containment and the per-group
  slot sizing;
* ``memory-oblivious`` — plans as if every node had full physical memory
  (``memory_oblivious=True``): keeps groups/partitioning but places
  aggregators blind to the actual availability;
* ``no-adaptive-buffer`` — hosts must fit the nominal buffer or the
  domain remerges/pages (``adaptive_buffer=False``);
* ``single-aggregator`` — ``N_ah = 1`` (ROMIO's one-process-per-node
  restriction).

Run as a script::

    python -m repro.experiments.ablation
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster import MIB, ross13_testbed
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.workloads import CollPerfWorkload

from .harness import Platform, run_collective
from .report import format_table, improvement_pct

__all__ = ["AblationResult", "VARIANTS", "run", "main"]

_BASE_MCIO = MCIOConfig(
    msg_group=384 * MIB, msg_ind=32 * MIB, mem_min=0, nah=2, min_buffer=1 * MIB
)

#: variant name -> MCIO config derivation
VARIANTS: dict[str, MCIOConfig] = {
    "mcio (full)": _BASE_MCIO,
    "no-groups": replace(_BASE_MCIO, msg_group=1 << 62),
    "memory-oblivious": replace(_BASE_MCIO, memory_oblivious=True),
    "no-adaptive-buffer": replace(_BASE_MCIO, adaptive_buffer=False),
    "single-aggregator": replace(_BASE_MCIO, nah=1),
}


@dataclass
class AblationResult:
    """Bandwidths of the baseline and every MCIO variant."""

    baseline: CollectiveStats
    variants: dict[str, CollectiveStats]

    def rows(self) -> list[tuple[str, str, str, str]]:
        """Report rows: variant, bandwidth, vs baseline, paged count."""
        out = [
            (
                "two-phase (baseline)",
                f"{self.baseline.bandwidth_mib:.1f}",
                "--",
                str(self.baseline.paged_aggregators),
            )
        ]
        for name, stats in self.variants.items():
            out.append(
                (
                    name,
                    f"{stats.bandwidth_mib:.1f}",
                    f"{improvement_pct(self.baseline.bandwidth_mib, stats.bandwidth_mib):+.1f}%",
                    str(stats.paged_aggregators),
                )
            )
        return out

    def render(self) -> str:
        """The ablation table as text."""
        return format_table(
            ["variant", "write MiB/s", "vs baseline", "paged aggs"],
            self.rows(),
            title="Ablation: MCIO mechanisms (coll_perf write, 16 MiB buffers)",
        )


def run(
    buffer_mib: int = 16,
    sigma_mib: int = 50,
    seed: int = 0,
    nodes: int = 10,
    n_ranks: int = 120,
    array_shape: tuple[int, int, int] = (512, 512, 1024),
) -> AblationResult:
    """Run the baseline plus every variant on identical platforms.

    `nodes`/`n_ranks`/`array_shape` scale the platform and workload
    together (defaults are the CLI's full study); the variant ranking is
    stable under proportional downscaling, which the benchmark suite
    uses for a fast regression check.
    """
    spec = ross13_testbed(nodes=nodes)
    workload = CollPerfWorkload(array_shape=array_shape, n_ranks=n_ranks)
    patterns = workload.patterns()

    def fresh_platform() -> Platform:
        platform = Platform.build(spec, workload.n_ranks, seed=seed)
        platform.cluster.sample_memory_availability(
            mean_bytes=buffer_mib * MIB, sigma_bytes=sigma_mib * MIB
        )
        return platform

    platform = fresh_platform()
    baseline_engine = TwoPhaseCollectiveIO(
        platform.comm, platform.pfs, TwoPhaseConfig(cb_buffer_size=buffer_mib * MIB)
    )
    baseline = run_collective(platform, baseline_engine, patterns, ops=("write",))[0]

    variants = {}
    for name, config in VARIANTS.items():
        platform = fresh_platform()
        engine = MemoryConsciousCollectiveIO(
            platform.comm,
            platform.pfs,
            replace(config, cb_buffer_size=buffer_mib * MIB),
        )
        variants[name] = run_collective(platform, engine, patterns, ops=("write",))[0]
    return AblationResult(baseline=baseline, variants=variants)


def main() -> None:
    """CLI entry point."""
    print(run().render())


if __name__ == "__main__":
    main()
