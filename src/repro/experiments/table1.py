"""Table 1: potential exascale computer design vs 2010 HPC designs.

Regenerates the paper's Table 1 (after Vetter et al.) together with the
derived row the paper's argument rests on: the memory-per-core factor
``M / (SZ * NC)``, which shows memory per core *shrinking* ~125x while
total concurrency grows 4444x.

Run as a script::

    python -m repro.experiments.table1
"""

from __future__ import annotations

from repro.cluster.spec import (
    TABLE1_ROWS,
    exascale_2018,
    memory_per_core_factor,
    petascale_2010,
)

from .report import format_table

__all__ = ["table1_rows", "render_table1", "derived_rows", "main"]


def table1_rows() -> list[tuple[str, str, str, str]]:
    """The paper's eleven rows, formatted."""
    return [
        (metric, y2010, y2018, f"{factor:g}")
        for metric, y2010, y2018, factor in TABLE1_ROWS
    ]


def derived_rows() -> list[tuple[str, str, str, str]]:
    """Rows the paper derives from Table 1 (memory-per-core collapse)."""
    factors = {row[0]: row[3] for row in TABLE1_ROWS}
    mpc = memory_per_core_factor(
        factors["System Memory"],
        factors["System Size (nodes)"],
        factors["Node Concurrency"],
    )
    pre = petascale_2010().node.memory_per_core / 2**20
    post = exascale_2018().node.memory_per_core / 2**20
    return [
        (
            "Memory per core (derived)",
            f"{pre:.0f} MB",
            f"{post:.0f} MB",
            f"{mpc:.4f}",
        ),
        (
            "Memory BW per core (derived)",
            f"{petascale_2010().node.bandwidth_per_core / 1e9:.2f} GB/s",
            f"{exascale_2018().node.bandwidth_per_core / 1e9:.2f} GB/s",
            f"{16 / 83:.4f}",
        ),
    ]


def render_table1() -> str:
    """The full table as text."""
    return format_table(
        ["Metric", "2010", "2018", "Factor Change"],
        table1_rows() + derived_rows(),
        title=(
            "Table 1: potential exascale computer design and its "
            "relationship to current HPC designs"
        ),
    )


def main() -> None:
    """Print the table."""
    print(render_table1())


if __name__ == "__main__":
    main()
