"""JSON persistence for experiment results.

Sweep results are plain data; saving them lets a long `--scale paper` run
be rendered, compared, or plotted later without re-simulating.  The
format is stable and self-describing::

    {
      "schema": "repro.sweep/1",
      "figure_id": "...", "description": "...",
      "points": [ {"buffer_bytes": ..., "strategy": "...", "op": "...",
                   "stats": { ...CollectiveStats fields... }}, ... ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.core.metrics import CollectiveStats

from .harness import SweepPoint

__all__ = [
    "stats_to_dict",
    "stats_from_dict",
    "save_points",
    "load_points",
]

_SCHEMA = "repro.sweep/1"


def stats_to_dict(stats: CollectiveStats) -> dict:
    """Serialize one :class:`CollectiveStats` to plain JSON types.

    Thin alias of :meth:`CollectiveStats.to_json` — kept so existing
    imports (and saved files referencing this module's docs) stay valid.
    """
    return stats.to_json()


def stats_from_dict(d: dict) -> CollectiveStats:
    """Rebuild a :class:`CollectiveStats` from :func:`stats_to_dict` output."""
    return CollectiveStats.from_json(d)


def save_points(
    path: str | Path,
    points: Iterable[SweepPoint],
    figure_id: str = "",
    description: str = "",
) -> None:
    """Write a sweep's points to `path` as JSON."""
    doc = {
        "schema": _SCHEMA,
        "figure_id": figure_id,
        "description": description,
        "points": [
            {
                "buffer_bytes": p.buffer_bytes,
                "strategy": p.strategy,
                "op": p.op,
                "stats": stats_to_dict(p.stats),
            }
            for p in points
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_points(path: str | Path) -> tuple[list[SweepPoint], dict]:
    """Read a sweep back; returns ``(points, metadata)``.

    Raises
    ------
    ValueError
        If the file does not carry the expected schema tag.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != _SCHEMA:
        raise ValueError(f"not a {_SCHEMA} file: {path}")
    points = [
        SweepPoint(
            buffer_bytes=p["buffer_bytes"],
            strategy=p["strategy"],
            op=p["op"],
            stats=stats_from_dict(p["stats"]),
        )
        for p in doc["points"]
    ]
    meta = {k: doc.get(k, "") for k in ("figure_id", "description")}
    return points, meta
