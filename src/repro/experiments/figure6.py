"""Figure 6: coll_perf write/read bandwidth vs aggregation memory, 120 cores.

Paper setup: 2048^3 x 4 B array (32 GB file), 120 MPI processes on the
640-node testbed (10 nodes used), Lustre with 1 MB stripes, aggregation
memory per aggregator swept 128 MB -> 2 MB.  Paper result: memory-
conscious collective I/O outperformed two-phase at every memory size —
average +34.2 % write, +22.9 % read — with the gap widening at small
memory sizes.

``small`` scale shrinks the array to 1 GiB (512x512x1024 x 4 B) and the
sweep to five points so the run takes seconds; ``paper`` scale uses the
full 32 GB geometry (metadata-only, still simulable).

Run as a script::

    python -m repro.experiments.figure6 [--scale small|paper]
"""

from __future__ import annotations

from repro.cluster import MIB, ross13_testbed
from repro.core import MCIOConfig
from repro.workloads import CollPerfWorkload

from .figures import FigureConfig, FigureResult, figure_cli, run_figure

__all__ = ["small_config", "paper_config", "run", "main"]

_PAPER_REFERENCE = "avg +34.2% write, +22.9% read (Fig. 6)"


def _mcio(msg_group: int, msg_ind: int) -> MCIOConfig:
    return MCIOConfig(
        msg_group=msg_group,
        msg_ind=msg_ind,
        mem_min=0,
        nah=2,
        min_buffer=1 * MIB,
    )


def small_config(seed: int = 0) -> FigureConfig:
    """1 GiB array on 120 ranks / 10 nodes; buffers 64 -> 4 MiB."""
    return FigureConfig(
        figure_id="Figure 6 (small)",
        description="coll_perf 512x512x1024 x 4 B, 120 procs, 10 nodes",
        spec=ross13_testbed(nodes=10),
        workload=CollPerfWorkload(
            array_shape=(512, 512, 1024), n_ranks=120, elem_size=4
        ),
        buffer_sizes=tuple(m * MIB for m in (64, 32, 16, 8, 4)),
        sigma_bytes=50 * MIB,
        # groups spanning ~4 nodes so aggregator relocation has room
        mcio=_mcio(msg_group=384 * MIB, msg_ind=32 * MIB),
        granularity="round",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def paper_config(seed: int = 0) -> FigureConfig:
    """The paper's full geometry: 2048^3 x 4 B = 32 GB, buffers 128 -> 2 MB."""
    return FigureConfig(
        figure_id="Figure 6 (paper)",
        description="coll_perf 2048^3 x 4 B (32 GB), 120 procs, 10 nodes",
        spec=ross13_testbed(nodes=10),
        workload=CollPerfWorkload.paper(),
        buffer_sizes=tuple(m * MIB for m in (128, 64, 32, 16, 8, 4, 2)),
        sigma_bytes=50 * MIB,
        mcio=_mcio(msg_group=2048 * MIB, msg_ind=128 * MIB),
        granularity="domain",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def run(config: FigureConfig | None = None, seed: int = 0) -> FigureResult:
    """Run the Figure 6 sweep (small scale by default)."""
    return run_figure(config if config is not None else small_config(seed))


def main() -> None:
    """CLI entry point."""
    figure_cli(small_config, paper_config)


if __name__ == "__main__":
    main()
