"""Experiment harness: build platforms, run collectives, sweep memory.

The paper's evaluation methodology (§4):

* a fixed cluster and Lustre-like file system (1 MB round-robin stripes);
* per run, the aggregation-buffer size is swept; the *available memory*
  of each node is drawn from a normal distribution whose mean equals the
  nominal buffer size, with σ = 50 MB ("the memory buffer sizes for
  processes were set up as random variables following a normal
  distribution ... the standard deviation was set as 50");
* the normal two-phase collective I/O uses the fixed nominal buffer on
  ROMIO's default aggregators; memory-conscious collective I/O plans
  against the actual availability;
* both write and read bandwidth are reported.

:func:`run_memory_sweep` reproduces that loop for any workload and both
strategies, returning the per-point
:class:`~repro.core.metrics.CollectiveStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.cluster import Cluster, ClusterSpec, block_placement
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.core.request import AccessPattern
from repro.mpi import SimComm
from repro.obs import Tracer
from repro.parallel import ParallelRunner, cell_seed, resolve_jobs
from repro.pfs import ParallelFileSystem, SparseFile
from repro.sim import Environment, RngFactory

__all__ = [
    "ParallelRunner",
    "Platform",
    "SweepPoint",
    "cell_seed",
    "resolve_jobs",
    "run_collective",
    "run_memory_sweep",
]


@dataclass
class Platform:
    """A complete simulated platform for one experiment run."""

    env: Environment
    cluster: Cluster
    comm: SimComm
    pfs: ParallelFileSystem

    @classmethod
    def build(
        cls,
        spec: ClusterSpec,
        n_ranks: int,
        seed: int = 0,
        with_data: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> "Platform":
        """Construct env + cluster + comm + PFS from a spec.

        A `tracer` is installed on the fresh environment with an offset
        of its current ``max_ts()``, so one tracer passed to a sequence
        of builds lays the runs end to end on a single timeline.
        """
        env = Environment()
        if tracer is not None:
            tracer.install(env, offset=tracer.max_ts())
        cluster = Cluster(env, spec, RngFactory(seed))
        placement = block_placement(n_ranks, spec.nodes, spec.node.cores)
        comm = SimComm(env, cluster, placement)
        store = SparseFile() if with_data else None
        pfs = ParallelFileSystem(env, spec.storage, datastore=store)
        return cls(env=env, cluster=cluster, comm=comm, pfs=pfs)


def run_collective(
    platform: Platform,
    engine,
    patterns: Sequence[AccessPattern],
    ops: Sequence[str] = ("write", "read"),
) -> list[CollectiveStats]:
    """Run `ops` back to back on `platform` and return their stats.

    MCIO engines configured with ``execution_mode`` ``"vectorized"`` or
    ``"auto"`` dispatch to the node-level driver
    (:func:`~repro.core.vectorized.run_vectorized_collective`);
    ``"sharded"`` dispatches to the group-sharded process-parallel
    driver (:func:`~repro.parallel.run_sharded_collective`).  Both fall
    back to the per-rank path on their own whenever faults, leases or
    the data plane demand per-rank coroutines.
    """
    if len(patterns) != platform.comm.size:
        raise ValueError(
            f"{len(patterns)} patterns for {platform.comm.size} ranks"
        )

    if (
        isinstance(engine, MemoryConsciousCollectiveIO)
        and engine.config.execution_mode in ("vectorized", "auto")
    ):
        from repro.core.vectorized import run_vectorized_collective

        for op in ops:
            run_vectorized_collective(engine, patterns, op)
        return list(engine.history[-len(ops):])

    if (
        isinstance(engine, MemoryConsciousCollectiveIO)
        and engine.config.execution_mode == "sharded"
    ):
        from repro.parallel import run_sharded_collective

        for op in ops:
            run_sharded_collective(engine, patterns, op)
        return list(engine.history[-len(ops):])

    def main(ctx):
        pattern = patterns[ctx.rank]
        for op in ops:
            if op == "write":
                yield from engine.write(ctx, pattern)
            elif op == "read":
                yield from engine.read(ctx, pattern)
            else:
                raise ValueError(f"unknown op {op!r}")

    platform.comm.run_spmd(main)
    return list(engine.history[-len(ops):])


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a memory-sweep experiment."""

    buffer_bytes: int
    strategy: str
    op: str
    stats: CollectiveStats

    @property
    def bandwidth_mib(self) -> float:
        """Effective MiB/s at this point."""
        return self.stats.bandwidth_mib


def _memory_sweep_cell(cell) -> list[SweepPoint]:
    """One (buffer, strategy) cell of :func:`run_memory_sweep`.

    Module-level so the cell-sharding runner can ship it to worker
    processes; `cell` is a plain picklable tuple.  The body is exactly
    the serial loop's — same platform seed, same availability draw —
    so a sweep's points are identical at any ``jobs`` count.
    """
    (
        spec, patterns, buffer, strategy, sigma_bytes, seed,
        mcio_template, tp_template, ops, granularity,
    ) = cell
    platform = Platform.build(spec, len(patterns), seed=seed)
    platform.cluster.sample_memory_availability(
        mean_bytes=float(buffer), sigma_bytes=float(sigma_bytes)
    )
    if strategy == "two-phase":
        engine = TwoPhaseCollectiveIO(
            platform.comm,
            platform.pfs,
            replace(
                tp_template,
                cb_buffer_size=int(buffer),
                shuffle_granularity=granularity,
            ),
        )
    elif strategy == "mcio":
        engine = MemoryConsciousCollectiveIO(
            platform.comm,
            platform.pfs,
            replace(
                mcio_template,
                cb_buffer_size=int(buffer),
                shuffle_granularity=granularity,
            ),
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    all_stats = run_collective(platform, engine, patterns, ops=ops)
    return [
        SweepPoint(
            buffer_bytes=int(buffer), strategy=strategy, op=op, stats=stats
        )
        for op, stats in zip(ops, all_stats)
    ]


def run_memory_sweep(
    spec: ClusterSpec,
    patterns: Sequence[AccessPattern],
    buffer_sizes: Sequence[int],
    sigma_bytes: float,
    seed: int = 0,
    mcio_config: Optional[MCIOConfig] = None,
    twophase_config: Optional[TwoPhaseConfig] = None,
    ops: Sequence[str] = ("write", "read"),
    strategies: Sequence[str] = ("two-phase", "mcio"),
    granularity: str = "round",
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = 1,
) -> list[SweepPoint]:
    """The paper's evaluation loop.

    For every nominal buffer size, both strategies run the same workload
    on a fresh platform whose per-node available memory is drawn from
    ``N(buffer, sigma)`` (same seed ⇒ both strategies see the *same*
    memory landscape, a paired comparison).

    Parameters
    ----------
    spec:
        Platform description.
    patterns:
        Per-rank file views (defines the rank count).
    buffer_sizes:
        Nominal aggregation-buffer sizes to sweep, bytes.
    sigma_bytes:
        Std-dev of the availability distribution (paper: 50 MB).
    mcio_config / twophase_config:
        Templates; ``cb_buffer_size`` and ``shuffle_granularity`` are
        overridden per point.
    ops:
        Which operations to measure (order preserved).
    strategies:
        Subset of ``("two-phase", "mcio")``.
    tracer:
        Optional :class:`~repro.obs.Tracer` installed on every point's
        platform (timelines concatenated), for exporting the whole sweep
        as one trace.  A tracer forces the serial path (live timelines
        stay in-process), keeping traced sweeps bit-identical.
    jobs:
        Cell-sharding worker count: fan the (buffer, strategy) cells out
        across processes (``None``/``0`` = one per core, ``1`` = serial,
        the default).  Results are identical at any jobs count — every
        cell builds its own platform from the same seed.

    Returns
    -------
    list of SweepPoint
        One per (buffer, strategy, op); order independent of `jobs`.
    """
    n_ranks = len(patterns)
    mcio_template = mcio_config if mcio_config is not None else MCIOConfig()
    tp_template = (
        twophase_config if twophase_config is not None else TwoPhaseConfig()
    )
    cells = [
        (
            spec, tuple(patterns), buffer, strategy, sigma_bytes, seed,
            mcio_template, tp_template, tuple(ops), granularity,
        )
        for buffer in buffer_sizes
        for strategy in strategies
    ]
    points: list[SweepPoint] = []
    if tracer is None and resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            for cell_points in runner.map(_memory_sweep_cell, cells):
                points.extend(cell_points)
        return points
    for buffer in buffer_sizes:
        for strategy in strategies:
            platform = Platform.build(spec, n_ranks, seed=seed, tracer=tracer)
            platform.cluster.sample_memory_availability(
                mean_bytes=float(buffer), sigma_bytes=float(sigma_bytes)
            )
            if strategy == "two-phase":
                engine = TwoPhaseCollectiveIO(
                    platform.comm,
                    platform.pfs,
                    replace(
                        tp_template,
                        cb_buffer_size=int(buffer),
                        shuffle_granularity=granularity,
                    ),
                )
            elif strategy == "mcio":
                engine = MemoryConsciousCollectiveIO(
                    platform.comm,
                    platform.pfs,
                    replace(
                        mcio_template,
                        cb_buffer_size=int(buffer),
                        shuffle_granularity=granularity,
                    ),
                )
            else:
                raise ValueError(f"unknown strategy {strategy!r}")
            all_stats = run_collective(platform, engine, patterns, ops=ops)
            for op, stats in zip(ops, all_stats):
                points.append(
                    SweepPoint(
                        buffer_bytes=int(buffer),
                        strategy=strategy,
                        op=op,
                        stats=stats,
                    )
                )
    return points
