"""Memory-pressure experiment: the poster's qualitative claims.

Beyond bandwidth, the paper claims MCIO "reduces aggregator memory
consumption and variance" and "restricts aggregation data traffic within
disjointed subgroups".  This experiment runs both strategies on the same
workload and memory landscape and reports:

* per-aggregator peak buffer memory (mean / max);
* the spread (std-dev) of buffer memory across aggregators;
* paged-aggregator counts;
* shuffle traffic split intra-node / inter-node / inter-group (MCIO's
  inter-group bytes must be exactly zero).

Run as a script::

    python -m repro.experiments.memory_pressure
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster import MIB, ross13_testbed
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.workloads import CollPerfWorkload

from .harness import Platform, run_collective
from .report import format_table

__all__ = ["MemoryPressureResult", "run", "main"]


@dataclass
class MemoryPressureResult:
    """Paired stats of one memory-pressure run."""

    baseline: CollectiveStats
    mcio: CollectiveStats

    def rows(self) -> list[tuple[str, str, str]]:
        """Metric rows for the report table."""
        b, m = self.baseline, self.mcio

        def mib(v: float) -> str:
            return f"{v / 2**20:.1f}"

        return [
            ("aggregators", str(b.n_aggregators), str(m.n_aggregators)),
            ("agg buffer mean (MiB)", mib(b.agg_memory_mean), mib(m.agg_memory_mean)),
            ("agg buffer peak (MiB)", mib(b.agg_memory_peak), mib(m.agg_memory_peak)),
            (
                "memory overcommit mean (MiB)",
                mib(b.overcommit_mean),
                mib(m.overcommit_mean),
            ),
            (
                "memory overcommit peak (MiB)",
                mib(b.overcommit_peak),
                mib(m.overcommit_peak),
            ),
            (
                "memory overcommit std (MiB)",
                mib(b.overcommit_std),
                mib(m.overcommit_std),
            ),
            ("paged aggregators", str(b.paged_aggregators), str(m.paged_aggregators)),
            (
                "intra-node shuffle (MiB)",
                mib(b.shuffle_intra_node_bytes),
                mib(m.shuffle_intra_node_bytes),
            ),
            (
                "inter-node shuffle (MiB)",
                mib(b.shuffle_inter_node_bytes),
                mib(m.shuffle_inter_node_bytes),
            ),
            (
                "inter-group shuffle (MiB)",
                mib(b.shuffle_inter_group_bytes),
                mib(m.shuffle_inter_group_bytes),
            ),
            ("groups", str(b.n_groups), str(m.n_groups)),
            (
                "write bandwidth (MiB/s)",
                f"{b.bandwidth_mib:.1f}",
                f"{m.bandwidth_mib:.1f}",
            ),
        ]

    def render(self) -> str:
        """The comparison table as text."""
        return format_table(
            ["metric", "two-phase", "MCIO"],
            self.rows(),
            title="Memory pressure and traffic containment (collective write)",
        )

    def check_claims(self) -> list[str]:
        """Validate the poster's qualitative claims; returns violations."""
        issues = []
        b, m = self.baseline, self.mcio
        if m.shuffle_inter_group_bytes != 0:
            issues.append("MCIO leaked shuffle traffic across groups")
        if m.paged_aggregators > b.paged_aggregators:
            issues.append("MCIO paged more aggregators than the baseline")
        if m.overcommit_mean > b.overcommit_mean:
            issues.append(
                "MCIO's mean memory overcommit exceeds the baseline's"
            )
        if m.overcommit_std > b.overcommit_std:
            issues.append(
                "MCIO's memory-overcommit variance exceeds the baseline's"
            )
        return issues


def run(
    buffer_mib: int = 16,
    sigma_mib: int = 50,
    seed: int = 0,
    mcio_config: Optional[MCIOConfig] = None,
) -> MemoryPressureResult:
    """Run the paired comparison on the coll_perf workload (1 GiB file)."""
    spec = ross13_testbed(nodes=10)
    workload = CollPerfWorkload(array_shape=(512, 512, 1024), n_ranks=120)
    patterns = workload.patterns()
    template = (
        mcio_config
        if mcio_config is not None
        else MCIOConfig(
            msg_group=384 * MIB, msg_ind=32 * MIB, mem_min=0, nah=2,
            min_buffer=1 * MIB,
        )
    )

    stats = {}
    for strategy in ("two-phase", "mcio"):
        platform = Platform.build(spec, workload.n_ranks, seed=seed)
        platform.cluster.sample_memory_availability(
            mean_bytes=buffer_mib * MIB, sigma_bytes=sigma_mib * MIB
        )
        if strategy == "two-phase":
            engine = TwoPhaseCollectiveIO(
                platform.comm, platform.pfs,
                TwoPhaseConfig(cb_buffer_size=buffer_mib * MIB),
            )
        else:
            engine = MemoryConsciousCollectiveIO(
                platform.comm, platform.pfs,
                replace(template, cb_buffer_size=buffer_mib * MIB),
            )
        stats[strategy] = run_collective(platform, engine, patterns, ops=("write",))[0]
    return MemoryPressureResult(baseline=stats["two-phase"], mcio=stats["mcio"])


def main() -> None:
    """CLI entry point."""
    result = run()
    print(result.render())
    issues = result.check_claims()
    if issues:
        print("\nCLAIM VIOLATIONS:")
        for issue in issues:
            print(f"  - {issue}")
    else:
        print("\nclaim checks passed")


if __name__ == "__main__":
    main()
