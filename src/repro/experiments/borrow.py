"""Borrow-vs-remerge sweep: remote-memory leasing under lender faults.

The paper's remerge step answers memory pressure by *shrinking the
aggregator set*: domains whose hosts lack ``Mem_avl`` fold into their
neighbours, lengthening the lockstep tail.  The borrowing extension
answers it by *moving the buffer instead of the work*: a memory-poor
aggregator leases aggregation-buffer capacity from a memory-rich node
and stages rounds across the fabric at α–β cost (see
:mod:`repro.core.borrow`).

This sweep compares the three placement policies (``remerge`` |
``borrow`` | ``hybrid``) across memory-variance regimes and lender-fault
scenarios:

* **uniform-tight** — every node equally memory-poor: no viable lender
  exists, so all three policies collapse to the same remerged plan (the
  regression anchor);
* **skewed** — one memory-rich node among poor ones: the paper's
  memory-variance regime, where borrowing keeps the aggregator set wide;
* faults — ``none``, a **lender-crash** (the rich node dies mid-round),
  and a **lender-shock** (a memory shock squeezes the lender, revoking
  its leases).  Both must complete via the deterministic mid-collective
  degradation to remerge, with zero lost bytes.

Every cell runs with real payloads, verifies the written file image
against the expected per-rank bytes, and passes the
:class:`~repro.core.audit.ConservationAuditor`.  Fault times come from a
fault-free probe of the same cell (≈45 % of its elapsed time), so the
fault always lands mid-collective regardless of policy timing.

Run as a script::

    python -m repro.experiments.borrow --json-out borrow.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core import (
    CollectiveStats,
    ConservationAuditor,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
)
from repro.core.request import AccessPattern, StridedSegment

from .harness import Platform
from .report import format_table
from .resilience import _small_spec

__all__ = ["BorrowPoint", "BorrowResult", "run", "main"]

KIB = 1024
MIB = 1024 * 1024

POLICIES = ("remerge", "borrow", "hybrid")
REGIMES = ("uniform-tight", "skewed")
FAULTS = ("none", "lender-crash", "lender-shock")


@dataclass(frozen=True)
class BorrowPoint:
    """One (policy, regime, fault) cell of the sweep."""

    policy: str
    regime: str
    fault: str
    stats: CollectiveStats
    image_ok: bool
    audit_ok: bool

    def to_json(self) -> dict:
        st = self.stats
        return {
            "policy": self.policy,
            "regime": self.regime,
            "fault": self.fault,
            "bandwidth_mib": st.bandwidth_mib,
            "elapsed": st.elapsed,
            "tier": st.tier,
            "leases_granted": st.leases_granted,
            "leases_renewed": st.leases_renewed,
            "leases_revoked": st.leases_revoked,
            "leases_expired": st.leases_expired,
            "borrow_bytes": st.borrow_bytes,
            "borrow_fallbacks": st.borrow_fallbacks,
            "failovers": st.failovers,
            "image_ok": self.image_ok,
            "audit_ok": self.audit_ok,
        }


@dataclass
class BorrowResult:
    """Sweep outcomes across policies, regimes, and faults."""

    points: list[BorrowPoint]

    def rows(self):
        out = []
        for p in self.points:
            st = p.stats
            out.append(
                (
                    p.regime,
                    p.fault,
                    p.policy,
                    f"{st.bandwidth_mib:.2f}",
                    f"{st.elapsed:.4f}",
                    str(st.leases_granted),
                    str(st.leases_revoked + st.leases_expired),
                    f"{st.borrow_bytes // KIB}K",
                    str(st.borrow_fallbacks),
                    st.tier,
                    "ok" if (p.image_ok and p.audit_ok) else "VIOLATED",
                )
            )
        return out

    def render(self) -> str:
        return format_table(
            [
                "regime", "fault", "policy", "MiB/s", "elapsed s",
                "leases", "revoked", "borrowB", "aborts", "tier", "audit",
            ],
            self.rows(),
            title="Remote-memory borrowing vs remerge under lender faults",
        )

    def to_json(self) -> list[dict]:
        return [p.to_json() for p in self.points]


def _patterns(n_ranks: int, nbytes: int) -> list[AccessPattern]:
    """Contiguous per-rank blocks tiling ``[0, n_ranks * nbytes)``."""
    return [
        AccessPattern((StridedSegment(r * nbytes, nbytes, nbytes, 1),))
        for r in range(n_ranks)
    ]


def _payload(rank: int, nbytes: int) -> np.ndarray:
    idx = np.arange(nbytes, dtype=np.int64)
    return ((idx * 31 + rank * 97 + 13) % 251).astype(np.uint8)


def _apply_regime(platform: Platform, regime: str, rich_node: int) -> None:
    """Pin per-node available memory to the regime's shape.

    The rich node is memory-*rich*, not unlimited: 64 KiB keeps even a
    fully remerged plan multi-round (so mid-round faults have rounds
    left to disturb) while leaving room for several 8 KiB leases.
    """
    for node in platform.cluster.nodes:
        if regime == "skewed" and node.node_id == rich_node:
            node.memory.set_available(64 * KIB)
        else:
            node.memory.set_available(6 * KIB)


def _run_cell(
    policy: str,
    regime: str,
    fault: str,
    n_ranks: int,
    n_nodes: int,
    nbytes: int,
    seed: int,
    fault_at,
    tracer=None,
):
    """One sweep cell; returns ``(point, elapsed)``."""
    spec = _small_spec(n_nodes, memory_mib=4)
    platform = Platform.build(
        spec, n_ranks, seed=seed, with_data=True, tracer=tracer
    )
    rich = n_nodes - 1
    _apply_regime(platform, regime, rich)
    config = MCIOConfig(
        placement_policy=policy,
        adaptive_buffer=False,
        mem_min=0,
        cb_buffer_size=8 * KIB,
        msg_ind=4 * KIB,
        msg_group=1 << 30,
        nah=2,
        min_buffer=1,
        failover=True,
    )
    engine = MemoryConsciousCollectiveIO(platform.comm, platform.pfs, config)
    auditor = ConservationAuditor().attach(engine)
    patterns = _patterns(n_ranks, nbytes)
    payloads = [_payload(r, nbytes) for r in range(n_ranks)]

    def main_fn(ctx):
        if fault != "none" and fault_at is not None and ctx.rank == 0:
            def saboteur():
                yield ctx.env.sleep(fault_at)
                node = platform.cluster.node_of(rich)
                if fault == "lender-crash":
                    node.fail()
                else:
                    # squeeze the lender into overcommit: available drops
                    # below what its outstanding leases pinned
                    node.memory.apply_shock(node.memory.available)
            ctx.spawn(saboteur(), name="lender-saboteur")
        yield from engine.write(ctx, patterns[ctx.rank], payloads[ctx.rank])

    platform.comm.run_spmd(main_fn)
    stats = engine.history[-1]

    image_ok = all(
        np.array_equal(
            platform.pfs.datastore.read(r * nbytes, nbytes), payloads[r]
        )
        for r in range(n_ranks)
    )
    try:
        auditor.verify(patterns)
        audit_ok = True
    except AssertionError:
        audit_ok = False
    point = BorrowPoint(
        policy=policy,
        regime=regime,
        fault=fault,
        stats=stats,
        image_ok=image_ok,
        audit_ok=audit_ok,
    )
    return point, stats.elapsed


def _cell_tuple(cell):
    """Picklable wrapper around :func:`_run_cell` for cell sharding."""
    policy, regime, fault, n_ranks, n_nodes, nbytes, seed, fault_at = cell
    return _run_cell(
        policy, regime, fault, n_ranks, n_nodes, nbytes, seed,
        fault_at=fault_at,
    )


def run(
    n_ranks: int = 12,
    n_nodes: int = 3,
    payload_kib: int = 8,
    seed: int = 0,
    faults=FAULTS,
    policies=POLICIES,
    regimes=REGIMES,
    tracer=None,
    jobs=1,
) -> BorrowResult:
    """Sweep every (regime, fault, policy) cell.

    Fault cells reuse the fault-free probe's elapsed time to aim the
    lender fault at ≈45 % of the collective, i.e. mid-round for every
    policy.  Cells are fully independent platforms built from `seed`.

    `jobs` fans cells out across worker processes in two waves — all
    fault-free probes first (fault cells need their elapsed times),
    then all fault cells — reassembled in the serial order, so results
    are identical at any jobs count.  A tracer forces the serial path.
    """
    from repro.parallel import ParallelRunner, resolve_jobs

    nbytes = payload_kib * KIB
    pairs = [(regime, policy) for regime in regimes for policy in policies]
    fault_kinds = tuple(f for f in faults if f != "none")

    if tracer is None and resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            probes = runner.map(
                _cell_tuple,
                [
                    (policy, regime, "none", n_ranks, n_nodes, nbytes, seed,
                     None)
                    for regime, policy in pairs
                ],
            )
            fault_cells = [
                (policy, regime, fault, n_ranks, n_nodes, nbytes, seed,
                 elapsed * 0.45)
                for (regime, policy), (_, elapsed) in zip(pairs, probes)
                for fault in fault_kinds
            ]
            fault_points = iter(
                p for p, _ in runner.map(_cell_tuple, fault_cells)
            )
        points: list[BorrowPoint] = []
        for (regime, policy), (probe, _) in zip(pairs, probes):
            if "none" in faults:
                points.append(probe)
            points.extend(next(fault_points) for _ in fault_kinds)
        return BorrowResult(points)

    points = []
    for regime, policy in pairs:
        probe, elapsed = _run_cell(
            policy, regime, "none", n_ranks, n_nodes, nbytes, seed,
            fault_at=None, tracer=tracer if "none" in faults else None,
        )
        if "none" in faults:
            points.append(probe)
        for fault in fault_kinds:
            point, _ = _run_cell(
                policy, regime, fault, n_ranks, n_nodes, nbytes, seed,
                fault_at=elapsed * 0.45, tracer=tracer,
            )
            points.append(point)
    return BorrowResult(points)


def main(argv=None) -> None:
    """CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.borrow",
        description="Remote-memory borrowing vs remerge under lender faults.",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write per-cell results as JSON to PATH",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export a Chrome/Perfetto trace of the sweep to PATH",
    )
    parser.add_argument(
        "--faults", metavar="LIST", default=",".join(FAULTS),
        help=f"comma-separated fault subset of {FAULTS}",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep cells "
        "(0 = one per core; ignored with --trace-out)",
    )
    args = parser.parse_args(argv)

    faults = tuple(f for f in args.faults.split(",") if f)
    unknown = [f for f in faults if f not in FAULTS]
    if unknown:
        parser.error(f"unknown faults {unknown}; choose from {FAULTS}")

    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(capacity=1 << 20)
    result = run(faults=faults, tracer=tracer, jobs=args.jobs)
    print(result.render())
    bad = [p for p in result.points if not (p.image_ok and p.audit_ok)]
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_json(), fh, indent=2)
        print(f"wrote {len(result.points)} cells to {args.json_out}")
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(tracer, args.trace_out)
        print(
            f"wrote {len(tracer)} trace events to {args.trace_out} "
            f"({tracer.dropped} dropped) — load in ui.perfetto.dev"
        )
    if bad:
        raise SystemExit(
            f"{len(bad)} cells violated byte conservation or image equality"
        )


if __name__ == "__main__":
    main()
