"""Multi-tenant contention sweep: does memory-consciousness survive sharing?

The paper evaluates MCIO with one job owning the machine.  Production
parallel file systems are shared: at any instant several collectives
from different jobs hammer the same OSTs and links.  This sweep crosses

* **tenant count** — 1, 2, 4, 8 concurrent jobs (Poisson arrivals, one
  seeded stream per cell) on one shared 8-node / 4-OST platform;
* **memory regime** — ``uniform`` (every node aggregation-capable) vs.
  ``variance`` (two rich nodes host every aggregator);
* **scheduler policy** — free-for-all / fifo / ost-throttle admission
  (:mod:`repro.tenancy.scheduler`);
* **strategy** — ``mcio`` (memory-conscious placement) vs.
  ``oblivious`` (``memory_oblivious=True``: the ROMIO-style fixed
  aggregator set),

and reports, per cell: mean and max per-job slowdown vs. each job's
isolated run on an identical idle platform, the Jain fairness index
over those slowdowns, aggregate PFS utilization, and makespan.  The
question it answers: under contention, does memory-conscious placement
still beat oblivious placement (per-tenant *and* in aggregate), and
which admission policy keeps the mix fair as tenants pile up?

Every cell is a pure function of its coordinates (rank-independent
seeds via :func:`repro.parallel.cell_seed`), so ``--jobs N`` sharding
and serial runs produce byte-identical JSON.

Run as a script::

    python -m repro.experiments.tenancy [--tenants 1,2,4,8] [--jobs N]
        [--json-out PATH] [--trace-out PATH]
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster import ClusterSpec, NodeSpec, StorageSpec
from repro.core import MCIOConfig

from .report import format_table

__all__ = ["TenancyPoint", "TenancyResult", "run", "main"]

KIB = 1024

#: Per-rank contiguous block per step (big enough to stress the OSTs).
BLOCK = 256 * KIB
RANKS_PER_JOB = 4
N_NODES = 8
STEPS = 2
#: Mean job arrivals per sim second for the Poisson stream.
RATE = 2.0

TENANTS = (1, 2, 4, 8)
POLICIES = ("free-for-all", "fifo", "ost-throttle")
STRATEGIES = ("mcio", "oblivious")

RICH = 3_000_000
POOR = 100_000

REGIMES = {
    "uniform": (RICH,) * N_NODES,
    "variance": (RICH, RICH) + (POOR,) * (N_NODES - 2),
}


def _spec() -> ClusterSpec:
    return ClusterSpec(
        nodes=N_NODES,
        node=NodeSpec(
            cores=1,
            memory_bytes=10**9,
            memory_bandwidth=1e8,
            memory_channels=2,
            nic_bandwidth=1e6,
            nic_latency=1e-6,
        ),
        storage=StorageSpec(
            servers=4,
            server_bandwidth=5e5,
            request_overhead=1e-3,
            stripe_size=64 * KIB,
        ),
    )


def _config(strategy: str) -> MCIOConfig:
    return MCIOConfig(
        msg_group=10**9,
        msg_ind=256 * KIB,
        mem_min=200_000,
        nah=4,
        min_buffer=1,
        cb_buffer_size=64 * KIB,
        memory_oblivious=(strategy == "oblivious"),
    )


@dataclass
class TenancyPoint:
    """One (tenants, regime, policy, strategy) cell of the sweep."""

    tenants: int
    regime: str
    policy: str
    strategy: str
    mean_slowdown: float
    max_slowdown: float
    jain: float
    makespan: float
    pfs_utilization: float
    mean_wait: float
    total_bytes: int
    records: list  # per-job JobRecord dicts, submission order

    def to_json(self) -> dict:
        """Stable plain-dict form (byte-identical for identical runs)."""
        return {
            "tenants": self.tenants,
            "regime": self.regime,
            "policy": self.policy,
            "strategy": self.strategy,
            "mean_slowdown": round(self.mean_slowdown, 9),
            "max_slowdown": round(self.max_slowdown, 9),
            "jain": round(self.jain, 9),
            "makespan": round(self.makespan, 9),
            "pfs_utilization": round(self.pfs_utilization, 9),
            "mean_wait": round(self.mean_wait, 9),
            "total_bytes": self.total_bytes,
            "records": self.records,
        }


def _tenancy_cell(cell, tracer=None) -> TenancyPoint:
    """One sweep cell: a shared run plus per-job isolated baselines.

    Module-level and driven by a plain picklable tuple so the
    cell-sharding runner can ship it to worker processes; identical
    results at any ``--jobs`` count.  The per-cell arrival stream is
    seeded from the cell coordinates, so every policy/strategy sees the
    *same* job mix for a given (tenants, regime, seed).
    """
    from repro.parallel import cell_seed
    from repro.tenancy import (
        FairnessReport,
        TenancyHost,
        jobs_from_arrivals,
        resolve_policy,
        run_isolated,
    )
    from repro.workloads import PoissonArrivals

    tenants, regime, policy_name, strategy, steps, seed = cell
    stream_seed = cell_seed(seed, "tenancy", tenants, regime)
    arrivals = PoissonArrivals(
        rate=RATE,
        n_jobs=tenants,
        seed=stream_seed,
        read_fraction=0.25,
        n_ranks=RANKS_PER_JOB,
        blocks=(BLOCK,),
        steps=(steps,),
    ).jobs()
    jobs = jobs_from_arrivals(
        arrivals, n_nodes=N_NODES, layout="striped", config=_config(strategy)
    )
    availability = REGIMES[regime]

    host = TenancyHost(
        _spec(), seed=seed, policy=resolve_policy(policy_name), tracer=tracer
    )
    host.cluster.set_memory_availability(availability)
    for job in jobs:
        host.submit(job)
    records = host.run()
    baselines = [
        run_isolated(_spec(), job, seed=seed, availability=availability)
        for job in jobs
    ]
    report = FairnessReport.build(records, baselines, host.pfs_bandwidth)
    return TenancyPoint(
        tenants=tenants,
        regime=regime,
        policy=policy_name,
        strategy=strategy,
        mean_slowdown=report.mean_slowdown,
        max_slowdown=report.max_slowdown,
        jain=report.jain,
        makespan=report.makespan,
        pfs_utilization=report.pfs_utilization,
        mean_wait=sum(r.wait for r in records) / len(records),
        total_bytes=report.total_bytes,
        records=[r.to_json() for r in records],
    )


@dataclass
class TenancyResult:
    """All sweep points."""

    points: list[TenancyPoint]
    steps: int

    def render(self) -> str:
        rows = [
            (
                p.tenants,
                p.regime,
                p.policy,
                p.strategy,
                f"{p.mean_slowdown:.3f}",
                f"{p.max_slowdown:.3f}",
                f"{p.jain:.4f}",
                f"{p.mean_wait:.3f}",
                f"{p.makespan:.3f}",
                f"{p.pfs_utilization:.3f}",
            )
            for p in self.points
        ]
        return format_table(
            ("tenants", "regime", "policy", "strategy", "slowdown",
             "max", "jain", "wait (s)", "makespan (s)", "PFS util"),
            rows,
            title=(
                f"Multi-tenant collective I/O — {RANKS_PER_JOB}-rank jobs, "
                f"{self.steps}-step loops, {N_NODES} nodes / 4 OSTs"
            ),
        )

    def to_json(self) -> dict:
        """Stable plain-dict form of the whole sweep."""
        return {
            "steps": self.steps,
            "points": [p.to_json() for p in self.points],
        }

    def to_json_str(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — the determinism
        artifact CI compares across ``--jobs`` counts."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def run(
    tenants=TENANTS,
    regimes=tuple(REGIMES),
    policies=POLICIES,
    strategies=STRATEGIES,
    steps: int = STEPS,
    seed: int = 0,
    jobs=1,
    tracer=None,
) -> TenancyResult:
    """Sweep tenant count x memory regime x policy x strategy.

    `jobs` fans the independent cells out across worker processes
    (``None``/``0`` = one per core, ``1`` = serial); identical results
    at any jobs count.  A tracer forces the serial path and lays every
    cell on one concatenated timeline (per-job lifecycle tracks
    included).
    """
    from repro.parallel import ParallelRunner, resolve_jobs

    cells = [
        (n, regime, policy, strategy, steps, seed)
        for n in tenants
        for regime in regimes
        for policy in policies
        for strategy in strategies
    ]
    if tracer is None and resolve_jobs(jobs) > 1:
        with ParallelRunner(jobs=jobs) as runner:
            points = runner.map(_tenancy_cell, cells)
    else:
        points = [_tenancy_cell(cell, tracer=tracer) for cell in cells]
    return TenancyResult(points=list(points), steps=steps)


def _csv(text: str, cast=str) -> tuple:
    return tuple(cast(part) for part in text.split(",") if part)


def main(argv=None) -> None:
    """CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tenancy",
        description="Multi-tenant collective-I/O contention sweep.",
    )
    parser.add_argument(
        "--tenants", default=",".join(str(n) for n in TENANTS), metavar="LIST",
        help=f"comma-separated tenant counts (default {','.join(map(str, TENANTS))})",
    )
    parser.add_argument(
        "--policies", default=",".join(POLICIES), metavar="LIST",
        help=f"comma-separated admission policies (default {','.join(POLICIES)})",
    )
    parser.add_argument(
        "--strategies", default=",".join(STRATEGIES), metavar="LIST",
        help=f"comma-separated strategies (default {','.join(STRATEGIES)})",
    )
    parser.add_argument(
        "--steps", type=int, default=STEPS, metavar="N",
        help=f"checkpoint epochs per job (default {STEPS})",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base seed for arrival streams and platforms (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep cells "
        "(0 = one per core; ignored with --trace-out)",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the canonical JSON result to PATH",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export a Chrome/Perfetto trace of the whole sweep to PATH",
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(capacity=1 << 20)
    result = run(
        tenants=_csv(args.tenants, int),
        policies=_csv(args.policies),
        strategies=_csv(args.strategies),
        steps=args.steps,
        seed=args.seed,
        jobs=args.jobs,
        tracer=tracer,
    )
    print(result.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fp:
            fp.write(result.to_json_str())
            fp.write("\n")
        print(f"json written to {args.json_out}")
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(tracer, args.trace_out)
        print(f"trace written to {args.trace_out}")


if __name__ == "__main__":
    main()
