"""Reproduction experiments: Table 1 and Figures 6-8, plus extensions.

Each experiment module has a ``run()`` returning a structured result and
a ``main()`` CLI entry point::

    python -m repro.experiments.table1
    python -m repro.experiments.figure6 [--scale small|paper]
    python -m repro.experiments.figure7 [--scale small|paper]
    python -m repro.experiments.figure8 [--scale small|paper]
    python -m repro.experiments.memory_pressure
    python -m repro.experiments.ablation
    python -m repro.experiments.dynamic_memory
    python -m repro.experiments.topology
    python -m repro.experiments.resilience
    python -m repro.experiments.borrow
    python -m repro.experiments.pipeline
    python -m repro.experiments.tenancy
"""

from . import (
    ablation,
    borrow,
    dynamic_memory,
    figure6,
    figure7,
    figure8,
    memory_pressure,
    pipeline,
    resilience,
    table1,
    tenancy,
)
from . import topology  # noqa: F401  (registered experiment)
from .figures import FigureConfig, FigureResult, run_figure
from .harness import Platform, SweepPoint, run_collective, run_memory_sweep
from .persistence import load_points, save_points, stats_from_dict, stats_to_dict
from .report import (
    average_improvements,
    format_table,
    improvement_pct,
    sweep_rows,
    sweep_table,
)

__all__ = [
    "FigureConfig",
    "FigureResult",
    "Platform",
    "SweepPoint",
    "ablation",
    "average_improvements",
    "borrow",
    "dynamic_memory",
    "figure6",
    "figure7",
    "figure8",
    "format_table",
    "improvement_pct",
    "load_points",
    "memory_pressure",
    "pipeline",
    "run_collective",
    "run_figure",
    "run_memory_sweep",
    "save_points",
    "stats_from_dict",
    "stats_to_dict",
    "resilience",
    "sweep_rows",
    "sweep_table",
    "table1",
    "tenancy",
    "topology",
]
