"""Shared configuration/result machinery for the figure experiments."""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster import ClusterSpec
from repro.core import MCIOConfig
from repro.core.request import AccessPattern

from .harness import SweepPoint, run_memory_sweep
from .report import average_improvements, sweep_rows, sweep_table

__all__ = ["FigureConfig", "FigureResult", "run_figure", "figure_cli"]


@dataclass(frozen=True)
class FigureConfig:
    """One figure's reproduction setup."""

    figure_id: str
    description: str
    spec: ClusterSpec
    workload: object  # CollPerfWorkload | IORWorkload (needs .patterns())
    buffer_sizes: tuple[int, ...]
    sigma_bytes: float
    mcio: MCIOConfig
    granularity: str = "round"
    seed: int = 0
    paper_reference: str = ""

    def patterns(self) -> list[AccessPattern]:
        """Per-rank file views of the workload."""
        return self.workload.patterns()


@dataclass
class FigureResult:
    """Points plus rendering/validation helpers."""

    config: FigureConfig
    points: list[SweepPoint] = field(default_factory=list)

    def rows(self, op: str):
        """``(buffer, baseline, mcio, improvement %)`` per swept buffer."""
        return sweep_rows(self.points, op)

    def table(self, op: str) -> str:
        """One op's results as text."""
        return sweep_table(
            self.points, op,
            title=f"{self.config.figure_id} — {op} — {self.config.description}",
        )

    def render(self) -> str:
        """Both tables plus the headline averages."""
        parts = [self.table("write"), "", self.table("read"), ""]
        avgs = average_improvements(self.points)
        parts.append(
            "average improvement: "
            + ", ".join(f"{op} {v:+.1f}%" for op, v in sorted(avgs.items()))
        )
        if self.config.paper_reference:
            parts.append(f"paper reported: {self.config.paper_reference}")
        return "\n".join(parts)

    def average_improvements(self) -> dict[str, float]:
        """Mean improvement per op across the sweep."""
        return average_improvements(self.points)

    # ------------------------------------------------------------------
    def check_shape(self) -> list[str]:
        """Validate the qualitative claims; returns a list of violations.

        Checks (the reproduction targets from DESIGN.md §4):

        * MCIO's bandwidth is at least the baseline's at every swept point
          (small tolerance) — "who wins" with no crossover;
        * neither strategy *gains* bandwidth as memory shrinks (memory
          pressure hurts; a small tolerance absorbs sampling noise);
        * the MCIO advantage is substantial somewhere in the sweep.
        """
        issues: list[str] = []
        for op in ("write", "read"):
            rows = self.rows(op)
            if not rows:
                continue
            for b, base, mcio, imp in rows:
                if mcio < base * 0.98:
                    issues.append(
                        f"{op}@{b / 2**20:g}MiB: MCIO {mcio:.1f} < "
                        f"baseline {base:.1f} MiB/s"
                    )
            largest, smallest = rows[0], rows[-1]
            for name, big, small in (
                ("two-phase", largest[1], smallest[1]),
                ("mcio", largest[2], smallest[2]),
            ):
                if small > big * 1.10:
                    issues.append(
                        f"{op}: {name} bandwidth rose as memory shrank "
                        f"({big:.1f} -> {small:.1f})"
                    )
            if max(r[3] for r in rows) < 15.0:
                issues.append(
                    f"{op}: MCIO advantage never exceeded 15% "
                    f"(max {max(r[3] for r in rows):+.1f}%)"
                )
        return issues


def run_figure(config: FigureConfig, tracer=None, jobs=1) -> FigureResult:
    """Execute a figure's sweep (optionally tracing every point).

    `jobs` fans the sweep's independent (buffer, strategy) cells out
    across worker processes (``1`` = serial; a tracer forces serial).
    """
    points = run_memory_sweep(
        spec=config.spec,
        patterns=config.patterns(),
        buffer_sizes=config.buffer_sizes,
        sigma_bytes=config.sigma_bytes,
        seed=config.seed,
        mcio_config=config.mcio,
        granularity=config.granularity,
        tracer=tracer,
        jobs=jobs,
    )
    return FigureResult(config=config, points=points)


def figure_cli(
    small_factory, paper_factory, argv: Optional[Sequence[str]] = None
) -> None:
    """Standard ``__main__`` for figure modules: ``--scale small|paper``."""
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="small: minutes-scale run; paper: full-size parameters",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also save the sweep points as JSON (repro.sweep/1 schema)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export a Chrome/Perfetto trace of the whole sweep to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent sweep cells "
        "(0 = one per core; ignored with --trace-out)",
    )
    args = parser.parse_args(argv)
    factory = small_factory if args.scale == "small" else paper_factory
    config = factory(seed=args.seed)
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(capacity=1 << 20)
    result = run_figure(config, tracer=tracer, jobs=args.jobs)
    print(result.render())
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(tracer, args.trace_out)
        print(
            f"\nwrote {len(tracer)} trace events to {args.trace_out} "
            f"({tracer.dropped} dropped) — load in ui.perfetto.dev"
        )
    if args.json:
        from .persistence import save_points

        save_points(
            args.json,
            result.points,
            figure_id=config.figure_id,
            description=config.description,
        )
        print(f"\nsaved sweep points to {args.json}")
    issues = result.check_shape()
    if issues:
        print("\nSHAPE WARNINGS:")
        for issue in issues:
            print(f"  - {issue}")
    else:
        print("\nshape checks passed")
