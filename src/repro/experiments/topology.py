"""Group containment on an oversubscribed fabric.

The paper's Aggregation Group Division "restricts the data shuffling
traffic within each group".  On a full-bisection network (the testbed of
the paper's figures, and our flat default) that containment buys little
raw bandwidth — the ablation even shows a small cost at 120 ranks.  The
claim earns its keep on the *oversubscribed* fabrics of extreme-scale
machines, where cross-rack bytes squeeze through shared uplinks.

This experiment runs the same serially-distributed workload on a flat
fabric and on racked fabrics with 3:1 and 12:1 uplink taper, comparing
two-phase, full MCIO, and MCIO without group division.  Expected shape:
without oversubscription no-groups edges ahead (placement freedom); as
the taper steepens, the no-groups variant pays the uplink toll for its
cross-rack shuffle while grouped MCIO, whose shuffle never leaves a
rack, is untouched — and wins decisively at 12:1.

Run as a script::

    python -m repro.experiments.topology
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster import MIB, ross13_testbed
from repro.core import (
    CollectiveStats,
    MCIOConfig,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    TwoPhaseConfig,
)
from repro.workloads import CollPerfWorkload

from .harness import Platform, run_collective
from .report import format_table

__all__ = ["TopologyResult", "run", "main"]

N_NODES = 24
RACK = 6
N_RANKS = N_NODES * 12
BUFFER = 16 * MIB

_MCIO = MCIOConfig(
    msg_group=192 * MIB,  # ~ one rack's share of the file
    msg_ind=32 * MIB,
    mem_min=0,
    nah=2,
    cb_buffer_size=BUFFER,
    min_buffer=1 * MIB,
)

_VARIANTS = {
    "two-phase": None,
    "mcio (groups)": _MCIO,
    "mcio (no groups)": replace(_MCIO, msg_group=1 << 62),
}


#: Oversubscription factors swept (None = flat full-bisection fabric).
OVERSUBSCRIPTION = (None, 3, 12)


@dataclass
class TopologyResult:
    """Write stats per (fabric label, variant)."""

    stats: dict[tuple[str, str], CollectiveStats]

    @staticmethod
    def _label(factor) -> str:
        return "flat" if factor is None else f"{factor}:1"

    def rows(self):
        """Report rows: one per variant, bandwidths across fabrics."""
        out = []
        for variant in _VARIANTS:
            row = [variant]
            for factor in OVERSUBSCRIPTION:
                s = self.stats[(self._label(factor), variant)]
                row.append(f"{s.bandwidth_mib:.0f}")
            xrack = self.stats[(self._label(OVERSUBSCRIPTION[-1]), variant)]
            row.append(f"{xrack.extra.get('inter_rack_bytes', 0) / 2**20:.0f}")
            out.append(tuple(row))
        return out

    def render(self) -> str:
        """The comparison table."""
        headers = ["variant"] + [
            f"{self._label(f)} MiB/s" for f in OVERSUBSCRIPTION
        ] + ["cross-rack MiB"]
        return format_table(
            headers,
            self.rows(),
            title=(
                f"Group containment vs fabric oversubscription "
                f"(coll_perf write, {N_RANKS} ranks, racks of {RACK})"
            ),
        )

    def containment_ratio(self, factor) -> float:
        """groups/no-groups bandwidth ratio on the given fabric."""
        label = self._label(factor)
        return (
            self.stats[(label, "mcio (groups)")].bandwidth
            / self.stats[(label, "mcio (no groups)")].bandwidth
        )


def run(seed: int = 0, buffer_mib: int = 16) -> TopologyResult:
    """Run all variants across the oversubscription sweep."""
    workload = CollPerfWorkload(array_shape=(768, 768, 512), n_ranks=N_RANKS)
    patterns = workload.patterns()
    stats: dict[tuple[str, str], CollectiveStats] = {}
    for factor in OVERSUBSCRIPTION:
        spec = ross13_testbed(nodes=N_NODES)
        if factor is not None:
            spec = replace(
                spec,
                rack_size=RACK,
                uplink_bandwidth=RACK * spec.node.nic_bandwidth / factor,
            )
        label = TopologyResult._label(factor)
        for variant, config in _VARIANTS.items():
            platform = Platform.build(spec, N_RANKS, seed=seed)
            platform.cluster.sample_memory_availability(
                mean_bytes=buffer_mib * MIB, sigma_bytes=50 * MIB
            )
            if config is None:
                engine = TwoPhaseCollectiveIO(
                    platform.comm, platform.pfs,
                    TwoPhaseConfig(cb_buffer_size=buffer_mib * MIB),
                )
            else:
                engine = MemoryConsciousCollectiveIO(
                    platform.comm, platform.pfs,
                    replace(config, cb_buffer_size=buffer_mib * MIB),
                )
            s = run_collective(platform, engine, patterns, ops=("write",))[0]
            s.extra["inter_rack_bytes"] = platform.cluster.network.inter_rack_bytes
            stats[(label, variant)] = s
    return TopologyResult(stats=stats)


def main() -> None:
    """CLI entry point."""
    result = run()
    print(result.render())
    ratios = ", ".join(
        f"{TopologyResult._label(f)} {result.containment_ratio(f):.2f}x"
        for f in OVERSUBSCRIPTION
    )
    print(
        f"\ngroups/no-groups bandwidth ratio: {ratios}\n"
        f"containment costs a little placement freedom on a full-bisection\n"
        f"fabric and wins decisively once uplinks are tapered — the\n"
        f"extreme-scale regime the paper targets."
    )


if __name__ == "__main__":
    main()
