"""Figure 7: IOR write/read bandwidth vs aggregation memory, 120 cores.

Paper setup: IOR interleaved read/write, 32 MB I/O data per MPI process,
120 processes (10 nodes), aggregation memory swept 128 MB -> 2 MB.
Paper result: best write improvement at 16 MB (~2.2x the baseline); read
+89.1 % at 8 MB; write improvements 40.3-121.7 %, read 64.6-97.4 %;
averages +81.2 % write, +82.4 % read.

``small`` scale keeps the 120 processes but moves 4 MiB per process
(480 MiB shared file) and sweeps five points; ``paper`` scale moves the
full 32 MB per process.

Run as a script::

    python -m repro.experiments.figure7 [--scale small|paper]
"""

from __future__ import annotations

from repro.cluster import MIB, ross13_testbed
from repro.core import MCIOConfig
from repro.workloads import IORWorkload

from .figures import FigureConfig, FigureResult, figure_cli, run_figure

__all__ = ["small_config", "paper_config", "run", "main"]

_PAPER_REFERENCE = (
    "write +40.3..121.7% (avg +81.2%), read +64.6..97.4% (avg +82.4%) (Fig. 7)"
)


def _mcio(msg_group: int, msg_ind: int) -> MCIOConfig:
    return MCIOConfig(
        msg_group=msg_group,
        msg_ind=msg_ind,
        mem_min=0,
        nah=4,
        min_buffer=1 * MIB,
    )


def small_config(seed: int = 0) -> FigureConfig:
    """120 ranks x 4 MiB interleaved (480 MiB file); buffers 64 -> 4 MiB."""
    return FigureConfig(
        figure_id="Figure 7 (small)",
        description="IOR interleaved 4 MiB/proc, 120 procs, 10 nodes",
        spec=ross13_testbed(nodes=10),
        workload=IORWorkload(n_ranks=120, block_size=1 * MIB, segments=4),
        buffer_sizes=tuple(m * MIB for m in (64, 32, 16, 8, 4)),
        sigma_bytes=50 * MIB,
        mcio=_mcio(msg_group=96 * MIB, msg_ind=16 * MIB),
        granularity="round",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def paper_config(seed: int = 0) -> FigureConfig:
    """The paper's 32 MB per process, buffers 128 -> 2 MB."""
    return FigureConfig(
        figure_id="Figure 7 (paper)",
        description="IOR interleaved 32 MB/proc, 120 procs, 10 nodes",
        spec=ross13_testbed(nodes=10),
        workload=IORWorkload.paper(n_ranks=120),
        buffer_sizes=tuple(m * MIB for m in (128, 64, 32, 16, 8, 4, 2)),
        sigma_bytes=50 * MIB,
        mcio=_mcio(msg_group=768 * MIB, msg_ind=128 * MIB),
        granularity="domain",
        seed=seed,
        paper_reference=_PAPER_REFERENCE,
    )


def run(config: FigureConfig | None = None, seed: int = 0) -> FigureResult:
    """Run the Figure 7 sweep (small scale by default)."""
    return run_figure(config if config is not None else small_config(seed))


def main() -> None:
    """CLI entry point."""
    figure_cli(small_config, paper_config)


if __name__ == "__main__":
    main()
