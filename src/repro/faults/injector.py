"""Fault injection: drive a schedule against a live simulation.

The :class:`FaultInjector` walks a
:class:`~repro.faults.schedule.FaultSchedule` as a simulation process,
applying each event to the cluster / file system at its scheduled time
and reverting windowed faults when their duration elapses:

* ``server_slowdown`` — multiplies the target
  :class:`~repro.pfs.server.IOServer`'s degradation factor (overlapping
  windows compose; each revert divides its own factor back out);
* ``server_outage`` — opens/closes an outage window on the server
  (reference-counted in the server, so overlaps are safe);
* ``memory_shock`` — applies/releases a shock on the node's
  :class:`~repro.cluster.memory.MemoryModel`; shocks stack with any
  :class:`~repro.cluster.background.BackgroundLoad` updating the same
  node's base availability;
* ``node_failure`` — marks the node failed (memory and wire traffic slow
  down; the collective engine's failover path moves aggregators away);
  a window restores the node, ``duration=None`` is permanent.

Everything the injector does is a deterministic function of the schedule
and the simulation clock, so a seeded chaos run replays exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.obs.tracer import PID_PFS, TID_NODE
from repro.pfs.filesystem import ParallelFileSystem
from repro.sim import Environment, Interrupt, Process

from .schedule import FaultEvent, FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Apply a fault schedule to a simulated platform.

    Parameters
    ----------
    env:
        The simulation environment (must be the cluster's).
    cluster:
        Target for node faults.
    pfs:
        Target for server faults (None allowed if the schedule has none).
    schedule:
        The fault plan to execute.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        pfs: Optional[ParallelFileSystem],
        schedule: FaultSchedule,
    ):
        self.env = env
        self.cluster = cluster
        self.pfs = pfs
        self.schedule = schedule
        #: Events applied so far, by kind.
        self.applied: dict[str, int] = {}
        #: Windowed faults currently in force.
        self.active: list[FaultEvent] = []
        self._proc: Optional[Process] = None
        self._reverts: list[Process] = []
        #: Callbacks ``listener(event, phase)`` fired after every applied
        #: (``phase="apply"``) and reverted (``phase="revert"``) fault —
        #: e.g. a plan cache dropping its entries because the platform
        #: state the plans were built against just changed.
        self._listeners: list = []
        for ev in schedule:
            self._validate_target(ev)

    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register ``listener(event, phase)`` for fault apply/revert."""
        self._listeners.append(listener)

    def _notify(self, ev: FaultEvent, phase: str) -> None:
        for listener in self._listeners:
            listener(ev, phase)

    def _trace(self, ev: FaultEvent, phase: str) -> None:
        """Mark the fault on its target's own trace track."""
        tracer = self.env.tracer
        if not tracer.enabled:
            return
        if ev.kind in ("server_slowdown", "server_outage"):
            pid, tid = PID_PFS, ev.target
        else:
            pid, tid = ev.target, TID_NODE
        tracer.instant(
            "fault", f"fault.{phase}", pid, tid,
            kind=ev.kind, target=ev.target,
            magnitude=ev.magnitude, duration=ev.duration,
        )

    # ------------------------------------------------------------------
    def _validate_target(self, ev: FaultEvent) -> None:
        if ev.kind in ("server_slowdown", "server_outage"):
            if self.pfs is None:
                raise ValueError(f"{ev.kind} event but no file system attached")
            if ev.target >= len(self.pfs.servers):
                raise ValueError(
                    f"{ev.kind} targets server {ev.target}, "
                    f"file system has {len(self.pfs.servers)}"
                )
        else:
            if ev.target >= len(self.cluster.nodes):
                raise ValueError(
                    f"{ev.kind} targets node {ev.target}, "
                    f"cluster has {len(self.cluster.nodes)}"
                )

    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Launch the injection process; returns it (joinable)."""
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("fault injector already running")
        self._proc = self.env.process(self._run(), name="fault-injector")
        return self._proc

    def stop(self, restore: bool = True) -> None:
        """Halt injection; with `restore`, revert all active faults."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None
        for proc in self._reverts:
            if proc.is_alive:
                proc.interrupt("stop")
        self._reverts.clear()
        if restore:
            for ev in list(reversed(self.active)):
                self._revert(ev)
        self.active.clear()

    def _run(self):
        env = self.env
        try:
            for ev in self.schedule.events:
                delay = ev.time - env.now
                if delay > 0:
                    yield env.timeout(delay)
                self._apply(ev)
        except Interrupt:
            return

    def _revert_after(self, ev: FaultEvent):
        try:
            yield self.env.timeout(ev.duration)
        except Interrupt:
            return
        if ev in self.active:
            self.active.remove(ev)
            self._revert(ev)

    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        if ev.kind == "server_slowdown":
            server = self.pfs.servers[ev.target]
            server.set_degradation(server.degradation * ev.magnitude)
        elif ev.kind == "server_outage":
            self.pfs.servers[ev.target].begin_outage()
        elif ev.kind == "memory_shock":
            self.cluster.nodes[ev.target].memory.apply_shock(int(ev.magnitude))
        elif ev.kind == "node_failure":
            self.cluster.nodes[ev.target].fail(ev.magnitude)
        self.applied[ev.kind] = self.applied.get(ev.kind, 0) + 1
        self._trace(ev, "apply")
        self._notify(ev, "apply")
        if ev.duration is not None:
            self.active.append(ev)
            self._reverts.append(
                self.env.process(
                    self._revert_after(ev),
                    name=f"fault-revert.{ev.kind}.{ev.target}",
                )
            )

    def _revert(self, ev: FaultEvent) -> None:
        self._trace(ev, "revert")
        self._notify(ev, "revert")
        if ev.kind == "server_slowdown":
            server = self.pfs.servers[ev.target]
            server.set_degradation(max(1.0, server.degradation / ev.magnitude))
        elif ev.kind == "server_outage":
            self.pfs.servers[ev.target].end_outage()
        elif ev.kind == "memory_shock":
            self.cluster.nodes[ev.target].memory.release_shock(int(ev.magnitude))
        elif ev.kind == "node_failure":
            node = self.cluster.nodes[ev.target]
            # overlapping failures on one node: stay failed until the
            # last window closes
            if not any(
                a is not ev and a.kind == "node_failure" and a.target == ev.target
                for a in self.active
            ):
                node.recover()
