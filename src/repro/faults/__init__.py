"""Seeded fault injection and degraded-mode support.

The fault model covers the transient misbehaviour extreme-scale I/O
systems actually exhibit — slow and absent object servers, sudden memory
loss on compute nodes, failed aggregator hosts — as deterministic,
seed-reproducible schedules:

* :class:`~repro.faults.schedule.FaultSchedule` /
  :class:`~repro.faults.schedule.FaultEvent` — the pure-data fault plan
  (explicit or :meth:`~repro.faults.schedule.FaultSchedule.generate`-d
  from a seed);
* :class:`~repro.faults.injector.FaultInjector` — the simulation process
  that applies and reverts the plan against a cluster + file system.

Recovery lives with the components it protects:
:class:`~repro.pfs.filesystem.RetryPolicy` (client retries),
aggregator failover in :mod:`repro.core.engine`, and the planning
fallback chain in :mod:`repro.core.mcio`.
"""

from .injector import FaultInjector
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultSchedule"]
