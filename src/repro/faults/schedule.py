"""Deterministic fault schedules.

A :class:`FaultSchedule` is an immutable, time-ordered list of
:class:`FaultEvent` records — *what* goes wrong, *where*, *when*, and for
*how long*.  Schedules are either written out explicitly (tests, the
resilience example) or generated from a seed with
:meth:`FaultSchedule.generate`, which draws per-kind Poisson arrival
processes from :class:`~repro.sim.rng.RngFactory` substreams; the same
``(seed, parameters)`` always produces the same schedule, so a chaos run
is reproducible from its config alone.

The schedule is pure data: applying it to a simulation is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.sim import RngFactory

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule"]

#: The fault kinds the injector understands.
FAULT_KINDS = (
    "server_slowdown",
    "server_outage",
    "memory_shock",
    "node_failure",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    time:
        Simulated second at which the fault strikes.
    kind:
        One of :data:`FAULT_KINDS`:

        ``"server_slowdown"``
            I/O server `target` serves `magnitude` times slower for
            `duration` seconds (overlapping windows compose
            multiplicatively).
        ``"server_outage"``
            I/O server `target` rejects requests for `duration` seconds
            (windows are reference-counted, so overlaps are safe);
            `magnitude` is ignored.
        ``"memory_shock"``
            Node `target` abruptly loses ``int(magnitude)`` bytes of
            available memory for `duration` seconds — composes with any
            :class:`~repro.cluster.background.BackgroundLoad` driving
            the same node.
        ``"node_failure"``
            Node `target`'s memory and network traffic slow by
            `magnitude`; with ``duration=None`` the host never recovers
            (the aggregator-failure case the engine fails over from).
    target:
        Server id or node id, per `kind`.
    duration:
        Window length in seconds, or None for a permanent fault
        (``"node_failure"`` only).
    magnitude:
        Kind-specific intensity (see above).
    """

    time: float
    kind: str
    target: int
    duration: Optional[float] = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.target < 0:
            raise ValueError("target must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive (or None)")
        if self.duration is None and self.kind != "node_failure":
            raise ValueError(f"{self.kind} requires a duration")
        if self.kind in ("server_slowdown", "node_failure") and self.magnitude < 1.0:
            raise ValueError(f"{self.kind} magnitude must be >= 1.0")
        if self.kind == "memory_shock" and self.magnitude < 1:
            raise ValueError("memory_shock magnitude is bytes, must be >= 1")

    @property
    def end(self) -> Optional[float]:
        """When the fault reverts, or None if permanent."""
        return None if self.duration is None else self.time + self.duration


class FaultSchedule:
    """An immutable, time-ordered fault plan."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {len(self.events)} events>"

    def count(self, kind: str) -> int:
        """Number of scheduled events of `kind`."""
        return sum(1 for e in self.events if e.kind == kind)

    def merged(self, other: "FaultSchedule | Iterable[FaultEvent]") -> "FaultSchedule":
        """A new schedule combining this one's events with `other`'s."""
        extra = other.events if isinstance(other, FaultSchedule) else tuple(other)
        return FaultSchedule(self.events + tuple(extra))

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        n_servers: int,
        n_nodes: int,
        server_slowdown_rate: float = 0.0,
        server_outage_rate: float = 0.0,
        memory_shock_rate: float = 0.0,
        node_failure_rate: float = 0.0,
        slowdown_factor: tuple[float, float] = (2.0, 8.0),
        slowdown_duration: tuple[float, float] = (0.1, 1.0),
        outage_duration: tuple[float, float] = (0.05, 0.5),
        shock_bytes: tuple[int, int] = (1 << 20, 64 << 20),
        shock_duration: tuple[float, float] = (0.1, 1.0),
        failure_slowdown: float = 16.0,
        failure_duration: Optional[float] = None,
        spare_nodes: Sequence[int] = (),
    ) -> "FaultSchedule":
        """Draw a seeded random schedule over ``[0, horizon)``.

        Each kind is an independent Poisson process (``rate`` events per
        simulated second) drawn from its own
        :meth:`~repro.sim.rng.RngFactory.stream` substream, so adding one
        kind never perturbs another kind's draws.  A rate of 0 yields no
        events of that kind; all rates 0 yields an empty schedule.

        Parameters
        ----------
        seed:
            Root seed (schedule substreams derive from it).
        horizon:
            Length of the window faults may strike in, seconds.
        n_servers, n_nodes:
            Target universes for server / node faults.
        *_rate:
            Events per simulated second for each kind.
        slowdown_factor, slowdown_duration, outage_duration, shock_bytes,
        shock_duration:
            Uniform ranges the per-event intensities are drawn from.
        failure_slowdown, failure_duration:
            Intensity and window (None = permanent) for node failures.
        spare_nodes:
            Node ids exempt from node failures and memory shocks (keep at
            least one live failover target in small clusters).
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_servers < 1 or n_nodes < 1:
            raise ValueError("need at least one server and one node")
        rng = RngFactory(seed)
        events: list[FaultEvent] = []
        fault_nodes = [n for n in range(n_nodes) if n not in set(spare_nodes)]

        def _draw(kind, rate, targets, make):
            if rate <= 0 or not targets:
                return
            gen = rng.stream("faults", kind)
            count = int(gen.poisson(rate * horizon))
            for _ in range(count):
                t = float(gen.uniform(0.0, horizon))
                target = int(targets[int(gen.integers(0, len(targets)))])
                events.append(make(gen, t, target))

        _draw(
            "server_slowdown",
            server_slowdown_rate,
            list(range(n_servers)),
            lambda g, t, tgt: FaultEvent(
                time=t,
                kind="server_slowdown",
                target=tgt,
                duration=float(g.uniform(*slowdown_duration)),
                magnitude=float(g.uniform(*slowdown_factor)),
            ),
        )
        _draw(
            "server_outage",
            server_outage_rate,
            list(range(n_servers)),
            lambda g, t, tgt: FaultEvent(
                time=t,
                kind="server_outage",
                target=tgt,
                duration=float(g.uniform(*outage_duration)),
            ),
        )
        _draw(
            "memory_shock",
            memory_shock_rate,
            fault_nodes,
            lambda g, t, tgt: FaultEvent(
                time=t,
                kind="memory_shock",
                target=tgt,
                duration=float(g.uniform(*shock_duration)),
                magnitude=float(int(g.integers(shock_bytes[0], shock_bytes[1] + 1))),
            ),
        )
        _draw(
            "node_failure",
            node_failure_rate,
            fault_nodes,
            lambda g, t, tgt: FaultEvent(
                time=t,
                kind="node_failure",
                target=tgt,
                duration=failure_duration,
                magnitude=failure_slowdown,
            ),
        )
        return cls(events)
