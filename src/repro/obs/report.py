"""Per-phase breakdown of an exported trace.

Usage::

    python -m repro.obs.report <trace.json | trace.jsonl> [--by name|cat]

Reads a Chrome/Perfetto ``trace_event`` JSON document (as written by
:func:`repro.obs.export.write_chrome`) or a flat JSONL dump (as written
by :func:`~repro.obs.export.write_jsonl`) and prints one row per phase:
total simulated time inside the phase's spans, span/instant counts, and
total bytes (summed from ``bytes`` / ``nbytes`` entries in event args).

Span time is the *sum over events on all tracks* — 8 ranks shuffling for
2 s each report 16 rank-seconds, which is the quantity that tells you
where the machine's time went (the same convention as a profiler's
"total" column).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

__all__ = ["load_events", "phase_table", "format_table", "main"]

_US = 1_000_000.0
_BYTE_KEYS = ("bytes", "nbytes", "payload_bytes")


def load_events(path: str) -> list[dict]:
    """Load trace events from Chrome JSON or JSONL into simulated seconds.

    Metadata (``ph="M"``) events are discarded; every returned dict has
    at least ``ph``/``name``/``cat``/``pid``/``tid``/``ts`` with ``ts``
    (and ``dur`` where present) in seconds.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # not one document: a JSONL dump (or a single event)
    if isinstance(doc, dict) and "traceEvents" in doc:
        raw = doc["traceEvents"]
        scale = 1.0 / _US  # chrome traces are in microseconds
    else:
        raw = [json.loads(line) for line in text.splitlines() if line.strip()]
        scale = 1.0  # jsonl dumps are already in seconds

    out = []
    for ev in raw:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ev = dict(ev)
        ev.setdefault("cat", "")
        ev.setdefault("name", "")
        ev["ts"] = float(ev.get("ts", 0.0)) * scale
        if "dur" in ev:
            ev["dur"] = float(ev["dur"]) * scale
        out.append(ev)
    return out


def _event_bytes(ev: dict) -> int:
    args = ev.get("args") or {}
    for key in _BYTE_KEYS:
        v = args.get(key)
        if isinstance(v, (int, float)):
            return int(v)
    return 0


def phase_table(events: Iterable[dict], by: str = "name") -> list[dict]:
    """Aggregate events into per-phase rows.

    `by` selects the grouping key: ``"name"`` (default, one row per span
    name such as ``mcio.shuffle.round``) or ``"cat"`` (coarser, one row
    per category such as ``shuffle``).  B/E pairs are matched per
    ``(pid, tid)`` track with a stack; unbalanced begins contribute a
    count but no time.  Rows come back sorted by total time, descending.
    """
    if by not in ("name", "cat"):
        raise ValueError(f"unknown grouping {by!r}")

    rows: dict[str, dict] = {}

    def row(key: str) -> dict:
        r = rows.get(key)
        if r is None:
            r = {"phase": key, "time": 0.0, "spans": 0, "instants": 0, "bytes": 0}
            rows[key] = r
        return r

    # Match B/E per track; everything else aggregates directly.
    open_stacks: dict[tuple, list] = {}
    for ev in sorted(events, key=lambda e: (e["ts"], e.get("seq", 0))):
        ph = ev.get("ph")
        key = ev.get(by) or ev.get("name") or "?"
        if ph == "X":
            r = row(key)
            r["time"] += float(ev.get("dur", 0.0))
            r["spans"] += 1
            r["bytes"] += _event_bytes(ev)
        elif ph == "i":
            r = row(key)
            r["instants"] += 1
            r["bytes"] += _event_bytes(ev)
        elif ph == "B":
            track = (ev.get("pid"), ev.get("tid"))
            open_stacks.setdefault(track, []).append((key, ev["ts"], _event_bytes(ev)))
            row(key)["spans"] += 1
        elif ph == "E":
            track = (ev.get("pid"), ev.get("tid"))
            stack = open_stacks.get(track)
            if stack:
                bkey, bts, bbytes = stack.pop()
                r = row(bkey)
                r["time"] += max(0.0, ev["ts"] - bts)
                r["bytes"] += bbytes + _event_bytes(ev)

    return sorted(rows.values(), key=lambda r: (-r["time"], r["phase"]))


def _fmt_bytes(n: int) -> str:
    if n <= 0:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def format_table(rows: list[dict]) -> str:
    """Render phase rows as an aligned text table."""
    headers = ("phase", "time (s)", "spans", "instants", "bytes")
    cells = [headers]
    total_time = sum(r["time"] for r in rows)
    for r in rows:
        cells.append(
            (
                r["phase"],
                f"{r['time']:.6f}",
                str(r["spans"]) if r["spans"] else "-",
                str(r["instants"]) if r["instants"] else "-",
                _fmt_bytes(r["bytes"]),
            )
        )
    cells.append(("total", f"{total_time:.6f}", "", "", ""))
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row, pad=" "):
        return "  ".join(
            row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
            for i in range(len(headers))
        ).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = [line(cells[0]), sep]
    out.extend(line(row) for row in cells[1:-1])
    out.append(sep)
    out.append(line(cells[-1]))
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Print a per-phase time/bytes breakdown of a trace.",
    )
    parser.add_argument("trace", help="Chrome trace JSON or JSONL event dump")
    parser.add_argument(
        "--by",
        choices=("name", "cat"),
        default="name",
        help="group rows by span name (default) or by category",
    )
    args = parser.parse_args(argv)

    events = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no events", file=sys.stderr)
        return 1
    print(format_table(phase_table(events, by=args.by)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
