"""Labelled metrics: counters, gauges, histograms, and a registry.

The serving-stack metrics model, sized for a simulator: a
:class:`MetricsRegistry` owns named instruments, each instrument keeps
one value (or histogram) per label combination, and a snapshot of the
whole registry is a plain nested dict.  The collective-I/O
:class:`~repro.core.metrics.StatsCollector` folds its end-of-run summary
from one of these registries instead of keeping a parallel set of ad-hoc
attributes, so live metrics and the final ``CollectiveStats`` can never
disagree.

Instruments are deliberately exact: counters and gauges store whatever
numeric type they are given (the collective accounting is integral and
the golden-trace tests compare bit-for-bit), histograms use fixed,
caller-chosen bucket boundaries.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    """Validate and order one observation's labels into the store key."""
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(labels[name] for name in labelnames)


class _Instrument:
    """Shared naming/labelling machinery of all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        if not name:
            raise ValueError("instrument name must be non-empty")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._store: dict[tuple, Any] = {}

    def values(self) -> dict[tuple, Any]:
        """``{label-values-tuple: value}``; key ``()`` when unlabelled."""
        return dict(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} labels={self.labelnames}>"


class Counter(_Instrument):
    """Monotonically increasing value per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add `amount` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(self.labelnames, labels)
        self._store[key] = self._store.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0 if never incremented)."""
        return self._store.get(_label_key(self.labelnames, labels), 0)

    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._store.values())


class Gauge(_Instrument):
    """Point-in-time value per label combination."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the labelled series with `value`."""
        self._store[_label_key(self.labelnames, labels)] = value

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the larger of the current and the offered value.

        The collective accounting tracks *peak* commitments (largest
        aggregation buffer a rank ever held), which is a max-merge, not
        a set or an add.
        """
        key = _label_key(self.labelnames, labels)
        held = self._store.get(key)
        if held is None or value > held:
            self._store[key] = value

    def add(self, amount: float, **labels: Any) -> None:
        """Adjust the labelled series by `amount` (either sign)."""
        key = _label_key(self.labelnames, labels)
        self._store[key] = self._store.get(key, 0) + amount

    def value(self, default: float = 0, **labels: Any) -> float:
        """Current value of the labelled series, or `default`."""
        return self._store.get(_label_key(self.labelnames, labels), default)


#: Default histogram buckets: powers of four from 256 B to 256 MiB —
#: a decent spread for message/buffer sizes in bytes.
DEFAULT_BUCKETS = tuple(4**k for k in range(4, 15))


class Histogram(_Instrument):
    """Cumulative-bucket histogram per label combination.

    `buckets` are the finite upper bounds; an implicit ``+inf`` bucket
    catches the overflow.  Each labelled series keeps per-bucket counts
    plus exact ``sum`` and ``count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.buckets = bounds

    def _series(self, key: tuple) -> dict:
        s = self._store.get(key)
        if s is None:
            s = {"counts": [0] * (len(self.buckets) + 1), "sum": 0, "count": 0}
            self._store[key] = s
        return s

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        s = self._series(_label_key(self.labelnames, labels))
        s["counts"][bisect_left(self.buckets, value)] += 1
        s["sum"] += value
        s["count"] += 1

    def snapshot(self, **labels: Any) -> dict:
        """``{"counts": [...], "sum": ..., "count": ...}`` for the series."""
        s = self._store.get(_label_key(self.labelnames, labels))
        if s is None:
            return {"counts": [0] * (len(self.buckets) + 1), "sum": 0, "count": 0}
        return {"counts": list(s["counts"]), "sum": s["sum"], "count": s["count"]}


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Asking for an existing name returns the existing instrument —
    provided the kind and label names agree, so two call sites cannot
    silently split one logical metric into incompatible series.
    """

    def __init__(self):
        self._instruments: dict[str, _Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        held = self._instruments.get(name)
        if held is not None:
            if type(held) is not cls or held.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {held.kind} "
                    f"with labels {held.labelnames}"
                )
            return held
        inst = cls(name, help=help, labelnames=labelnames, **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The named instrument, or None."""
        return self._instruments.get(name)

    def instruments(self) -> Iterable[_Instrument]:
        """All registered instruments, in registration order."""
        return list(self._instruments.values())

    def collect(self) -> dict:
        """Snapshot the whole registry as plain JSON-able data.

        ``{name: {"kind": ..., "labelnames": [...], "series": [
        {"labels": {...}, "value"| "counts"/"sum"/"count": ...}, ...]}}``
        """
        out: dict = {}
        for inst in self._instruments.values():
            series = []
            for key in sorted(inst._store, key=repr):
                labels = dict(zip(inst.labelnames, key))
                if inst.kind == "histogram":
                    s = inst._store[key]
                    series.append(
                        {
                            "labels": labels,
                            "counts": list(s["counts"]),
                            "sum": s["sum"],
                            "count": s["count"],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": inst._store[key]})
            out[inst.name] = {
                "kind": inst.kind,
                "labelnames": list(inst.labelnames),
                "series": series,
            }
        return out
