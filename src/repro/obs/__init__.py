"""repro.obs — observability for collective I/O runs.

Structured tracing (:class:`Tracer`, sim-time spans/instants in a
bounded ring buffer), a labelled :class:`MetricsRegistry`
(counters/gauges/histograms that :class:`~repro.core.metrics.StatsCollector`
folds its summary from), and exporters to Chrome/Perfetto
``trace_event`` JSON and flat JSONL.  ``python -m repro.obs.report``
prints a per-phase breakdown of an exported trace.

Quick start::

    from repro.obs import Tracer, write_chrome

    tracer = Tracer().install(env)   # before building the stack
    ...run the collective...
    write_chrome(tracer, "trace.json")   # load in ui.perfetto.dev
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    PID_KERNEL,
    PID_PFS,
    PID_PLANNER,
    TID_NODE,
    NullTracer,
    TraceEvent,
    Tracer,
)
from .export import to_chrome, write_chrome, write_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PID_KERNEL",
    "PID_PFS",
    "PID_PLANNER",
    "TID_NODE",
    "TraceEvent",
    "Tracer",
    "to_chrome",
    "write_chrome",
    "write_jsonl",
]
