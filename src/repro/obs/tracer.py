"""Structured tracing for collective I/O runs.

A :class:`Tracer` records *trace events* — spans with a start time and a
duration, and zero-duration instants — into a bounded in-memory ring
buffer.  Every event is stamped in **simulated time** (the clock of the
:class:`~repro.sim.engine.Environment` the tracer is installed on); the
only wall-clock quantities in a trace are annotations the simulation
kernel and the planner attach to their own host-side work (``wall_s`` /
``wall_us`` entries inside ``args``), which never participate in event
ordering, so an enabled tracer cannot perturb simulated timestamps.

Design constraints, in order:

1. **Zero cost when disabled.**  Every instrumentation site in the hot
   layers guards on :attr:`Tracer.enabled` (a plain attribute read) and
   the default tracer on every environment is the shared
   :data:`NULL_TRACER`, whose flag is permanently false.  No event
   objects, no dict building, no clock reads happen on a disabled path.
2. **No simulation side effects.**  Recording an event touches only the
   tracer's own buffer; it schedules nothing, sleeps nothing, and reads
   the simulated clock without advancing it.  Tracing enabled vs
   disabled is therefore bit-identical in simulated time (asserted
   against the golden traces in ``tests/obs/test_trace_noperturb.py``).
3. **Bounded memory.**  The ring buffer holds at most `capacity` events
   and drops the *oldest* event on overflow (:attr:`Tracer.dropped`
   counts how many were lost), so tracing a week-long simulated run
   costs a fixed number of megabytes.

Track model
-----------
Events land on ``(pid, tid)`` tracks mirroring the Chrome trace-event
model: one *process* per simulated compute node (``pid`` = node id) with
one *thread* per rank (``tid`` = rank), plus three synthetic processes —
:data:`PID_PFS` (one thread per I/O server), :data:`PID_KERNEL` (the
event loop itself), and :data:`PID_PLANNER` (host-side MCIO planning,
which costs no simulated time).  Node-scoped events that belong to no
rank (fault apply/revert, memory shocks) use :data:`TID_NODE`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "PID_PFS",
    "PID_KERNEL",
    "PID_PLANNER",
    "PID_PIPELINE",
    "PID_JOB_BASE",
    "TID_NODE",
]

#: Synthetic "process" ids for tracks that are not compute nodes.
PID_PFS = -1
PID_KERNEL = -2
PID_PLANNER = -3
#: Overlapped-window spans of the pipelined executor.  Each aggregator
#: rank owns *two* threads on this process — ``tid = rank * 2 + slot``
#: with ``slot = window % 2`` — so the two in-flight windows of a
#: double-buffered collective render on separate tracks and their
#: overlap is directly visible.
PID_PIPELINE = -4
#: Per-tenant job tracks in a multi-tenant run: job *j* owns the
#: synthetic process ``pid = PID_JOB_BASE - j`` (descending, so job pids
#: never collide with the fixed synthetic tracks above).  The tenancy
#: host lays each job's lifecycle — arrival instant, admission wait,
#: run span — on its own track, which is what makes cross-job
#: interference directly visible next to the shared node/PFS tracks.
PID_JOB_BASE = -100

#: Thread id for node-scoped events (faults, shocks) on a node's track.
TID_NODE = -1


class TraceEvent:
    """One recorded occurrence: a completed span (``ph="X"``), an
    instant (``ph="i"``), or a begin/end edge (``ph="B"``/``"E"``).

    `ts` and `dur` are simulated seconds; the exporter converts to the
    microseconds Chrome/Perfetto expect.  `seq` is a tracer-local
    monotone sequence number used to stabilise sorts among events with
    equal timestamps.
    """

    __slots__ = ("ph", "cat", "name", "pid", "tid", "ts", "dur", "args", "seq")

    def __init__(self, ph, cat, name, pid, tid, ts, dur, args, seq):
        self.ph = ph
        self.cat = cat
        self.name = name
        self.pid = pid
        self.tid = tid
        self.ts = ts
        self.dur = dur
        self.args = args
        self.seq = seq

    def to_dict(self) -> dict:
        """Plain-dict form (simulated seconds, not yet Chrome units)."""
        d = {
            "ph": self.ph,
            "cat": self.cat,
            "name": self.name,
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.ts,
            "seq": self.seq,
        }
        if self.ph == "X":
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceEvent {self.ph} {self.cat}:{self.name} "
            f"pid={self.pid} tid={self.tid} ts={self.ts}>"
        )


class Tracer:
    """Span/instant recorder with a drop-oldest ring buffer.

    Parameters
    ----------
    capacity:
        Maximum events retained; the oldest event is overwritten when a
        new one arrives with the buffer full.
    enabled:
        Start enabled (the common case for an explicitly constructed
        tracer; the shared :data:`NULL_TRACER` is the disabled one).

    A tracer must be *installed* on an environment before events carry
    meaningful timestamps::

        tracer = Tracer()
        env = Environment()
        tracer.install(env)

    One tracer may be installed on several environments in sequence
    (e.g. a sweep building a fresh platform per point); pass ``offset``
    to :meth:`install` to concatenate their timelines.
    """

    #: Class-level default so instrumentation can guard before install.
    enabled: bool = True

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        #: Events lost to ring overflow.
        self.dropped = 0
        self._ring: list[Optional[TraceEvent]] = [None] * self.capacity
        self._head = 0  # next write position
        self._count = 0
        self._seq = 0
        self._offset = 0.0
        self._clock: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------
    # installation / clock
    # ------------------------------------------------------------------
    def install(self, env: Any, offset: float = 0.0) -> "Tracer":
        """Attach to `env`: become its tracer and adopt its sim clock.

        `offset` is added to every timestamp recorded while attached —
        use it to lay several environments' runs end to end on one
        timeline (``offset = previous tracer.max_ts() + gap``).
        Returns self for chaining.
        """
        self._offset = float(offset)
        self._clock = lambda: env.now
        env.tracer = self
        return self

    def now(self) -> float:
        """Current trace timestamp: simulated now plus the install offset."""
        return self._clock() + self._offset

    def max_ts(self) -> float:
        """Largest end timestamp recorded so far (0.0 if empty)."""
        out = 0.0
        for ev in self.events():
            end = ev.ts + (ev.dur or 0.0)
            if end > out:
                out = end
        return out

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _push(self, ev: TraceEvent) -> None:
        ring = self._ring
        if self._count == self.capacity:
            # drop-oldest: overwrite the tail (head == tail when full)
            self.dropped += 1
        else:
            self._count += 1
        ring[self._head] = ev
        self._head = (self._head + 1) % self.capacity

    def _record(self, ph, cat, name, pid, tid, ts, dur, args) -> None:
        self._seq += 1
        self._push(TraceEvent(ph, cat, name, pid, tid, ts, dur, args, self._seq))

    def begin(self, cat: str, name: str, pid: int, tid: int, **args: Any) -> None:
        """Open a nested span (``ph="B"``) on track ``(pid, tid)``.

        Begin/end pairs must be strictly nested per track — use them
        only where the instrumented control flow is sequential on that
        track (a rank's main generator, the planner).  Concurrent
        sub-processes sharing a track must use :meth:`complete` instead.
        """
        if not self.enabled:
            return
        self._record("B", cat, name, pid, tid, self.now(), None, args or None)

    def end(self, pid: int, tid: int, **args: Any) -> None:
        """Close the innermost open span on track ``(pid, tid)``."""
        if not self.enabled:
            return
        self._record("E", "", "", pid, tid, self.now(), None, args or None)

    def complete(
        self,
        cat: str,
        name: str,
        pid: int,
        tid: int,
        ts: float,
        dur: float,
        **args: Any,
    ) -> None:
        """Record a finished span (``ph="X"``) with explicit start/duration.

        The usual pattern is ``t0 = tracer.now()`` before the work and
        ``tracer.complete(..., t0, tracer.now() - t0)`` after; complete
        events may overlap freely on a track, so they are the right
        shape for concurrent sub-processes.
        """
        if not self.enabled:
            return
        self._record("X", cat, name, pid, tid, ts, dur, args or None)

    def instant(self, cat: str, name: str, pid: int, tid: int, **args: Any) -> None:
        """Record a zero-duration marker (``ph="i"``) at the current time."""
        if not self.enabled:
            return
        self._record("i", cat, name, pid, tid, self.now(), None, args or None)

    def absorb(self, events: Sequence[dict], offset: float = 0.0) -> None:
        """Append events recorded by *another* tracer, shifted by `offset`.

        `events` are :meth:`TraceEvent.to_dict` dicts — the picklable
        form a sharded worker process ships its timeline home in (a live
        tracer holds an environment clock closure and cannot cross a
        process boundary).  Each event is re-stamped with this tracer's
        own sequence numbers; ``offset`` (typically :meth:`max_ts`) lays
        the foreign timeline after everything recorded so far, the same
        concatenation contract as :meth:`install`'s offset.
        """
        if not self.enabled:
            return
        for d in events:
            self._seq += 1
            self._push(
                TraceEvent(
                    d["ph"],
                    d["cat"],
                    d["name"],
                    d["pid"],
                    d["tid"],
                    d["ts"] + offset,
                    d.get("dur"),
                    d.get("args"),
                    self._seq,
                )
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def events(self) -> Iterator[TraceEvent]:
        """Iterate retained events, oldest first."""
        if self._count == 0:
            return
        start = (self._head - self._count) % self.capacity
        for i in range(self._count):
            ev = self._ring[(start + i) % self.capacity]
            if ev is not None:
                yield ev

    def clear(self) -> None:
        """Drop all retained events (the drop counter is kept)."""
        self._ring = [None] * self.capacity
        self._head = 0
        self._count = 0


class NullTracer(Tracer):
    """The permanently disabled tracer every environment starts with.

    All recording methods are inherited no-ops (they check
    :attr:`enabled` first); :meth:`install` refuses, so accidentally
    installing the shared singleton on an environment fails loudly
    instead of silently sharing state across simulations.
    """

    def __init__(self):
        super().__init__(capacity=1, enabled=False)

    def install(self, env: Any, offset: float = 0.0) -> "Tracer":
        raise RuntimeError(
            "NULL_TRACER is shared; construct a Tracer() to enable tracing"
        )


#: Shared disabled tracer; `Environment.tracer` defaults to this.
NULL_TRACER = NullTracer()
