"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat JSONL.

The Chrome exporter emits the `trace_event` format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly: a
``{"traceEvents": [...]}`` object whose events carry ``ph`` (phase),
``ts``/``dur`` in **microseconds**, and ``pid``/``tid`` track ids.  Each
simulated compute node becomes one "process" with one "thread" per rank;
the PFS, the simulation kernel, and the (host-side) planner become
synthetic processes.  Metadata events (``ph="M"``) name every track so
the viewer shows ``node0 / rank3`` instead of bare integers.

The JSONL exporter dumps one event per line in simulated seconds with no
renaming — the grep/jq-friendly form, and what the report CLI reads
fastest.
"""

from __future__ import annotations

import json
from typing import Iterable, Union

from .tracer import (
    PID_JOB_BASE,
    PID_KERNEL,
    PID_PFS,
    PID_PIPELINE,
    PID_PLANNER,
    TID_NODE,
    TraceEvent,
    Tracer,
)

__all__ = [
    "to_chrome",
    "write_chrome",
    "write_jsonl",
    "process_name",
    "thread_name",
]

#: Simulated seconds -> trace microseconds.
US = 1_000_000.0

_PROCESS_NAMES = {
    PID_PFS: "pfs",
    PID_KERNEL: "sim-kernel",
    PID_PLANNER: "planner",
    PID_PIPELINE: "pipeline",
}

#: Viewer ordering: planner and kernel first, then nodes, PFS last.
_PROCESS_SORT = {
    PID_PLANNER: -3, PID_KERNEL: -2, PID_PIPELINE: -1, PID_PFS: 10_000,
}


def process_name(pid: int) -> str:
    """Human name for a trace ``pid`` track."""
    if pid <= PID_JOB_BASE:
        return f"job{PID_JOB_BASE - pid}"
    return _PROCESS_NAMES.get(pid, f"node{pid}")


def thread_name(pid: int, tid: int) -> str:
    """Human name for a trace ``(pid, tid)`` track."""
    if pid <= PID_JOB_BASE:
        return "lifecycle"
    if pid == PID_PFS:
        return f"ost{tid}"
    if pid == PID_PIPELINE:
        # two tracks per aggregator rank: one per double-buffer slot, so
        # the two in-flight windows of a pipelined collective overlap
        # visibly instead of stacking on one thread
        return f"rank{tid // 2}.w{tid % 2}"
    if pid in (PID_KERNEL, PID_PLANNER):
        return "main"
    if tid == TID_NODE:
        return "node"
    return f"rank{tid}"


def _events_of(source: Union[Tracer, Iterable[TraceEvent]]):
    if isinstance(source, Tracer):
        return list(source.events())
    return list(source)


def _json_safe(value):
    """Coerce an args value into a type that survives a JSON round trip.

    Instrumentation sites pass whatever they have (message tags are
    tuples, for instance); the exporter owns making that loadable.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def to_chrome(source: Union[Tracer, Iterable[TraceEvent]]) -> dict:
    """Build a Chrome/Perfetto ``trace_event`` document.

    Events are sorted by ``(ts, seq)`` so every track's timestamps are
    monotonic and B/E pairs stay correctly nested; times are converted
    from simulated seconds to microseconds.
    """
    events = sorted(_events_of(source), key=lambda ev: (ev.ts, ev.seq))

    tracks: dict[int, set[int]] = {}
    for ev in events:
        tracks.setdefault(ev.pid, set()).add(ev.tid)

    out: list[dict] = []
    # Metadata first: name each process/thread track for the viewer.
    for pid in sorted(tracks):
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name(pid)},
            }
        )
        # job tracks sort to the top of the viewer, job0 first (pids
        # descend from PID_JOB_BASE, so the index must re-ascend)
        sort_index = (
            -10 + (PID_JOB_BASE - pid) * 1e-3
            if pid <= PID_JOB_BASE
            else _PROCESS_SORT.get(pid, pid)
        )
        out.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
        for tid in sorted(tracks[pid]):
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_name(pid, tid)},
                }
            )

    for ev in events:
        d = {
            "ph": ev.ph,
            "cat": ev.cat or "trace",
            "name": ev.name or "",
            "pid": ev.pid,
            "tid": ev.tid,
            "ts": ev.ts * US,
        }
        if ev.ph == "X":
            d["dur"] = (ev.dur or 0.0) * US
        if ev.ph == "i":
            d["s"] = "t"  # instant scope: thread
        if ev.args:
            d["args"] = {k: _json_safe(v) for k, v in ev.args.items()}
        out.append(d)

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome(source: Union[Tracer, Iterable[TraceEvent]], path) -> dict:
    """Write the Chrome trace JSON to `path`; returns the document."""
    doc = to_chrome(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return doc


def write_jsonl(source: Union[Tracer, Iterable[TraceEvent]], path) -> int:
    """Write one event per line (simulated seconds); returns event count.

    Lines are in ``(ts, seq)`` order and use :meth:`TraceEvent.to_dict`
    verbatim, so the dump round-trips the tracer's native units.
    """
    events = sorted(_events_of(source), key=lambda ev: (ev.ts, ev.seq))
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), separators=(",", ":")))
            fh.write("\n")
    return len(events)
