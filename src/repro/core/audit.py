"""Byte-conservation auditing across the degradation chain.

A collective that degrades mid-flight — borrow abort, aggregator
failover, fallback to two-phase or independent I/O — must still move
every requested byte exactly as a healthy run would.  The
:class:`ConservationAuditor` is an opt-in runtime checker of that
contract: engines report execution attempts and the file extents they
actually touch, and :meth:`ConservationAuditor.verify` asserts, per
finalized operation, that

1. **coverage** — the union of file extents read/written covers the
   union of the extents the ranks requested (no lost bytes, on any
   tier);
2. **shuffle conservation** — the *final* (successful) attempt shuffled
   exactly the requested byte total: every rank's data crossed to its
   aggregator once, no more, no less (skipped for the independent tier,
   which shuffles nothing);
3. **lease hygiene** — the cluster's lease ledger is balanced
   (``granted == released + revoked + expired``) with zero outstanding
   leases, so no borrowed buffer outlives its collective;
4. **allocation hygiene** — no node retains committed memory, i.e.
   every staging/aggregation/lease allocation was freed.

Attempts are delimited without any engine-side attempt id: every rank
calls :meth:`~repro.core.metrics.StatsCollector.record_attempt` once
per execution attempt, so call ``k * n_ranks`` is the first arrival of
attempt ``k`` — and because aborts happen at barriers, it
happens-before any shuffle of that attempt.  Snapshotting the shuffle
counters there yields per-attempt deltas.

Wiring: ``auditor.attach(engine)`` (works for both
:class:`~repro.core.mcio.MemoryConsciousCollectiveIO` and
:class:`~repro.core.two_phase.TwoPhaseCollectiveIO`); each operation's
collector then reports through the auditor and hands it the final
stats, accumulating one :class:`AuditRecord` per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.metrics import CollectiveStats
from repro.core.request import Extent, coalesce_extents

__all__ = ["AuditRecord", "ConservationAuditor", "ConservationError"]


class ConservationError(AssertionError):
    """The byte-conservation invariant does not hold.

    Carries every violation found (not just the first) so a failing
    chaos cell reports the full damage in one go.
    """

    def __init__(self, violations: Sequence[str]):
        self.violations = tuple(violations)
        super().__init__(
            "byte conservation violated:\n  - " + "\n  - ".join(self.violations)
        )


@dataclass
class AuditRecord:
    """What one finalized operation reported."""

    stats: CollectiveStats
    #: Execution attempts observed (1 = no mid-collective degradation).
    attempts: int
    #: Coalesced file extents actually read/written (all attempts).
    extents: list
    #: Shuffle bytes moved by the final attempt alone.
    final_attempt_shuffle: int


class _Track:
    """Per-collector accumulation state (pre-finalize)."""

    __slots__ = ("calls", "snapshots", "extents")

    def __init__(self):
        self.calls = 0
        self.snapshots: list[int] = []
        self.extents: list[Extent] = []


def _uncovered(requested: list, recorded: list) -> list:
    """Requested extents (or parts) absent from the recorded union."""
    missing = []
    ri = 0
    for req in requested:
        pos = req.offset
        while pos < req.end:
            while ri < len(recorded) and recorded[ri].end <= pos:
                ri += 1
            if ri >= len(recorded) or recorded[ri].offset >= req.end:
                missing.append(Extent(pos, req.end - pos))
                break
            cov = recorded[ri]
            if cov.offset > pos:
                missing.append(Extent(pos, cov.offset - pos))
            pos = cov.end
    return missing


class ConservationAuditor:
    """Opt-in runtime checker of the no-lost-bytes contract.

    Parameters
    ----------
    ledger:
        The cluster's :class:`~repro.cluster.memory.LeaseLedger`;
        defaults to the attached engine's.
    cluster:
        The cluster whose node memories the hygiene check inspects;
        defaults to the attached engine's.
    """

    def __init__(self, ledger=None, cluster=None):
        self.ledger = ledger
        self.cluster = cluster
        #: One record per finalized operation, in completion order.
        self.records: list[AuditRecord] = []
        self._tracks: dict = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, engine) -> "ConservationAuditor":
        """Audit every operation `engine` runs from now on."""
        engine.auditor = self
        if self.ledger is None:
            self.ledger = engine.comm.cluster.memory_ledger
        if self.cluster is None:
            self.cluster = engine.comm.cluster
        return self

    # ------------------------------------------------------------------
    # collector-facing hooks
    # ------------------------------------------------------------------
    def on_attempt(self, collector) -> None:
        """One rank entered an execution attempt.

        The first arrival of each attempt (call count a multiple of the
        rank count) snapshots the shuffle counters; the abort barrier
        guarantees no byte of the new attempt moved yet.
        """
        track = self._tracks.setdefault(id(collector), _Track())
        if track.calls % collector.n_ranks == 0:
            track.snapshots.append(
                collector.shuffle_intra_node_bytes
                + collector.shuffle_inter_node_bytes
            )
        track.calls += 1

    def on_io_extent(self, collector, offset: int, length: int) -> None:
        """One file extent was read or written."""
        track = self._tracks.setdefault(id(collector), _Track())
        track.extents.append(Extent(offset, length))

    def on_finalize(self, collector, final: CollectiveStats) -> None:
        """The operation completed; seal its record."""
        track = self._tracks.pop(id(collector), None)
        if track is None:
            track = _Track()
        total_shuffle = (
            collector.shuffle_intra_node_bytes
            + collector.shuffle_inter_node_bytes
        )
        base = track.snapshots[-1] if track.snapshots else 0
        self.records.append(
            AuditRecord(
                stats=final,
                attempts=len(track.snapshots),
                extents=coalesce_extents(track.extents),
                final_attempt_shuffle=total_shuffle - base,
            )
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        patterns: Sequence,
        record: Optional[AuditRecord] = None,
        check_memory: bool = True,
    ) -> AuditRecord:
        """Assert conservation for one operation (default: the latest).

        `patterns` are the per-rank access patterns the operation was
        called with.  Raises :class:`ConservationError` listing every
        violated invariant; returns the checked record on success.
        """
        violations: list[str] = []
        if record is None:
            if not self.records:
                raise ConservationError(["no finalized operation to audit"])
            record = self.records[-1]

        requested = coalesce_extents(
            Extent(off, length)
            for p in patterns
            for off, length, _ in p.iter_mapped_extents()
        )
        missing = _uncovered(requested, record.extents)
        if missing:
            lost = sum(e.length for e in missing)
            violations.append(
                f"coverage: {lost} requested bytes never touched storage "
                f"(first gap {missing[0].offset}+{missing[0].length})"
            )

        expected = sum(p.nbytes for p in patterns)
        if record.stats.degraded_tier == "independent":
            expected = 0
        if record.final_attempt_shuffle != expected:
            violations.append(
                f"shuffle: final attempt moved {record.final_attempt_shuffle} "
                f"bytes, requested {expected} "
                f"(tier={record.stats.tier}, attempts={record.attempts})"
            )

        violations.extend(self._ledger_violations())
        if check_memory and self.cluster is not None:
            for node in self.cluster.nodes:
                if node.memory.committed != 0:
                    violations.append(
                        f"memory: node {node.node_id} retains "
                        f"{node.memory.committed} committed bytes"
                    )
        if violations:
            raise ConservationError(violations)
        return record

    def _ledger_violations(self) -> list[str]:
        if self.ledger is None:
            return []
        out = []
        ledger = self.ledger
        balance = ledger.released + ledger.revoked + ledger.expired
        if ledger.granted != balance:
            out.append(
                f"ledger: granted {ledger.granted} != released+revoked+expired "
                f"{balance}"
            )
        if ledger.outstanding:
            out.append(
                f"ledger: {ledger.outstanding} leases still outstanding "
                f"({ledger.outstanding_bytes} bytes)"
            )
        return out
