"""Node-level vectorized collective execution (DESIGN.md §11).

The per-rank engine simulates every rank as its own coroutine; at
10^5–10^6 ranks the event count alone makes a sweep intractable.  This
driver runs one whole collective from a *single* simulation process,
carrying per-rank accounting in numpy arrays and charging node-to-node
traffic through the same :class:`~repro.cluster.network.Network`
batched-transfer arithmetic the per-rank path uses for aggregated
shuffles.

Equivalence contract
--------------------
For any fault-free, lease-free, metadata-only collective the vectorized
driver produces a :class:`~repro.core.metrics.CollectiveStats` whose
deterministic accounting fields (bytes, rounds, aggregators, shuffle
locality split, tiers, groups — everything except ``elapsed``, the
plan-cache counters and the execution-mode fields themselves) are
*identical* to the per-rank reference, and feeds the byte-conservation
auditor the same attempt/extent stream.  ``tests/sim`` pins this with a
differential harness; simulated time is pinned separately by the
vectorized golden traces.

When the planner refuses
------------------------
Per-rank coroutines are retained wherever genuinely per-rank behaviour
could diverge.  :func:`run_vectorized_collective` refuses and falls
back to the reference path (counting the refusal in
``CollectiveStats.vectorized_refusals``) when:

* a data plane is attached (payload bytes must really move),
* any watched fault injector carries a non-empty schedule,
* a node is currently failed (degraded-mode timing is per-rank),
* remote-memory leases are outstanding, or the fresh plan itself
  contains lender-backed domains (the borrow protocol is control flow
  between rank coroutines),
* the plan degraded all the way to the independent tier (uncoordinated
  per-rank I/O has no node-level form).

``config.failover = True`` alone does **not** refuse: with no failed
host the per-rank failover check adds no events, so the fault-free
schedule is unchanged — exactly the regime vectorization targets.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.engine import _round_extent, _union_extents
from repro.core.filedomain import rounds_for
from repro.core.metrics import CollectiveStats
from repro.core.pattern_array import PatternArray
from repro.core.request import AccessPattern

__all__ = ["run_vectorized_collective", "vectorization_refusal"]


def vectorization_refusal(engine, payloads=None) -> Optional[str]:
    """Why this collective cannot vectorize right now, or None.

    Pre-plan checks only; the post-plan checks (independent tier,
    lender-backed domains) live in :func:`run_vectorized_collective`
    because they need the plan.
    """
    if engine.pfs.datastore is not None or payloads is not None:
        return "data-plane"
    if any(len(inj.schedule) > 0 for inj in engine._fault_injectors):
        return "fault-schedule"
    if any(node.failed for node in engine.comm.cluster.nodes):
        return "failed-nodes"
    if engine.comm.cluster.memory_ledger.outstanding > 0:
        return "active-leases"
    return None


def _per_rank_fallback(
    engine, patterns, op: str, reason: str, payloads=None
) -> CollectiveStats:
    """Run the reference per-rank path, tagging the refusal on its stats."""
    engine._pending_vec_refusal = reason

    def main(ctx):
        fn = engine.write if op == "write" else engine.read
        payload = payloads[ctx.rank] if payloads is not None else None
        return (yield from fn(ctx, patterns[ctx.rank], payload))

    engine.comm.run_spmd(main)
    return engine.history[-1]


def _meta_allgather_time(comm, patterns) -> float:
    """Time of the pattern-metadata allgather, as the per-rank path charges it."""
    size = comm.size
    hops = max(1, (size - 1).bit_length()) if size > 1 else 0
    if isinstance(patterns, PatternArray):
        max_seg = patterns.max_segment_count
    else:
        max_seg = max(p.segment_count for p in patterns)
    nbytes_max = 32 * (1 + max_seg)
    latency = comm.cluster.spec.node.nic_latency
    return hops * (latency + nbytes_max / comm.metadata_bandwidth)


def _collective_time(comm, nbytes_max: int) -> float:
    """Generic collective metadata charge (allgathers, barriers)."""
    size = comm.size
    hops = max(1, (size - 1).bit_length()) if size > 1 else 0
    latency = comm.cluster.spec.node.nic_latency
    return hops * (latency + nbytes_max / comm.metadata_bandwidth)


def _window_node_traffic(patterns, plan, placement_arr, did, window):
    """``[(node_id, [per-rank bytes])]`` of the window's senders, by node.

    Node ids ascend; sizes inside a node follow rank order — the same
    per-message sequence the per-rank path would emit, grouped by the
    sender's host.
    """
    lo, hi = window.offset, window.end
    if isinstance(patterns, PatternArray):
        idx = patterns.senders_in(lo, hi)
        if idx.size == 0:
            return []
        sizes = patterns.bytes_in_many(idx, lo, hi)
        nodes = placement_arr[idx]
        out = []
        for node_id in np.unique(nodes).tolist():
            out.append((node_id, sizes[nodes == node_id].tolist()))
        return out
    senders = plan.window_senders(did, lo, hi, patterns)
    if not senders:
        return []
    by_node: dict[int, list[int]] = {}
    for r in senders:
        by_node.setdefault(int(placement_arr[r]), []).append(
            patterns[r].bytes_in(lo, hi)
        )
    return sorted(by_node.items())


def _window_union(patterns, plan, did, window):
    """Union of the window senders' requested extents (I/O piece list)."""
    if isinstance(patterns, PatternArray):
        idx = patterns.senders_in(window.offset, window.end)
        return patterns.union_extents(idx, window.offset, window.end)
    senders = plan.window_senders(did, window.offset, window.end, patterns)
    return _union_extents(patterns, senders, window)


def run_vectorized_collective(
    engine,
    patterns: Sequence[AccessPattern],
    op: str,
    payloads=None,
) -> CollectiveStats:
    """Run one collective through the node-level vectorized driver.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.mcio.MemoryConsciousCollectiveIO` (or any
        engine exposing its planning surface).
    patterns:
        All ranks' file views — a :class:`~repro.core.pattern_array.
        PatternArray` for array-speed planning, or any sequence of
        :class:`~repro.core.request.AccessPattern`.
    op:
        ``"write"`` or ``"read"``.
    payloads:
        Optional per-rank data buffers.  Real payload bytes force the
        per-rank path (refusal ``"data-plane"``); the argument exists so
        callers need not branch on the refusal themselves.

    Returns
    -------
    CollectiveStats
        The finalized stats, also appended to ``engine.history``.  When
        vectorization is refused the stats come from the per-rank
        fallback and carry the refusal count/reason.
    """
    if op not in ("write", "read"):
        raise ValueError(f"op must be 'write' or 'read', got {op!r}")
    comm, pfs = engine.comm, engine.pfs
    if len(patterns) != comm.size:
        raise ValueError("patterns length must equal communicator size")

    reason = vectorization_refusal(engine, payloads)
    if reason is not None:
        return _per_rank_fallback(engine, patterns, op, reason, payloads)

    # plan exactly as the per-rank path's first-arriving rank would
    engine.plan_cache.tracer = comm.env.tracer
    memory_available = {
        node_id: comm.cluster.nodes[node_id].memory.free_available
        for node_id in set(comm.placement)
    }
    (plan, tier, reason_txt), cached = engine._plan_or_reuse(
        patterns, memory_available, frozenset()
    )
    if plan is None:
        return _per_rank_fallback(engine, patterns, op, "independent-tier", payloads)
    if any(d.lender_node is not None for d in plan.domains):
        return _per_rank_fallback(engine, patterns, op, "lender-domains", payloads)

    seq = engine._advance_seq()
    stats = engine._make_collector(op, plan, tier, reason_txt, cached)
    stats.record_execution_mode("vectorized")

    env = comm.env
    network = comm.cluster.network
    nodes = comm.cluster.nodes
    n_ranks = comm.size
    placement_arr = np.asarray(comm.placement, dtype=np.int64)
    meta_t = _meta_allgather_time(comm, patterns)
    mem_t = _collective_time(comm, 16)
    barrier_t = _collective_time(comm, 0)
    tracer = env.tracer

    def _write_window(did, window, agg_node, paged, paged_wire):
        traffic = _window_node_traffic(patterns, plan, placement_arr, did, window)
        received = 0
        for node_id, sizes in traffic:
            nbytes = sum(sizes)
            stats.record_shuffle_bulk(nbytes, same_node=node_id == agg_node.node_id)
            yield from network.batched_transfer(
                nodes[node_id], agg_node, sizes, paged_dst=paged_wire
            )
            received += nbytes
        if received == 0:
            return
        yield from agg_node.memcopy(received, paged=paged)
        for piece in _window_union(patterns, plan, did, window):
            yield from pfs.write_extent(agg_node, piece, None)
            stats.record_bytes(piece.length)
            stats.record_io_extent(piece.offset, piece.length)

    def _read_window(did, window, agg_node, paged, paged_wire):
        traffic = _window_node_traffic(patterns, plan, placement_arr, did, window)
        if not traffic:
            return
        total_read = 0
        for piece in _window_union(patterns, plan, did, window):
            yield from pfs.read_extent(agg_node, piece)
            total_read += piece.length
            stats.record_bytes(piece.length)
            stats.record_io_extent(piece.offset, piece.length)
        if total_read == 0:
            return
        yield from agg_node.memcopy(total_read, paged=paged)
        for node_id, sizes in traffic:
            stats.record_shuffle_bulk(
                sum(sizes), same_node=node_id == agg_node.node_id
            )
            yield from network.batched_transfer(
                agg_node, nodes[node_id], sizes, paged_dst=paged
            )

    def _driver():
        # the two planning allgathers (pattern metadata, memory state)
        yield env.sleep(meta_t)
        yield env.sleep(mem_t)
        stats.mark_start(env.now)
        stats.record_attempts(n_ranks)
        if tracer.enabled:
            tracer.begin(
                "collective", f"collective.{op}", 0, 0,
                strategy=stats.strategy, seq=seq, granularity="vectorized",
            )
        allocs = []
        paged_flags: dict[int, bool] = {}
        paged_wire: dict[int, bool] = {}
        try:
            # aggregation buffers commit in (rank, domain) order — the
            # same global sequence the per-rank SPMD launch produces
            order = sorted(
                range(len(plan.domains)),
                key=lambda d: (plan.domains[d].aggregator_rank, d),
            )
            for did in order:
                domain = plan.domains[did]
                agg_node = nodes[comm.placement[domain.aggregator_rank]]
                alloc = agg_node.memory.alloc(
                    domain.buffer_bytes, label=f"cb.{seq}.{did}"
                )
                allocs.append((agg_node, alloc))
                paged = alloc.paged or domain.paged
                paged_flags[did] = paged
                overcommit = max(
                    0, agg_node.memory.committed - agg_node.memory.available
                )
                stats.record_aggregator(
                    domain.aggregator_rank, domain.buffer_bytes, paged, overcommit
                )
                stats.record_rounds(
                    rounds_for(domain.extent.length, domain.buffer_bytes)
                )
            for did, domain in enumerate(plan.domains):
                agg_node = nodes[comm.placement[domain.aggregator_rank]]
                paged_wire[did] = domain.paged or agg_node.memory.overcommitted

            run_window = _write_window if op == "write" else _read_window
            for t in range(plan.ntimes):
                procs = []
                for did, domain in enumerate(plan.domains):
                    window = _round_extent(domain, t)
                    if window is None:
                        continue
                    agg_node = nodes[comm.placement[domain.aggregator_rank]]
                    procs.append(
                        env.process(
                            run_window(
                                did, window, agg_node,
                                paged_flags[did], paged_wire[did],
                            ),
                            name=f"vec.d{did}.r{t}",
                        )
                    )
                if procs:
                    yield env.all_of(procs)
                # the per-round lockstep barrier
                yield env.sleep(barrier_t)
        finally:
            for agg_node, alloc in allocs:
                agg_node.memory.free(alloc)
            if tracer.enabled:
                tracer.end(0, 0)
        # the collective's closing barrier
        yield env.sleep(barrier_t)
        stats.mark_end(env.now)

    driver = env.process(_driver(), name="vectorized.driver")
    env.run(until=driver)
    stats.extra["finishers"] = n_ranks
    final = stats.finalize()
    engine.history.append(final)
    return final
