"""Extent algebra for noncontiguous I/O requests.

Collective I/O reasons about byte ranges in a shared file.  Scientific
access patterns (block-distributed arrays, interleaved IOR segments) are
huge but *regular*, so this module represents them as strided runs instead
of flat offset/length lists:

:class:`Extent`
    A single contiguous ``[offset, offset+length)`` byte range.

:class:`StridedSegment`
    ``count`` blocks of ``block`` bytes, ``stride`` apart — the ADIO
    "flattened datatype" building block.  Clipping and byte-counting are
    O(1) arithmetic, never per-block loops.

:class:`AccessPattern`
    An ordered sequence of segments forming one rank's file view, with
    cumulative-size prefix sums so any file position maps to its position
    in the rank's memory buffer in O(log n).

All coordinates are byte offsets; all intervals are half-open.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

__all__ = ["Extent", "StridedSegment", "AccessPattern", "coalesce_extents"]


@dataclass(frozen=True, order=True)
class Extent:
    """A contiguous byte range ``[offset, offset + length)``."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length < 0:
            raise ValueError(f"negative length {self.length}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.offset + self.length

    @property
    def empty(self) -> bool:
        """True for zero-length extents."""
        return self.length == 0

    def intersect(self, other: "Extent") -> Optional["Extent"]:
        """Overlap with `other`, or None if disjoint/empty."""
        lo = max(self.offset, other.offset)
        hi = min(self.end, other.end)
        if hi <= lo:
            return None
        return Extent(lo, hi - lo)

    def clip(self, lo: int, hi: int) -> Optional["Extent"]:
        """Portion inside ``[lo, hi)``, or None."""
        start = max(self.offset, lo)
        end = min(self.end, hi)
        if end <= start:
            return None
        return Extent(start, end - start)

    def contains(self, offset: int) -> bool:
        """True if `offset` lies inside the extent."""
        return self.offset <= offset < self.end


def coalesce_extents(extents: Iterable[Extent]) -> list[Extent]:
    """Merge touching/overlapping extents; returns a sorted, disjoint list."""
    items = sorted((e for e in extents if e.length > 0), key=lambda e: e.offset)
    merged: list[Extent] = []
    for e in items:
        if merged and e.offset <= merged[-1].end:
            last = merged[-1]
            merged[-1] = Extent(last.offset, max(last.end, e.end) - last.offset)
        else:
            merged.append(e)
    return merged


@dataclass(frozen=True)
class StridedSegment:
    """``count`` blocks of ``block`` bytes, spaced ``stride`` bytes apart.

    ``stride >= block`` (blocks within one segment never overlap).  A
    contiguous run is the special case ``count == 1`` (stride ignored) or
    ``stride == block``.
    """

    offset: int
    block: int
    stride: int
    count: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.block <= 0:
            raise ValueError(f"block must be positive, got {self.block}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.count > 1 and self.stride < self.block:
            raise ValueError(
                f"stride {self.stride} < block {self.block} would self-overlap"
            )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes covered (sum of all blocks)."""
        return self.block * self.count

    @property
    def start(self) -> int:
        """First byte covered."""
        return self.offset

    @property
    def end(self) -> int:
        """One past the last byte covered."""
        return self.offset + (self.count - 1) * self.stride + self.block

    @property
    def contiguous(self) -> bool:
        """True if the segment is one unbroken run."""
        return self.count == 1 or self.stride == self.block

    # ------------------------------------------------------------------
    def block_extent(self, index: int) -> Extent:
        """The `index`-th block as an extent."""
        if not 0 <= index < self.count:
            raise IndexError(index)
        return Extent(self.offset + index * self.stride, self.block)

    def iter_extents(self) -> Iterator[Extent]:
        """Yield every block as an extent (use only for small counts)."""
        for i in range(self.count):
            yield Extent(self.offset + i * self.stride, self.block)

    def bytes_in(self, lo: int, hi: int) -> int:
        """Bytes of this segment inside ``[lo, hi)`` — O(1) arithmetic."""
        if hi <= lo or hi <= self.start or lo >= self.end:
            return 0
        if self.contiguous:
            return min(hi, self.end) - max(lo, self.start)
        # indices of blocks whose [bstart, bend) intersects [lo, hi)
        i_lo = max(0, (lo - self.offset - self.block + self.stride) // self.stride)
        i_hi = min(self.count - 1, (hi - 1 - self.offset) // self.stride)
        if i_hi < i_lo:
            return 0
        total = (i_hi - i_lo + 1) * self.block
        # trim the partial head block
        head_start = self.offset + i_lo * self.stride
        total -= max(0, lo - head_start)
        # trim the partial tail block
        tail_end = self.offset + i_hi * self.stride + self.block
        total -= max(0, tail_end - hi)
        return max(0, total)

    def clip(self, lo: int, hi: int) -> list["StridedSegment"]:
        """Portions of the segment inside ``[lo, hi)``.

        Returns at most three segments: a partial head block, the run of
        fully contained blocks, and a partial tail block.
        """
        if hi <= lo or hi <= self.start or lo >= self.end:
            return []
        if self.contiguous:
            s = max(lo, self.start)
            e = min(hi, self.end)
            return [StridedSegment(s, e - s, e - s, 1)] if e > s else []

        i_lo = max(0, (lo - self.offset - self.block + self.stride) // self.stride)
        i_hi = min(self.count - 1, (hi - 1 - self.offset) // self.stride)
        if i_hi < i_lo:
            return []

        pieces: list[StridedSegment] = []
        first_full = i_lo
        last_full = i_hi
        # head block partially cut?
        head_start = self.offset + i_lo * self.stride
        head_end = head_start + self.block
        if lo > head_start or hi < head_end:
            s = max(lo, head_start)
            e = min(hi, head_end)
            if e > s:
                pieces.append(StridedSegment(s, e - s, e - s, 1))
            first_full = i_lo + 1
        # tail block partially cut (and distinct from head)?
        tail_piece: Optional[StridedSegment] = None
        if i_hi > i_lo:
            tail_start = self.offset + i_hi * self.stride
            tail_end = tail_start + self.block
            if hi < tail_end:
                s = tail_start
                e = hi
                if e > s:
                    tail_piece = StridedSegment(s, e - s, e - s, 1)
                last_full = i_hi - 1
        if last_full >= first_full:
            pieces.append(
                StridedSegment(
                    self.offset + first_full * self.stride,
                    self.block,
                    self.stride,
                    last_full - first_full + 1,
                )
            )
        if tail_piece is not None:
            pieces.append(tail_piece)
        return pieces

    def position_of(self, file_offset: int) -> int:
        """Bytes of this segment strictly before `file_offset`.

        `file_offset` need not lie inside a block; gaps map to the start of
        the next block.
        """
        if file_offset <= self.start:
            return 0
        if file_offset >= self.end:
            return self.nbytes
        i = (file_offset - self.offset) // self.stride
        within = file_offset - (self.offset + i * self.stride)
        return i * self.block + min(within, self.block)


def _try_merge(prev: StridedSegment, seg: StridedSegment) -> Optional[StridedSegment]:
    """Merge two consecutive segments into one, or return None.

    Two merges are recognised: back-to-back contiguous runs, and
    equal-geometry strided runs where `seg` continues `prev`'s block train
    exactly one stride after its last block.
    """
    if prev.contiguous and seg.contiguous and prev.end == seg.start:
        total = prev.nbytes + seg.nbytes
        return StridedSegment(prev.offset, total, total, 1)
    if prev.block != seg.block:
        return None
    # A count==1 segment has no meaningful stride; borrow the partner's.
    stride_p = prev.stride if prev.count > 1 else None
    stride_s = seg.stride if seg.count > 1 else None
    stride = stride_p if stride_p is not None else stride_s
    if stride is None or (stride_s is not None and stride_s != stride):
        return None
    if stride < prev.block:
        return None
    if seg.start != prev.offset + prev.count * stride:
        return None
    return StridedSegment(prev.offset, prev.block, stride, prev.count + seg.count)


class AccessPattern:
    """One rank's file view: ordered, non-self-overlapping strided segments.

    Segment order defines buffer order: the rank's memory buffer is the
    concatenation of all blocks in sequence, which is how MPI file views
    map datatypes to buffers.

    Parameters
    ----------
    segments:
        Segments in strictly increasing file order (``end <= next.start``).
        Overlapping or out-of-order segments are rejected — a single rank's
        request never self-overlaps.
    """

    __slots__ = ("segments", "_prefix", "_starts")

    def __init__(self, segments: Sequence[StridedSegment]):
        segs = tuple(segments)
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end:
                raise ValueError(
                    f"segments out of order or overlapping: {a} then {b}"
                )
        self.segments = segs
        prefix = [0]
        for s in segs:
            prefix.append(prefix[-1] + s.nbytes)
        #: prefix[i] = bytes in segments[:i]
        self._prefix = prefix
        self._starts = [s.start for s in segs]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def contiguous(cls, offset: int, length: int) -> "AccessPattern":
        """A single contiguous request (empty pattern if length == 0)."""
        if length == 0:
            return cls(())
        return cls((StridedSegment(offset, length, length, 1),))

    @classmethod
    def from_extents(cls, extents: Iterable[Extent]) -> "AccessPattern":
        """Build from plain extents (must be sorted and disjoint)."""
        return cls(
            tuple(
                StridedSegment(e.offset, e.length, e.length, 1)
                for e in extents
                if e.length > 0
            )
        )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes requested."""
        return self._prefix[-1]

    @property
    def empty(self) -> bool:
        """True if the pattern requests nothing."""
        return self.nbytes == 0

    @property
    def start(self) -> int:
        """First byte requested (0 for empty patterns)."""
        return self.segments[0].start if self.segments else 0

    @property
    def end(self) -> int:
        """One past the last byte requested (0 for empty patterns)."""
        return self.segments[-1].end if self.segments else 0

    @property
    def segment_count(self) -> int:
        """Number of strided segments."""
        return len(self.segments)

    @property
    def block_count(self) -> int:
        """Number of contiguous blocks (i.e. discrete I/O pieces)."""
        return sum(s.count for s in self.segments)

    # ------------------------------------------------------------------
    def bytes_in(self, lo: int, hi: int) -> int:
        """Bytes requested inside ``[lo, hi)``."""
        if hi <= lo or self.empty:
            return 0
        # segments are ordered; only those intersecting [lo, hi) contribute
        i = bisect.bisect_left(self._starts, lo)
        if i > 0 and self.segments[i - 1].end > lo:
            i -= 1
        total = 0
        while i < len(self.segments) and self.segments[i].start < hi:
            total += self.segments[i].bytes_in(lo, hi)
            i += 1
        return total

    def clip(self, lo: int, hi: int) -> "AccessPattern":
        """Sub-pattern inside ``[lo, hi)``."""
        if hi <= lo or self.empty:
            return AccessPattern(())
        pieces: list[StridedSegment] = []
        i = bisect.bisect_left(self._starts, lo)
        if i > 0 and self.segments[i - 1].end > lo:
            i -= 1
        while i < len(self.segments) and self.segments[i].start < hi:
            pieces.extend(self.segments[i].clip(lo, hi))
            i += 1
        return AccessPattern(tuple(pieces))

    def buffer_position(self, file_offset: int) -> int:
        """Bytes of this pattern strictly before `file_offset`.

        Maps a file position to the corresponding position in the rank's
        packed memory buffer.
        """
        if self.empty:
            return 0
        i = bisect.bisect_right(self._starts, file_offset) - 1
        if i < 0:
            return 0
        return self._prefix[i] + self.segments[i].position_of(file_offset)

    def iter_mapped_extents(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(file_offset, length, buffer_offset)`` per block, in order.

        Expands blocks one by one — intended for correctness-mode runs with
        real payloads, not for metadata-only benchmark patterns.
        """
        buf = 0
        for seg in self.segments:
            for i in range(seg.count):
                yield (seg.offset + i * seg.stride, seg.block, buf)
                buf += seg.block

    def coalesce(self) -> "AccessPattern":
        """Merge adjacent compatible segments (same geometry, or contiguous)."""
        if not self.segments:
            return self
        out: list[StridedSegment] = []
        for seg in self.segments:
            merged = None
            if out:
                merged = _try_merge(out[-1], seg)
            if merged is not None:
                out[-1] = merged
            else:
                out.append(seg)
        return AccessPattern(tuple(out))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessPattern):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AccessPattern {self.segment_count} segs, {self.block_count} blocks, "
            f"{self.nbytes} B in [{self.start}, {self.end})>"
        )
