"""Array-backed access-pattern collections for node-level simulation.

At million-rank scale a ``list[AccessPattern]`` is untenable: planning
alone touches every rank several times per domain, and materialising one
python object per rank costs more than the whole simulated collective.
:class:`PatternArray` stores a *contiguous* per-rank workload as two
int64 numpy arrays (start offset and length per rank) and answers the
planner's questions — who has bytes in a window, how many, and what the
union of their extents is — as vectorized array operations.

The semantics deliberately mirror :class:`~repro.core.request.AccessPattern`
for the contiguous single-segment case: a rank with ``length == 0`` is
"empty" and never counts as a sender, and extent unions merge *touching*
ranges exactly like :func:`~repro.core.request.coalesce_extents`.
``tests/core/test_pattern_array.py`` pins that equivalence against the
generic per-pattern code paths.

Indexing a :class:`PatternArray` materialises a real
:class:`AccessPattern`, so any per-rank code path that receives one
keeps working unchanged — just slowly.  The planner and the vectorized
execution driver dispatch on ``isinstance(patterns, PatternArray)`` to
take the array route instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.request import AccessPattern, Extent

__all__ = ["PatternArray"]

#: Mirrors ``repro.core.engine._UNION_BLOCK_LIMIT``: beyond this many
#: blocks a window union degrades to one covering extent.
_UNION_BLOCK_LIMIT = 200_000


class PatternArray(Sequence):
    """A contiguous-only per-rank workload held as numpy arrays."""

    __slots__ = ("_starts", "_lengths", "_ends", "_monotone")

    def __init__(self, starts: Iterable[int], lengths: Iterable[int]):
        starts_arr = np.asarray(starts, dtype=np.int64)
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        if starts_arr.ndim != 1 or lengths_arr.ndim != 1:
            raise ValueError("starts and lengths must be 1-D")
        if starts_arr.shape != lengths_arr.shape:
            raise ValueError("starts and lengths must have equal length")
        if starts_arr.size and (starts_arr < 0).any():
            raise ValueError("negative start offset")
        if lengths_arr.size and (lengths_arr < 0).any():
            raise ValueError("negative length")
        self._starts = starts_arr
        self._lengths = lengths_arr
        self._ends = starts_arr + lengths_arr
        # rank-ordered layouts (the tiled checkpoint case) answer window
        # queries by bisection instead of full-array scans — at 10^6
        # ranks that is the difference between O(log n) and O(n) per
        # planner/driver window
        self._monotone = bool(
            starts_arr.size < 2
            or (
                (starts_arr[1:] >= starts_arr[:-1]).all()
                and (self._ends[1:] >= self._ends[:-1]).all()
            )
        )

    def _window_slice(self, lo: int, hi: int):
        """Candidate rank slice ``[i0, i1)`` for a window, or None.

        Only valid for monotone arrays: ranks before ``i0`` end at or
        before ``lo``, ranks at or past ``i1`` start at or past ``hi``.
        """
        if not self._monotone:
            return None
        i1 = int(np.searchsorted(self._starts, hi, side="left"))
        i0 = int(np.searchsorted(self._ends, lo, side="right"))
        return i0, max(i0, i1)

    # ------------------------------------------------------------------
    # construction
    @classmethod
    def contiguous(
        cls, starts: Iterable[int], lengths: Iterable[int]
    ) -> "PatternArray":
        """One contiguous extent per rank (zero length = empty rank)."""
        return cls(starts, lengths)

    @classmethod
    def tiled(cls, n_ranks: int, bytes_per_rank: int, base: int = 0) -> "PatternArray":
        """Rank ``r`` owns ``[base + r*b, base + (r+1)*b)`` — the classic
        block-partitioned checkpoint layout used by the scale sweeps."""
        starts = base + np.arange(n_ranks, dtype=np.int64) * bytes_per_rank
        lengths = np.full(n_ranks, bytes_per_rank, dtype=np.int64)
        return cls(starts, lengths)

    # ------------------------------------------------------------------
    # sequence protocol — materialises real AccessPatterns on demand
    def __len__(self) -> int:
        return int(self._starts.size)

    def __getitem__(self, rank):
        if isinstance(rank, slice):
            return PatternArray(self._starts[rank], self._lengths[rank])
        return AccessPattern.contiguous(
            int(self._starts[rank]), int(self._lengths[rank])
        )

    def __iter__(self) -> Iterator[AccessPattern]:
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PatternArray {len(self)} ranks, {self.total_bytes} bytes>"

    # ------------------------------------------------------------------
    # array views
    @property
    def starts(self) -> np.ndarray:
        return self._starts

    @property
    def lengths(self) -> np.ndarray:
        return self._lengths

    @property
    def ends(self) -> np.ndarray:
        return self._ends

    @property
    def total_bytes(self) -> int:
        return int(self._lengths.sum())

    @property
    def any_active(self) -> bool:
        """True when at least one rank has a non-empty pattern."""
        return bool((self._lengths > 0).any())

    @property
    def max_segment_count(self) -> int:
        """Max ``AccessPattern.segment_count`` over ranks (1 or 0 here)."""
        return 1 if self.any_active else 0

    def bounds(self) -> tuple[int, int]:
        """(min start, max end) over non-empty ranks."""
        active = self._lengths > 0
        if not active.any():
            raise ValueError("bounds() on an all-empty PatternArray")
        return (
            int(self._starts[active].min()),
            int(self._ends[active].max()),
        )

    # ------------------------------------------------------------------
    # planner queries
    def senders_in(self, lo: int, hi: int) -> np.ndarray:
        """Ascending ranks with at least one byte in ``[lo, hi)``."""
        window = self._window_slice(lo, hi)
        if window is not None:
            i0, i1 = window
            idx = np.arange(i0, i1, dtype=np.int64)
            if idx.size:
                idx = idx[self._lengths[i0:i1] > 0]
            return idx
        mask = (self._starts < hi) & (self._ends > lo) & (self._lengths > 0)
        return np.flatnonzero(mask)

    def bytes_in_many(self, ranks: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Per-rank byte counts inside ``[lo, hi)`` for the given ranks."""
        ranks = np.asarray(ranks, dtype=np.int64)
        clipped = np.minimum(self._ends[ranks], hi) - np.maximum(
            self._starts[ranks], lo
        )
        return np.clip(clipped, 0, None)

    def sum_bytes_in(self, lo: int, hi: int, ranks=None) -> int:
        """Total bytes inside ``[lo, hi)`` (optionally over given ranks)."""
        if ranks is None:
            window = self._window_slice(lo, hi)
            if window is not None:
                i0, i1 = window
                if i0 >= i1:
                    return 0
                clipped = np.minimum(self._ends[i0:i1], hi) - np.maximum(
                    self._starts[i0:i1], lo
                )
                return int(np.clip(clipped, 0, None).sum())
            clipped = np.minimum(self._ends, hi) - np.maximum(self._starts, lo)
            return int(np.clip(clipped, 0, None).sum())
        if not len(ranks):
            return 0
        return int(self.bytes_in_many(np.asarray(ranks, dtype=np.int64), lo, hi).sum())

    def union_extents(self, ranks, lo: int, hi: int) -> list[Extent]:
        """Coalesced union of the given ranks' extents clipped to a window.

        Exactly matches ``repro.core.engine._union_extents`` for
        contiguous patterns: each non-empty clip contributes one block,
        blocks beyond ``_UNION_BLOCK_LIMIT`` collapse to a single
        covering extent, and touching blocks merge.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return []
        starts = np.maximum(self._starts[ranks], lo)
        ends = np.minimum(self._ends[ranks], hi)
        keep = ends > starts
        starts, ends = starts[keep], ends[keep]
        if starts.size == 0:
            return []
        if starts.size > _UNION_BLOCK_LIMIT:
            base = int(starts.min())
            return [Extent(base, int(ends.max()) - base)]
        order = np.argsort(starts, kind="stable")
        starts, ends = starts[order], ends[order]
        reach = np.maximum.accumulate(ends)
        # a new run begins where a block starts past everything seen so far
        breaks = np.flatnonzero(starts[1:] > reach[:-1]) + 1
        run_starts = np.concatenate(([0], breaks))
        run_ends = np.concatenate((breaks, [starts.size])) - 1
        return [
            Extent(int(starts[i]), int(reach[j]) - int(starts[i]))
            for i, j in zip(run_starts, run_ends)
        ]
