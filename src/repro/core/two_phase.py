"""Baseline ROMIO-style two-phase collective I/O.

Planning (memory-oblivious, as in ROMIO):

* aggregators: exactly one process per compute node by default
  (``cb_nodes`` overrides the count);
* the aggregate file region ``[min offset, max end)`` is split into
  *even* contiguous file domains, one per aggregator, optionally
  stripe-aligned;
* every aggregator uses the same fixed collective buffer
  (``cb_buffer_size``) regardless of its host's available memory — the
  memory-pressure failure mode the paper targets.

Execution is the shared two-phase machinery in :mod:`repro.core.engine`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import TwoPhaseConfig
from repro.core.engine import ExecutionPlan, execute_collective
from repro.core.filedomain import FileDomain, even_domains
from repro.core.metrics import CollectiveStats, StatsCollector
from repro.core.request import AccessPattern
from repro.mpi.comm import RankContext, SimComm
from repro.pfs.filesystem import ParallelFileSystem

__all__ = ["TwoPhaseCollectiveIO", "default_aggregators"]


def default_aggregators(
    placement: Sequence[int], cb_nodes: Optional[int] = None
) -> list[int]:
    """ROMIO's default aggregator choice: one process per node.

    The first rank on each node becomes an aggregator, in node order.
    ``cb_nodes`` overrides the count: fewer → only the first nodes get
    aggregators; more → nodes receive extra aggregators round-robin.
    """
    first_rank: dict[int, int] = {}
    node_ranks: dict[int, list[int]] = {}
    for rank, node in enumerate(placement):
        node_ranks.setdefault(node, []).append(rank)
        first_rank.setdefault(node, rank)
    nodes = sorted(first_rank)
    count = len(nodes) if cb_nodes is None else cb_nodes
    if count < 1:
        raise ValueError("cb_nodes must be >= 1")
    aggs: list[int] = []
    i = 0
    while len(aggs) < count:
        node = nodes[i % len(nodes)]
        ranks = node_ranks[node]
        depth = i // len(nodes)
        aggs.append(ranks[depth % len(ranks)])
        i += 1
    return aggs[:count]


class TwoPhaseCollectiveIO:
    """The normal two-phase collective I/O strategy (the paper's baseline).

    Instantiate once per (comm, pfs) pair and call :meth:`write` /
    :meth:`read` from every rank's process (SPMD).  Finished-operation
    statistics accumulate in :attr:`history`.
    """

    name = "two-phase"

    def __init__(
        self,
        comm: SimComm,
        pfs: ParallelFileSystem,
        config: Optional[TwoPhaseConfig] = None,
    ):
        self.comm = comm
        self.pfs = pfs
        self.config = config if config is not None else TwoPhaseConfig()
        self._rank_seq: dict[int, int] = {}
        self._plans: dict[int, ExecutionPlan] = {}
        self._stats: dict[int, StatsCollector] = {}
        #: Optional :class:`~repro.core.audit.ConservationAuditor`; when
        #: set (via its ``attach``), collectors report through it.
        self.auditor = None
        #: Finalized stats of completed operations, in call order.
        self.history: list[CollectiveStats] = []

    # ------------------------------------------------------------------
    def write(self, ctx: RankContext, pattern: AccessPattern,
              payload: Optional[np.ndarray] = None):
        """Process generator: collective write of this rank's view."""
        return (yield from self._collective(ctx, pattern, payload, "write"))

    def read(self, ctx: RankContext, pattern: AccessPattern,
             payload: Optional[np.ndarray] = None):
        """Process generator: collective read; fills and returns `payload`.

        With a datastore attached and `payload` omitted, a fresh buffer of
        ``pattern.nbytes`` is allocated and returned.
        """
        if payload is None and self.pfs.datastore is not None:
            payload = np.zeros(pattern.nbytes, dtype=np.uint8)
        return (yield from self._collective(ctx, pattern, payload, "read"))

    # ------------------------------------------------------------------
    def _next_seq(self, rank: int) -> int:
        seq = self._rank_seq.get(rank, 0)
        self._rank_seq[rank] = seq + 1
        return seq

    def _collective(self, ctx, pattern, payload, op):
        if payload is not None and len(payload) != pattern.nbytes:
            raise ValueError(
                f"payload {len(payload)} B != pattern {pattern.nbytes} B"
            )
        seq = self._next_seq(ctx.rank)
        meta_bytes = 32 * (1 + pattern.segment_count)
        patterns = yield from self.comm.allgather(ctx, pattern, nbytes=meta_bytes)
        plan, stats = self._prepare(seq, patterns, op)
        result = yield from execute_collective(
            ctx, self.comm, self.pfs, plan, patterns, stats, op, seq,
            payload=payload, granularity=self.config.shuffle_granularity,
            intra_node_aggregation=self.config.intra_node_aggregation,
        )
        self._finish(seq, ctx)
        return result

    def _prepare(self, seq, patterns, op):
        """Plan once per collective call (identical on every rank)."""
        if seq not in self._plans:
            self._plans[seq] = self.plan(patterns)
            collector = StatsCollector(self.name, op, n_ranks=self.comm.size)
            collector.n_groups = self._plans[seq].n_groups
            collector.attach_pfs(self.pfs)
            if self.auditor is not None:
                collector.auditor = self.auditor
            self._stats[seq] = collector
        return self._plans[seq], self._stats[seq]

    def _finish(self, seq, ctx):
        """Last rank out finalizes the stats."""
        stats = self._stats.get(seq)
        if stats is None:
            return
        stats.extra["finishers"] = stats.extra.get("finishers", 0) + 1
        if stats.extra["finishers"] == self.comm.size:
            stats.mark_end(ctx.env.now)
            self.history.append(stats.finalize())
            del self._stats[seq]
            del self._plans[seq]

    # ------------------------------------------------------------------
    def plan(self, patterns: Sequence[AccessPattern]) -> ExecutionPlan:
        """Compute the baseline execution plan for the gathered views."""
        active = [p for p in patterns if not p.empty]
        if not active:
            return ExecutionPlan((), (), n_groups=1)
        lo = min(p.start for p in active)
        hi = max(p.end for p in active)
        aggs = default_aggregators(self.comm.placement, self.config.cb_nodes)
        stripe = self.pfs.layout.stripe_size if self.config.stripe_align else 0
        extents = even_domains(lo, hi, len(aggs), stripe_size=stripe)
        domains = [
            FileDomain(
                extent=ext,
                aggregator_rank=aggs[i],
                buffer_bytes=self.config.cb_buffer_size,
                paged=False,  # the baseline does not know (or care)
                group_id=0,
            )
            for i, ext in enumerate(extents)
        ]
        return ExecutionPlan.build(domains, patterns, n_groups=1)
