"""The paper's contribution: collective-I/O strategies and their pieces.

Public surface:

* :class:`~repro.core.two_phase.TwoPhaseCollectiveIO` — the ROMIO-style
  baseline;
* :class:`~repro.core.mcio.MemoryConsciousCollectiveIO` — the paper's
  memory-conscious strategy;
* :class:`~repro.core.independent.IndependentIO` /
  :class:`~repro.core.independent.DataSievingIO` — non-collective
  comparison points;
* the planning building blocks (extent algebra, group division, partition
  tree, aggregator placement) for users who want to compose their own
  strategy.
"""

from .aggregator_selection import PlacementError, candidate_hosts, place_aggregators
from .audit import AuditRecord, ConservationAuditor, ConservationError
from .borrow import BorrowDegraded, BorrowSession
from .config import MCIOConfig, TwoPhaseConfig
from .engine import ExecutionPlan, execute_collective
from .failover import FailoverDecision, replace_failed_domains
from .filedomain import FileDomain, even_domains, rounds_for
from .group_division import AggregationGroup, divide_groups
from .independent import DataSievingIO, IndependentIO
from .mcio import MemoryConsciousCollectiveIO
from .metrics import CollectiveStats, StatsCollector
from .partition_tree import PartitionNode, PartitionTree
from .persistent import PersistentCollective
from .plan_cache import PlanCache, PlanCacheStats
from .request import AccessPattern, Extent, StridedSegment, coalesce_extents
from .two_phase import TwoPhaseCollectiveIO, default_aggregators

__all__ = [
    "AccessPattern",
    "AggregationGroup",
    "AuditRecord",
    "BorrowDegraded",
    "BorrowSession",
    "CollectiveStats",
    "ConservationAuditor",
    "ConservationError",
    "DataSievingIO",
    "ExecutionPlan",
    "Extent",
    "FailoverDecision",
    "FileDomain",
    "IndependentIO",
    "MCIOConfig",
    "MemoryConsciousCollectiveIO",
    "PartitionNode",
    "PartitionTree",
    "PersistentCollective",
    "PlacementError",
    "PlanCache",
    "PlanCacheStats",
    "StatsCollector",
    "StridedSegment",
    "TwoPhaseCollectiveIO",
    "TwoPhaseConfig",
    "candidate_hosts",
    "coalesce_extents",
    "default_aggregators",
    "divide_groups",
    "even_domains",
    "execute_collective",
    "place_aggregators",
    "replace_failed_domains",
    "rounds_for",
]
