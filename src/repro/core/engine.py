"""Shared two-phase execution machinery.

Both collective-I/O strategies (ROMIO baseline and MCIO) reduce to the
same runtime skeleton once planning is done: a list of
:class:`~repro.core.filedomain.FileDomain` assignments executed by SPMD
rank processes.  This module implements that skeleton.

Write (collective write = shuffle then I/O, per round):

* every rank clips its file view against each domain's current round
  window and sends the covered bytes to the domain's aggregator;
* the aggregator receives all contributions, assembles them into its
  aggregation buffer (a memory-system copy, paying the paging penalty if
  the buffer spilled), and writes the union of the requested extents to
  the parallel file system.

Read runs the phases in reverse.  Payloads are optional: with payloads
attached the data movement is byte-accurate and verifiable; without, only
sizes flow (metadata-only mode for large benchmark runs).

Round synchronisation.  ROMIO's ``ADIOI_Exch_and_write`` loops a global
``ntimes = max(rounds over aggregators)`` with an all-to-all exchange per
iteration, so every rank advances through buffer rounds in lockstep; a
slow aggregator (paged buffer, contended server) stalls *everyone* each
round.  ``granularity="round"`` reproduces exactly that.
``granularity="domain"`` instead batches each (rank, aggregator) pair's
traffic into one message and lets aggregators stream their rounds
without global synchronisation — far fewer simulation events, at the
cost of under-charging synchronisation stalls; use it for 1000+ rank
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.borrow import (
    acquire_leases,
    borrow_round_check,
    check_acquisition,
    release_leases,
)
from repro.core.failover import replace_failed_domains
from repro.core.filedomain import FileDomain, rounds_for
from repro.core.metrics import StatsCollector
from repro.core.request import AccessPattern, Extent, coalesce_extents
from repro.mpi.comm import RankContext, SimComm
from repro.obs.tracer import PID_PIPELINE
from repro.pfs.filesystem import ParallelFileSystem

__all__ = ["ExecutionPlan", "execute_collective"]

#: Safety valve: when the exact union of requested extents inside one
#: round would expand more blocks than this, fall back to the covering
#: extent (requests in our workloads tile their domains, so this only
#: guards pathological synthetic patterns).
_UNION_BLOCK_LIMIT = 200_000


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything the runtime needs: domains plus per-domain sender lists."""

    domains: tuple[FileDomain, ...]
    #: ``senders[i]`` = ranks with data inside ``domains[i]``.
    senders: tuple[tuple[int, ...], ...]
    n_groups: int = 1

    def __post_init__(self) -> None:
        if len(self.domains) != len(self.senders):
            raise ValueError("domains and senders length mismatch")
        # per-(domain, window) sender memo, shared by every rank running
        # this plan (the instance is shared across the whole collective)
        object.__setattr__(self, "_window_senders", {})
        object.__setattr__(self, "_window_node_groups", {})

    def window_senders(
        self, did: int, lo: int, hi: int, patterns: Sequence[AccessPattern]
    ) -> list[int]:
        """Ranks of ``senders[did]`` with bytes in ``[lo, hi)``, memoized.

        Callers must treat the returned list as immutable — it is shared
        across every rank of the collective.
        """
        key = (did, lo, hi)
        cached = self._window_senders.get(key)
        if cached is None:
            senders = [
                r
                for r in self.senders[did]
                # bounding-interval pre-check before the per-segment walk
                if patterns[r].start < hi and patterns[r].end > lo
                and patterns[r].bytes_in(lo, hi) > 0
            ]
            cached = (senders, frozenset(senders))
            self._window_senders[key] = cached
        return cached[0]

    def is_window_sender(
        self, rank: int, did: int, lo: int, hi: int,
        patterns: Sequence[AccessPattern],
    ) -> bool:
        """Whether `rank` has bytes in window ``[lo, hi)`` of domain `did`.

        One shared pattern scan per window serves every rank's
        membership check — the per-rank cost is a set lookup.
        """
        key = (did, lo, hi)
        cached = self._window_senders.get(key)
        if cached is None:
            self.window_senders(did, lo, hi, patterns)
            cached = self._window_senders[key]
        return rank in cached[1]

    def window_node_groups(
        self,
        did: int,
        lo: int,
        hi: int,
        patterns: Sequence[AccessPattern],
        placement: Sequence[int],
    ) -> dict[int, list[int]]:
        """Window senders grouped by hosting node, memoized.

        ``{node_id: [ranks]}`` with ranks ascending inside each node —
        the first rank of a group is that node's shuffle leader under
        intra-node aggregation.  Shared across ranks; treat as
        immutable.
        """
        key = (did, lo, hi)
        cached = self._window_node_groups.get(key)
        if cached is None:
            groups: dict[int, list[int]] = {}
            for r in self.window_senders(did, lo, hi, patterns):
                groups.setdefault(placement[r], []).append(r)
            self._window_node_groups[key] = cached = groups
        return cached

    @classmethod
    def build(
        cls,
        domains: Sequence[FileDomain],
        patterns: Sequence[AccessPattern],
        n_groups: int = 1,
    ) -> "ExecutionPlan":
        """Derive sender lists from the ranks' file views."""
        from repro.core.pattern_array import PatternArray

        if isinstance(patterns, PatternArray):
            senders = tuple(
                tuple(
                    patterns.senders_in(d.extent.offset, d.extent.end).tolist()
                )
                for d in domains
            )
        else:
            senders = tuple(
                tuple(
                    r
                    for r, p in enumerate(patterns)
                    if p.bytes_in(d.extent.offset, d.extent.end) > 0
                )
                for d in domains
            )
        return cls(tuple(domains), senders, n_groups)

    @property
    def aggregator_ranks(self) -> tuple[int, ...]:
        """Distinct aggregator ranks, sorted."""
        return tuple(sorted({d.aggregator_rank for d in self.domains}))

    def partition_groups(self, n_parts: int) -> tuple[tuple[int, ...], ...]:
        """Group-aligned domain-index partitions for sharded execution.

        Whole aggregation groups are dealt round-robin (in ascending
        ``group_id`` order) onto ``min(n_parts, n_groups)`` partitions;
        inside a partition, domain indices stay in ascending plan order,
        so each shard replays its domains in the same relative sequence
        the unsharded run would.  The split depends only on the plan and
        `n_parts` — never on worker identity or scheduling — which is
        what makes sharded results order- and worker-count-independent.
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        by_group: dict[int, list[int]] = {}
        for did, domain in enumerate(self.domains):
            by_group.setdefault(domain.group_id, []).append(did)
        groups = [by_group[gid] for gid in sorted(by_group)]
        n = min(n_parts, len(groups))
        if n == 0:
            return ()
        parts: list[list[int]] = [[] for _ in range(n)]
        for i, dids in enumerate(groups):
            parts[i % n].extend(dids)
        return tuple(tuple(sorted(p)) for p in parts)

    @property
    def ntimes(self) -> int:
        """Global round count (max over domains), ROMIO's ``ntimes``."""
        if not self.domains:
            return 0
        return max(
            rounds_for(d.extent.length, d.buffer_bytes) for d in self.domains
        )


@dataclass(frozen=True)
class _IntraNodeBundle:
    """Leader-coalesced shuffle payload: one wire message, many slices.

    ``parts`` is a rank-ascending tuple of ``(rank, nbytes, data)`` — the
    per-rank window slices a node leader pooled (write: toward an
    aggregator; read: from an aggregator toward a node's members).
    """

    parts: tuple


def _round_extent(domain: FileDomain, t: int) -> Optional[Extent]:
    """Round `t`'s window of `domain`, or None past the domain's last round."""
    lo = domain.extent.offset + t * domain.buffer_bytes
    if lo >= domain.extent.end:
        return None
    hi = min(domain.extent.end, lo + domain.buffer_bytes)
    return Extent(lo, hi - lo)


def _union_extents(
    patterns: Sequence[AccessPattern], senders: Sequence[int], window: Extent
) -> list[Extent]:
    """Exact union of the senders' requested extents inside `window`."""
    clips = []
    total_blocks = 0
    for r in senders:
        q = patterns[r].clip(window.offset, window.end)
        if q.empty:
            continue
        total_blocks += q.block_count
        clips.append(q)
    if not clips:
        return []
    if total_blocks > _UNION_BLOCK_LIMIT:
        lo = min(q.start for q in clips)
        hi = max(q.end for q in clips)
        return [Extent(lo, hi - lo)]
    extents: list[Extent] = []
    for q in clips:
        for off, ln, _ in q.iter_mapped_extents():
            extents.append(Extent(off, ln))
    return coalesce_extents(extents)


def _pack_payload(
    pattern: AccessPattern, payload: np.ndarray, clipped: AccessPattern
) -> np.ndarray:
    """Gather the bytes of `clipped` (a sub-pattern) out of `payload`."""
    out = np.empty(clipped.nbytes, dtype=np.uint8)
    for off, ln, qbuf in clipped.iter_mapped_extents():
        src = pattern.buffer_position(off)
        out[qbuf : qbuf + ln] = payload[src : src + ln]
    return out


def _unpack_payload(
    pattern: AccessPattern,
    payload: np.ndarray,
    clipped: AccessPattern,
    packed: np.ndarray,
) -> None:
    """Scatter `packed` (bytes of `clipped`) back into `payload`."""
    for off, ln, qbuf in clipped.iter_mapped_extents():
        dst = pattern.buffer_position(off)
        payload[dst : dst + ln] = packed[qbuf : qbuf + ln]


class _RunContext:
    """Per-collective state shared by one rank's role coroutines."""

    __slots__ = (
        "ctx", "comm", "pfs", "plan", "patterns", "stats", "op", "op_seq",
        "payload", "node", "domains", "allocs", "paged_flags",
        "failover_config", "borrow",
    )

    def __init__(self, ctx, comm, pfs, plan, patterns, stats, op, op_seq, payload):
        self.ctx = ctx
        self.comm = comm
        self.pfs = pfs
        self.plan = plan
        self.patterns = patterns
        self.stats = stats
        self.op = op
        self.op_seq = op_seq
        self.payload = payload
        self.node = ctx.node
        #: Mutable view of the plan's domains: failover swaps aggregators
        #: here while the frozen plan keeps the original assignment.
        self.domains = list(plan.domains)
        #: This rank's live aggregation-buffer allocations, by domain id.
        self.allocs: dict[int, object] = {}
        self.paged_flags: dict[int, bool] = {}
        self.failover_config = None
        #: Active :class:`~repro.core.borrow.BorrowSession`, or None.
        self.borrow = None


def execute_collective(
    ctx: RankContext,
    comm: SimComm,
    pfs: ParallelFileSystem,
    plan: ExecutionPlan,
    patterns: Sequence[AccessPattern],
    stats: StatsCollector,
    op: str,
    op_seq: int,
    payload: Optional[np.ndarray] = None,
    granularity: str = "round",
    failover_config=None,
    intra_node_aggregation: bool = False,
    borrow=None,
    pipelined: bool = False,
):
    """Process generator: one rank's role in a planned collective op.

    Parameters
    ----------
    ctx:
        The calling rank's context.
    comm, pfs:
        Runtime substrates.
    plan:
        The strategy's output (identical on every rank).
    patterns:
        All ranks' file views (from the planning allgather).
    stats:
        Shared collector.
    op:
        ``"write"`` or ``"read"``.
    op_seq:
        Engine-level sequence number, namespacing message tags.
    payload:
        This rank's data buffer (write: source, read: destination), or
        None for metadata-only runs.
    granularity:
        ``"round"`` (lockstep, like ROMIO), ``"batched"`` (lockstep with
        node-aggregated shuffle transfers; falls back to ``"round"``
        whenever fault machinery is engaged so degraded-mode behaviour
        stays exact) or ``"domain"`` (streaming, for very large runs) —
        see module docstring.
    failover_config:
        An :class:`~repro.core.config.MCIOConfig` to enable mid-run
        aggregator failover (between lockstep rounds, ``"round"``
        granularity only), or None for fault-oblivious execution.  With
        no failed hosts the check adds no simulation events, so
        fault-free timing is unchanged.
    intra_node_aggregation:
        Leader-coalesced shuffle: one rank per (node, domain, window)
        pools its co-located ranks' slices and exchanges a single wire
        message per aggregator node, cutting per-round inter-node
        messages from O(ranks touching the window) to O(nodes touching
        the window).  Ignored at ``"domain"`` granularity and whenever
        fault machinery is engaged (same fallback rule as
        ``"batched"``).
    borrow:
        A :class:`~repro.core.borrow.BorrowSession` when the plan
        contains lender-backed domains, else None.  Forces ``"round"``
        granularity (the lease protocol needs round boundaries) and
        disables intra-node aggregation.  Lease acquisition runs before
        round 0; an acquisition failure or a mid-run unsound lease
        raises :class:`~repro.core.borrow.BorrowDegraded` on every rank
        after local teardown — the caller re-plans without borrowing.
    pipelined:
        Overlap the shuffle stage of window t with the PFS-service
        stage of window t-1 (write: window t-1 drains to the OSTs
        behind the next exchange; read: window t+1 prefetches from the
        OSTs behind the current scatter), double-buffering inside each
        *planned* aggregation buffer as two half-sized slots — no
        memory beyond the plan's budget is ever committed.  Same
        bytes, same nominal round accounting, shorter critical path.
        Falls back to the exact blocking path — with
        the reason recorded in ``stats.extra["pipeline_fallback"]`` —
        when hosts are already failed or the plan borrows remote
        memory; a failure landing *mid*-pipeline drains the in-flight
        windows at the next round boundary and hands the remaining
        rounds to the lockstep path with `failover_config` re-armed.

    Returns
    -------
    The rank's payload (reads fill it in place), or None.
    """
    if op not in ("write", "read"):
        raise ValueError(f"op must be 'write' or 'read', got {op!r}")
    if granularity not in ("round", "batched", "domain"):
        raise ValueError(f"bad granularity {granularity!r}")
    faulty = failover_config is not None or any(
        node.failed for node in comm.cluster.nodes
    )
    if granularity == "batched" and faulty:
        # the aggregated fast path has no per-message hooks for mid-run
        # failover or degraded hosts; keep fault runs on the exact path
        granularity = "round"
    intra_node = (
        intra_node_aggregation and granularity != "domain" and not faulty
    )
    if borrow is not None:
        # lease checks live at lockstep round boundaries, and a borrowed
        # buffer needs the per-message control points
        granularity = "round"
        intra_node = False
    if pipelined:
        # the overlapped path needs healthy hosts and local buffers to
        # start; it handles failures *arising* mid-run itself (drain,
        # then lockstep + failover), but never starts degraded
        if borrow is not None:
            pipelined = False
            stats.extra["pipeline_fallback"] = "borrow-lease"
        elif any(node.failed for node in comm.cluster.nodes):
            pipelined = False
            stats.extra["pipeline_fallback"] = "failed-nodes"
        else:
            granularity = "round"
            intra_node = False
    env = ctx.env
    stats.mark_start(env.now)
    stats.record_attempt()
    run = _RunContext(ctx, comm, pfs, plan, patterns, stats, op, op_seq, payload)
    run.borrow = borrow
    if granularity == "round" and not intra_node and not pipelined:
        run.failover_config = failover_config

    tracer = env.tracer
    pid = comm.placement[ctx.rank]
    if tracer.enabled:
        tracer.begin(
            "collective", f"collective.{op}", pid, ctx.rank,
            strategy=stats.strategy, seq=op_seq, granularity=granularity,
        )
    try:
        # allocate this rank's aggregation buffers for the whole operation
        for did, domain in enumerate(run.domains):
            if domain.aggregator_rank != ctx.rank:
                continue
            if borrow is not None and domain.lender_node is not None:
                # the buffer lives on the lender once the lease lands
                # (recorded at grant time); only the round count is known now
                run.paged_flags[did] = False
                stats.record_rounds(
                    rounds_for(domain.extent.length, domain.buffer_bytes)
                )
                continue
            _alloc_aggregator_buffer(run, did, domain)
            stats.record_rounds(
                rounds_for(domain.extent.length, domain.buffer_bytes)
            )

        try:
            if borrow is not None:
                yield from acquire_leases(run, borrow)
                # make grant outcomes common knowledge before round 0
                yield from comm.barrier(ctx)
                check_acquisition(run, borrow)
            if pipelined:
                yield from _run_pipelined(run, failover_config)
            elif intra_node:
                yield from _run_intra_node(run)
            elif granularity == "round":
                yield from _run_lockstep(run)
            elif granularity == "batched":
                yield from _run_batched(run)
            else:
                yield from _run_streaming(run)
            if borrow is not None:
                release_leases(run, borrow)
        finally:
            for alloc in run.allocs.values():
                ctx.node.memory.free(alloc)
            run.allocs.clear()
        yield from comm.barrier(ctx)
        stats.mark_end(env.now)
    finally:
        if tracer.enabled:
            tracer.end(pid, ctx.rank)
    return payload


def _alloc_aggregator_buffer(run: _RunContext, did: int, domain: FileDomain):
    """Commit this rank's aggregation buffer for `domain` and record it."""
    ctx = run.ctx
    alloc = ctx.node.memory.alloc(
        domain.buffer_bytes, label=f"cb.{run.op_seq}.{did}"
    )
    run.allocs[did] = alloc
    paged = alloc.paged or domain.paged
    run.paged_flags[did] = paged
    overcommit = max(0, ctx.node.memory.committed - ctx.node.memory.available)
    run.stats.record_aggregator(ctx.rank, domain.buffer_bytes, paged, overcommit)
    return paged


# ---------------------------------------------------------------------------
# lockstep execution (ROMIO's ntimes loop)
# ---------------------------------------------------------------------------
def _run_lockstep(run: _RunContext):
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    ntimes = plan.ntimes
    tracer = ctx.env.tracer
    pid = comm.placement[ctx.rank]
    for t in range(ntimes):
        if tracer.enabled:
            tracer.begin("shuffle", "shuffle.round", pid, ctx.rank, round=t)
        try:
            if run.borrow is not None:
                # lease health first: a borrowed domain cannot be failed
                # over (its buffer is remote), so borrow aborts preempt
                # the failover machinery for those domains
                borrow_round_check(run, run.borrow, t)
            if run.failover_config is not None:
                yield from _failover_check(run, t)
            procs = []
            for did, domain in enumerate(run.domains):
                window = _round_extent(domain, t)
                if window is None:
                    continue
                if domain.aggregator_rank == ctx.rank:
                    procs.append(
                        ctx.spawn(
                            _aggregator_window(
                                run, did, window, t, run.paged_flags[did]
                            ),
                            name=f"rank{ctx.rank}.agg{did}.r{t}",
                        )
                    )
                if plan.is_window_sender(
                    ctx.rank, did, window.offset, window.end, patterns
                ):
                    procs.append(
                        ctx.spawn(
                            _member_window(run, did, window, t),
                            name=f"rank{ctx.rank}.m{did}.r{t}",
                        )
                    )
            if procs:
                yield ctx.env.all_of(procs)
            # ROMIO's per-round synchronisation: the exchange of the next
            # round cannot start before everyone finished this one
            yield from comm.barrier(ctx)
        finally:
            if tracer.enabled:
                tracer.end(pid, ctx.rank, round=t)


def _failover_check(run: _RunContext, t: int):
    """Between-rounds failover: re-place domains whose host failed.

    Every rank reaches a round boundary at the same simulated instant
    (the preceding barrier guarantees it), reads the same cluster state,
    and therefore takes the same branch: either all ranks return
    immediately (no failed aggregator hosts — no events created, so the
    fault-free schedule is untouched), or all ranks join a memory
    allgather (charging the re-coordination time) and compute an
    identical replacement via :func:`replace_failed_domains`.
    """
    ctx, comm = run.ctx, run.comm
    orphaned = any(
        comm.node_of_rank(d.aggregator_rank).failed for d in run.domains
    )
    if not orphaned:
        return
    failed_nodes = frozenset(
        node.node_id for node in comm.cluster.nodes if node.failed
    )
    # fresh memory snapshot: identical values on every rank, and the
    # allgather itself charges the failover's coordination cost
    mem_pairs = yield from comm.allgather(
        ctx, (ctx.node.node_id, ctx.node.memory.free_available), nbytes=16
    )
    memory_available: dict[int, int] = {}
    for node_id, avail in mem_pairs:
        memory_available.setdefault(node_id, avail)
    decision = replace_failed_domains(
        run.domains,
        run.patterns,
        comm.placement,
        memory_available,
        run.failover_config,
        failed_nodes,
    )
    for did in decision.moved:
        old = run.domains[did]
        new = decision.domains[did]
        if old.aggregator_rank == ctx.rank and did in run.allocs:
            ctx.node.memory.free(run.allocs.pop(did))
            run.paged_flags.pop(did, None)
        run.domains[did] = new
        if new.aggregator_rank == ctx.rank:
            _alloc_aggregator_buffer(run, did, new)
            run.stats.record_failover()
            run.stats.extra.setdefault("failover_rounds", []).append(t)
            run.stats.extra.setdefault("failover_targets", []).append(
                new.aggregator_rank
            )
            tracer = ctx.env.tracer
            if tracer.enabled:
                tracer.instant(
                    "failover", "failover.move",
                    comm.placement[ctx.rank], ctx.rank,
                    domain=did, round=t, from_rank=old.aggregator_rank,
                )
    if decision.kept and ctx.rank == comm.world.ranks[0]:
        run.stats.extra["failover_kept"] = (
            run.stats.extra.get("failover_kept", 0) + len(decision.kept)
        )


# ---------------------------------------------------------------------------
# pipelined execution (lockstep shuffle, PFS service overlapped)
# ---------------------------------------------------------------------------
def _half_round_extent(domain: FileDomain, t: int) -> Optional[Extent]:
    """Sub-round `t`'s half-window of `domain`, or None past the last one.

    The pipelined executor splits each planned aggregation buffer into
    two half-sized slots, so its physical round `t` covers half a
    blocking round — the whole pipeline fits in the *planned* memory
    footprint, with no extra allocation.
    """
    half = (domain.buffer_bytes + 1) // 2
    lo = domain.extent.offset + t * half
    if lo >= domain.extent.end:
        return None
    hi = min(domain.extent.end, lo + half)
    return Extent(lo, hi - lo)


def _run_pipelined(run: _RunContext, failover_config):
    """Lockstep sub-rounds with the PFS stage running behind the shuffle.

    Memory-conscious double buffering: each aggregator splits its
    *planned* aggregation buffer into two half-sized slots and walks the
    domain in half-windows, so two windows are in flight inside the
    footprint the planner already budgeted — nothing extra is committed
    against node memory, in any regime.  Each half-window's work is a
    *shuffle* stage (exchange + buffer assembly, in-round) and a
    *PFS-service* stage (drain to / prefetch from the OSTs) running as a
    background process across the round barrier.  Window t lands in slot
    ``t % 2`` and must wait for the service of window t-2 (which used
    the same slot) before reusing it; only the tail window's PFS service
    is exposed on the critical path.  Bytes, message totals, and the
    nominal (planned) round count are identical to the blocking path —
    only the overlap structure differs.

    A host failure noticed at a round boundary degrades the rest of the
    run in place: in-flight write drains are awaited (already-prefetched
    read windows are consumed, never re-read), `failover_config` is
    re-armed so :func:`_failover_check` guards the remaining sub-rounds,
    and each remaining window runs its PFS stage inline — the blocking
    behaviour, at half-window granularity.
    """
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    env = ctx.env
    tracer = env.tracer
    pid = comm.placement[ctx.rank]
    ntimes = max(
        (
            rounds_for(d.extent.length, (d.buffer_bytes + 1) // 2)
            for d in run.domains
        ),
        default=0,
    )
    #: (did, window) -> in-flight background PFS-service process
    service: dict[tuple[int, int], object] = {}
    degraded = False
    for t in range(ntimes):
        if tracer.enabled:
            tracer.begin("shuffle", "shuffle.round", pid, ctx.rank, round=t)
        try:
            if not degraded and any(
                node.failed for node in comm.cluster.nodes
            ):
                # drain the in-flight windows, then run the rest of
                # the operation at blocking fidelity with failover
                degraded = True
                run.failover_config = failover_config
                if run.op == "write":
                    pending = [
                        p for p in service.values() if not p.triggered
                    ]
                    if pending:
                        yield env.all_of(pending)
                    service.clear()
                run.stats.extra.setdefault("pipeline_drained_at", t)
            if degraded and run.failover_config is not None:
                yield from _failover_check(run, t)
            procs = []
            for did, domain in enumerate(run.domains):
                window = _half_round_extent(domain, t)
                if window is None:
                    continue
                if domain.aggregator_rank == ctx.rank:
                    procs.append(
                        ctx.spawn(
                            _pipeline_aggregator_window(
                                run, did, window, t, service, degraded
                            ),
                            name=f"rank{ctx.rank}.pagg{did}.r{t}",
                        )
                    )
                if plan.is_window_sender(
                    ctx.rank, did, window.offset, window.end, patterns
                ):
                    procs.append(
                        ctx.spawn(
                            _member_window(run, did, window, t),
                            name=f"rank{ctx.rank}.m{did}.r{t}",
                        )
                    )
            if procs:
                yield ctx.env.all_of(procs)
            yield from comm.barrier(ctx)
        finally:
            if tracer.enabled:
                tracer.end(pid, ctx.rank, round=t)
    # tail: the last windows' PFS service is still in flight
    pending = [p for p in service.values() if not p.triggered]
    if pending:
        yield env.all_of(pending)


def _pipeline_aggregator_window(
    run: _RunContext, did: int, window: Extent, t: int,
    service: dict, degraded: bool,
):
    if run.op == "write":
        yield from _pipeline_collect(run, did, window, t, service, degraded)
    else:
        yield from _pipeline_scatter(run, did, window, t, service, degraded)


def _pipeline_collect(
    run: _RunContext, did: int, window: Extent, t: int,
    service: dict, degraded: bool,
):
    """Shuffle stage of one write window; the drain runs in background."""
    ctx, comm = run.ctx, run.comm
    # double buffering: window t reuses the slot window t-2 drained from
    prev = service.pop((did, t - 2), None)
    if prev is not None:
        yield prev
    expected = _expected_senders(run, did, window)
    buffer: Optional[np.ndarray] = None
    received = 0
    for _ in range(len(expected)):
        msg = yield from comm.recv(ctx, tag=(run.op_seq, did, t))
        received += msg.nbytes
        if msg.payload is None:
            continue
        if buffer is None:
            buffer = np.zeros(window.length, dtype=np.uint8)
        q = run.patterns[msg.source].clip(window.offset, window.end)
        for off, ln, qbuf in q.iter_mapped_extents():
            rel = off - window.offset
            buffer[rel : rel + ln] = msg.payload[qbuf : qbuf + ln]
    if received == 0:
        return
    # both half-slots live inside the planned (primary) buffer
    paged = run.paged_flags.get(did, False)
    yield from run.node.memcopy(received, paged=paged)
    if degraded:
        yield from _pipeline_drain(run, did, window, t, buffer, expected)
        return
    run.stats.extra["pipeline_overlapped"] = (
        run.stats.extra.get("pipeline_overlapped", 0) + 1
    )
    service[(did, t)] = ctx.spawn(
        _pipeline_drain(run, did, window, t, buffer, expected),
        name=f"rank{ctx.rank}.drain{did}.r{t}",
    )


def _pipeline_drain(
    run: _RunContext, did: int, window: Extent, t: int, buffer, expected
):
    """PFS-service stage of one write window."""
    ctx = run.ctx
    tracer = ctx.env.tracer
    t0 = tracer.now() if tracer.enabled else 0.0
    pieces = _union_extents(run.patterns, expected, window)
    for piece in pieces:
        data = None
        if buffer is not None:
            rel = piece.offset - window.offset
            data = buffer[rel : rel + piece.length]
        yield from run.pfs.write_extent(run.node, piece, data)
        run.stats.record_bytes(piece.length)
        run.stats.record_io_extent(piece.offset, piece.length)
    if tracer.enabled:
        tracer.complete(
            "pipeline", "pipeline.overlap", PID_PIPELINE,
            ctx.rank * 2 + (t % 2), t0, tracer.now() - t0,
            stage="drain", rank=ctx.rank, domain=did, window=t,
            bytes=sum(p.length for p in pieces),
        )


def _pipeline_scatter(
    run: _RunContext, did: int, window: Extent, t: int,
    service: dict, degraded: bool,
):
    """Shuffle-out stage of one read window; prefetches run in background."""
    ctx, comm, env = run.ctx, run.comm, run.ctx.env
    domain = run.domains[did]
    pf = service.pop((did, t), None)
    if pf is None:
        # round 0, or degraded mode: fetch this window inline
        pf = ctx.spawn(
            _pipeline_prefetch(run, did, window, t),
            name=f"rank{ctx.rank}.pf{did}.r{t}",
        )
    yield pf
    buffer, total_read = pf.value
    nxt = None if degraded else _half_round_extent(domain, t + 1)
    if nxt is not None and (did, t + 1) not in service:
        # prefetch the next window into the other slot: the OST reads
        # run behind this window's scatter
        run.stats.extra["pipeline_overlapped"] = (
            run.stats.extra.get("pipeline_overlapped", 0) + 1
        )
        service[(did, t + 1)] = ctx.spawn(
            _pipeline_prefetch(run, did, nxt, t + 1),
            name=f"rank{ctx.rank}.pf{did}.r{t + 1}",
        )
    if total_read == 0:
        return
    paged = run.paged_flags.get(did, False)
    yield from run.node.memcopy(total_read, paged=paged)
    expected = _expected_senders(run, did, window)
    sends = []
    for r in expected:
        q = run.patterns[r].clip(window.offset, window.end)
        data = None
        if buffer is not None:
            data = np.empty(q.nbytes, dtype=np.uint8)
            for off, ln, qbuf in q.iter_mapped_extents():
                rel = off - window.offset
                data[qbuf : qbuf + ln] = buffer[rel : rel + ln]
        sends.append(
            comm.isend(
                ctx, r, q.nbytes, tag=(run.op_seq, did, t),
                payload=data, paged_dst=paged,
            )
        )
    if sends:
        yield env.all_of(sends)


def _pipeline_prefetch(run: _RunContext, did: int, window: Extent, t: int):
    """PFS-service stage of one read window; value = (buffer, bytes read)."""
    ctx = run.ctx
    tracer = ctx.env.tracer
    t0 = tracer.now() if tracer.enabled else 0.0
    expected = _expected_senders(run, did, window)
    if not expected:
        return None, 0
    buffer: Optional[np.ndarray] = (
        np.zeros(window.length, dtype=np.uint8)
        if run.pfs.datastore is not None
        else None
    )
    total = 0
    pieces = _union_extents(run.patterns, expected, window)
    for piece in pieces:
        data = yield from run.pfs.read_extent(run.node, piece)
        total += piece.length
        run.stats.record_bytes(piece.length)
        run.stats.record_io_extent(piece.offset, piece.length)
        if buffer is not None and data is not None:
            rel = piece.offset - window.offset
            buffer[rel : rel + piece.length] = data
    if tracer.enabled:
        tracer.complete(
            "pipeline", "pipeline.overlap", PID_PIPELINE,
            ctx.rank * 2 + (t % 2), t0, tracer.now() - t0,
            stage="prefetch", rank=ctx.rank, domain=did, window=t,
            bytes=total,
        )
    return buffer, total


# ---------------------------------------------------------------------------
# batched execution (lockstep rounds, node-aggregated wire transfers)
# ---------------------------------------------------------------------------
def _run_batched(run: _RunContext):
    """Lockstep rounds with node-aggregated shuffle transfers.

    Same round structure, barrier discipline, and bytes delivered as
    :func:`_run_lockstep`, but each round's inter-node shuffle crosses
    the wire as one batched transfer per (source node, aggregator) pair:
    write contributors stage their bytes to a per-node leader over the
    intra-node path and the leader issues one closed-form
    :meth:`~repro.mpi.comm.SimComm.batched_send`; read aggregators
    scatter with one batched send per destination node.  Co-located
    members keep the per-rank shared-memory path either way.
    """
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    ntimes = plan.ntimes
    tracer = ctx.env.tracer
    pid = comm.placement[ctx.rank]
    for t in range(ntimes):
        if tracer.enabled:
            tracer.begin("shuffle", "shuffle.round", pid, ctx.rank, round=t)
        try:
            procs = []
            for did, domain in enumerate(run.domains):
                window = _round_extent(domain, t)
                if window is None:
                    continue
                if domain.aggregator_rank == ctx.rank:
                    procs.append(
                        ctx.spawn(
                            _aggregator_window_batched(
                                run, did, window, t, run.paged_flags[did]
                            ),
                            name=f"rank{ctx.rank}.agg{did}.r{t}",
                        )
                    )
                if plan.is_window_sender(
                    ctx.rank, did, window.offset, window.end, patterns
                ):
                    procs.append(
                        ctx.spawn(
                            _member_window_batched(run, did, window, t),
                            name=f"rank{ctx.rank}.m{did}.r{t}",
                        )
                    )
            if procs:
                yield ctx.env.all_of(procs)
            yield from comm.barrier(ctx)
        finally:
            if tracer.enabled:
                tracer.end(pid, ctx.rank, round=t)


def _aggregator_window_batched(
    run: _RunContext, did: int, window: Extent, t: int, paged: bool
):
    if run.op == "write":
        yield from _collect_and_write(
            run, did, window, t, paged, io_rounds=None, batched=True
        )
    else:
        yield from _read_and_scatter(
            run, did, window, t, paged, io_rounds=None, batched=True
        )


def _member_window_batched(run: _RunContext, did: int, window: Extent, t: int):
    """Member role for one batched round: pooled node-level write shuffle.

    Reads are unchanged on the member side — the aggregator's batched
    scatter still delivers one logical message per member, so the plain
    recv/unpack path applies.
    """
    if run.op == "read":
        yield from _member_exchange(run, did, window, t)
        return
    ctx, comm = run.ctx, run.comm
    domain = run.domains[did]
    my_pattern = run.patterns[ctx.rank]
    agg = domain.aggregator_rank
    my_node = comm.node_id_of_rank(ctx.rank)
    same_node = comm.node_id_of_rank(agg) == my_node
    q = my_pattern.clip(window.offset, window.end)
    if q.empty:
        return
    tag = (run.op_seq, did, t)
    data = (
        _pack_payload(my_pattern, run.payload, q)
        if run.payload is not None
        else None
    )
    run.stats.record_shuffle(q.nbytes, same_node=same_node)
    agg_node = comm.node_of_rank(agg)
    paged_wire = domain.paged or agg_node.memory.overcommitted
    if same_node:
        # co-located contributions keep the per-rank shared-memory path
        yield from comm.send(
            ctx, agg, q.nbytes, tag=tag, payload=data, paged_dst=paged_wire
        )
        return
    # remote contributors on one node pool their round contribution into
    # a single wire transfer (intra-node staging hops + one batch)
    n_local = 0
    for r in _expected_senders(run, did, window):
        if comm.node_id_of_rank(r) == my_node:
            n_local += 1
    yield from comm.staged_batched_send(
        ctx,
        ("stg", run.op_seq, did, t, my_node),
        n_local,
        (ctx.rank, agg, q.nbytes, tag, data),
        paged_dst=paged_wire,
    )


# ---------------------------------------------------------------------------
# intra-node aggregation (lockstep rounds, leader-coalesced shuffle)
# ---------------------------------------------------------------------------
def _run_intra_node(run: _RunContext):
    """Lockstep rounds with per-node leader-coalesced shuffle.

    Same round structure, barrier discipline, and bytes delivered as
    :func:`_run_lockstep`, but for every (node, domain, window) with the
    aggregator on a *different* node, the node's lowest-ranked window
    sender acts as leader: on writes the co-located senders hand their
    slices to the leader over the shared-memory path and the leader
    ships one :class:`_IntraNodeBundle` per aggregator; on reads the
    aggregator sends the leader one bundle and the leader fans the
    slices out locally.  Co-located members keep the per-rank path.
    Leader staging memory is committed against the node's available
    memory for the life of the pooled transfer, so the memory-conscious
    accounting still sees the coalesced buffers.
    """
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    ntimes = plan.ntimes
    tracer = ctx.env.tracer
    pid = comm.placement[ctx.rank]
    for t in range(ntimes):
        if tracer.enabled:
            tracer.begin("shuffle", "shuffle.round", pid, ctx.rank, round=t)
        try:
            procs = []
            member = False
            for did, domain in enumerate(run.domains):
                window = _round_extent(domain, t)
                if window is None:
                    continue
                if domain.aggregator_rank == ctx.rank:
                    procs.append(
                        ctx.spawn(
                            _aggregator_window_ina(
                                run, did, window, t, run.paged_flags[did]
                            ),
                            name=f"rank{ctx.rank}.agg{did}.r{t}",
                        )
                    )
                if plan.is_window_sender(
                    ctx.rank, did, window.offset, window.end, patterns
                ):
                    member = True
            if member:
                procs.append(
                    ctx.spawn(
                        _member_round_ina(run, t),
                        name=f"rank{ctx.rank}.ina.r{t}",
                    )
                )
            if procs:
                yield ctx.env.all_of(procs)
            yield from comm.barrier(ctx)
        finally:
            if tracer.enabled:
                tracer.end(pid, ctx.rank, round=t)


def _ina_groups(run: _RunContext, did: int, window: Extent) -> dict[int, list[int]]:
    return run.plan.window_node_groups(
        did, window.offset, window.end, run.patterns, run.comm.placement
    )


def _ina_message_count(
    run: _RunContext, did: int, window: Extent, failed_nodes: frozenset = frozenset()
) -> int:
    """Messages the aggregator drains for `window`: locals + one per node.

    Nodes in `failed_nodes` ship per-rank (leader bundling is degraded
    there — see :func:`_member_round_ina_write`), so they count like the
    aggregator's own node: one message per member.
    """
    agg_node = run.comm.node_id_of_rank(run.domains[did].aggregator_rank)
    n = 0
    for nid, ranks in _ina_groups(run, did, window).items():
        n += len(ranks) if (nid == agg_node or nid in failed_nodes) else 1
    return n


def _ina_leader_count(run: _RunContext, t: int, node_id: int) -> int:
    """Distinct leader ranks `node_id` fields in round `t` (write side)."""
    comm = run.comm
    leaders = set()
    for did, domain in enumerate(run.domains):
        window = _round_extent(domain, t)
        if window is None:
            continue
        if comm.node_id_of_rank(domain.aggregator_rank) == node_id:
            continue
        local = _ina_groups(run, did, window).get(node_id)
        if local:
            leaders.add(local[0])
    return len(leaders)


def _aggregator_window_ina(
    run: _RunContext, did: int, window: Extent, t: int, paged: bool
):
    snap = run.stats.failed_nodes_snapshot((run.op_seq, t), run.comm.cluster)
    if run.op == "write":
        yield from _collect_and_write(
            run, did, window, t, paged, io_rounds=None, batched=True,
            n_msgs=_ina_message_count(run, did, window, snap),
        )
    else:
        yield from _read_and_scatter(
            run, did, window, t, paged, io_rounds=None, intra_node=True,
            failed_nodes=snap,
        )


def _member_round_ina(run: _RunContext, t: int):
    if run.op == "write":
        yield from _member_round_ina_write(run, t)
    else:
        yield from _member_round_ina_read(run, t)


def _member_round_ina_write(run: _RunContext, t: int):
    """One rank's whole write-shuffle round under intra-node aggregation.

    Slices bound for a co-located aggregator go straight to it; slices
    bound for remote aggregators go to this node's per-domain leader
    (lowest sender rank) over the shared-memory path, and each leader
    deposits its pooled bundles into one node-wide
    :meth:`~repro.mpi.comm.SimComm.staged_batched_send` rendezvous, so
    the node's entire round leaves the NIC as one shipment with one
    wire message per (domain, window).

    If this rank's *own node* failed (between leader election and ship),
    funnelling the round through a crippled leader would serialize every
    co-located sender behind the failure slowdown — so the node's ranks
    degrade to per-rank direct sends for the round, and the would-be
    leader counts the degradation.
    """
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    my_pattern = patterns[ctx.rank]
    my_node = comm.node_id_of_rank(ctx.rank)
    env = ctx.env
    snap = run.stats.failed_nodes_snapshot((run.op_seq, t), comm.cluster)
    sends = []
    duties = []  # (did, local senders, my slice, packed data, wire paged flag)
    for did, domain in enumerate(run.domains):
        window = _round_extent(domain, t)
        if window is None:
            continue
        if not plan.is_window_sender(
            ctx.rank, did, window.offset, window.end, patterns
        ):
            continue
        q = my_pattern.clip(window.offset, window.end)
        agg = domain.aggregator_rank
        same_node = comm.node_id_of_rank(agg) == my_node
        data = (
            _pack_payload(my_pattern, run.payload, q)
            if run.payload is not None
            else None
        )
        run.stats.record_shuffle(q.nbytes, same_node=same_node)
        paged_wire = domain.paged or comm.node_of_rank(agg).memory.overcommitted
        if same_node:
            sends.append(
                comm.isend(
                    ctx, agg, q.nbytes, tag=(run.op_seq, did, t),
                    payload=data, paged_dst=paged_wire,
                )
            )
            continue
        local = _ina_groups(run, did, window)[my_node]
        if my_node in snap:
            sends.append(
                comm.isend(
                    ctx, agg, q.nbytes, tag=(run.op_seq, did, t),
                    payload=data, paged_dst=paged_wire,
                )
            )
            if ctx.rank == local[0]:
                run.stats.record_ina_fallback()
                tracer = env.tracer
                if tracer.enabled:
                    tracer.instant(
                        "shuffle", "shuffle.ina.leader_fallback",
                        my_node, ctx.rank, domain=did, round=t,
                    )
            continue
        if ctx.rank != local[0]:
            # hand the slice to this node's leader (shared-memory hop)
            sends.append(
                comm.isend(
                    ctx, local[0], q.nbytes,
                    tag=("ina", run.op_seq, did, t), payload=data,
                )
            )
        else:
            duties.append((did, local, q, data, paged_wire))
    if duties:
        tracer = env.tracer
        lead_t0 = tracer.now() if tracer.enabled else 0.0
        n_leaders = _ina_leader_count(run, t, my_node)
        items = []
        staging = []
        paged_map: dict[int, bool] = {}
        for did, local, q, data, paged_wire in duties:
            agg = run.domains[did].aggregator_rank
            parts = [(ctx.rank, q.nbytes, data)]
            if len(local) > 1:
                msgs = yield from comm.recv_many(
                    ctx, len(local) - 1, tag=("ina", run.op_seq, did, t)
                )
                parts.extend((m.source, m.nbytes, m.payload) for m in msgs)
            parts.sort(key=lambda p: p[0])
            total = sum(p[1] for p in parts)
            # the pooled slices occupy leader memory until shipped —
            # charged against the node's available memory
            staging.append(
                ctx.node.memory.alloc(
                    total, label=f"ina.{run.op_seq}.{did}.{t}"
                )
            )
            agg_node = comm.node_id_of_rank(agg)
            paged_map[agg_node] = paged_map.get(agg_node, False) or paged_wire
            items.append(
                (ctx.rank, agg, total, (run.op_seq, did, t),
                 _IntraNodeBundle(tuple(parts)))
            )
        yield from comm.staged_batched_send(
            ctx, ("ina", run.op_seq, t, my_node), n_leaders, items,
            paged_dst=paged_map,
        )
        for alloc in staging:
            ctx.node.memory.free(alloc)
        if tracer.enabled:
            tracer.complete(
                "shuffle", "shuffle.ina.lead", my_node, ctx.rank,
                lead_t0, tracer.now() - lead_t0,
                round=t, domains=len(duties),
                bytes=sum(it[2] for it in items),
            )
    if sends:
        yield env.all_of(sends)


def _member_round_ina_read(run: _RunContext, t: int):
    """One rank's whole read-shuffle round under intra-node aggregation.

    Slices from a co-located aggregator arrive per-rank as usual; each
    remote aggregator sends this node's leader one bundle, which the
    leader unpacks (its own slice) and fans out to the co-located
    members over the shared-memory path.  Blocking waits only ever
    chain toward lower-ranked leaders on the same node, so the
    per-domain recv order cannot deadlock.

    A failed node receives per-rank instead (mirroring the write-side
    degradation): the aggregator skipped the bundle for it, so each
    member posts a plain receive and the would-be leader counts the
    degradation.
    """
    ctx, comm = run.ctx, run.comm
    plan, patterns = run.plan, run.patterns
    my_pattern = patterns[ctx.rank]
    my_node = comm.node_id_of_rank(ctx.rank)
    env = ctx.env
    snap = run.stats.failed_nodes_snapshot((run.op_seq, t), comm.cluster)
    forwards = []
    staging = []
    for did, domain in enumerate(run.domains):
        window = _round_extent(domain, t)
        if window is None:
            continue
        if not plan.is_window_sender(
            ctx.rank, did, window.offset, window.end, patterns
        ):
            continue
        agg = domain.aggregator_rank
        same_node = comm.node_id_of_rank(agg) == my_node
        q = my_pattern.clip(window.offset, window.end)
        tag = (run.op_seq, did, t)
        if same_node:
            msg = yield from comm.recv(ctx, source=agg, tag=tag)
            run.stats.record_shuffle(msg.nbytes, same_node=True)
            if run.payload is not None and msg.payload is not None:
                _unpack_payload(my_pattern, run.payload, q, msg.payload)
            continue
        local = _ina_groups(run, did, window)[my_node]
        if my_node in snap:
            msg = yield from comm.recv(ctx, source=agg, tag=tag)
            run.stats.record_shuffle(msg.nbytes, same_node=False)
            if run.payload is not None and msg.payload is not None:
                _unpack_payload(my_pattern, run.payload, q, msg.payload)
            if ctx.rank == local[0]:
                run.stats.record_ina_fallback()
                tracer = env.tracer
                if tracer.enabled:
                    tracer.instant(
                        "shuffle", "shuffle.ina.leader_fallback",
                        my_node, ctx.rank, domain=did, round=t,
                    )
            continue
        if ctx.rank == local[0]:
            msg = yield from comm.recv(ctx, source=agg, tag=tag)
            parts = (
                msg.payload.parts
                if isinstance(msg.payload, _IntraNodeBundle)
                else ((ctx.rank, msg.nbytes, msg.payload),)
            )
            remote_total = sum(nb for r, nb, _ in parts if r != ctx.rank)
            if remote_total:
                staging.append(
                    ctx.node.memory.alloc(
                        remote_total, label=f"ina.{run.op_seq}.{did}.{t}"
                    )
                )
            for r, nb, data in parts:
                if r == ctx.rank:
                    run.stats.record_shuffle(nb, same_node=False)
                    if run.payload is not None and data is not None:
                        _unpack_payload(my_pattern, run.payload, q, data)
                else:
                    forwards.append(
                        comm.isend(
                            ctx, r, nb,
                            tag=("inaf", run.op_seq, did, t), payload=data,
                        )
                    )
        else:
            msg = yield from comm.recv(
                ctx, source=local[0], tag=("inaf", run.op_seq, did, t)
            )
            run.stats.record_shuffle(msg.nbytes, same_node=False)
            if run.payload is not None and msg.payload is not None:
                _unpack_payload(my_pattern, run.payload, q, msg.payload)
    if forwards:
        yield env.all_of(forwards)
    for alloc in staging:
        ctx.node.memory.free(alloc)


# ---------------------------------------------------------------------------
# streaming execution (one message per pair, aggregators free-run)
# ---------------------------------------------------------------------------
def _run_streaming(run: _RunContext):
    ctx = run.ctx
    my_pattern = run.patterns[ctx.rank]
    procs = []
    for did, domain in enumerate(run.domains):
        if domain.aggregator_rank == ctx.rank:
            procs.append(
                ctx.spawn(
                    _aggregator_streaming(run, did, run.paged_flags[did]),
                    name=f"rank{ctx.rank}.agg{did}",
                )
            )
        if my_pattern.bytes_in(domain.extent.offset, domain.extent.end) > 0:
            procs.append(
                ctx.spawn(
                    _member_streaming(run, did),
                    name=f"rank{ctx.rank}.m{did}",
                )
            )
    if procs:
        yield ctx.env.all_of(procs)


# ---------------------------------------------------------------------------
# member side
# ---------------------------------------------------------------------------
def _member_exchange(run: _RunContext, did: int, window: Extent, tag_round: int):
    """Send (write) or receive (read) this rank's bytes of `window`."""
    ctx, comm = run.ctx, run.comm
    domain = run.domains[did]
    my_pattern = run.patterns[ctx.rank]
    agg = domain.aggregator_rank
    same_node = comm.node_id_of_rank(agg) == comm.node_id_of_rank(ctx.rank)
    q = my_pattern.clip(window.offset, window.end)
    if q.empty:
        return
    tag = (run.op_seq, did, tag_round)
    if run.op == "write":
        data = (
            _pack_payload(my_pattern, run.payload, q)
            if run.payload is not None
            else None
        )
        run.stats.record_shuffle(q.nbytes, same_node=same_node)
        # physical effect, not a planning decision: if the aggregator's
        # node is overcommitted, inbound data lands at paging speed
        agg_node = comm.node_of_rank(agg)
        paged_wire = domain.paged or agg_node.memory.overcommitted
        yield from comm.send(
            ctx, agg, q.nbytes, tag=tag, payload=data, paged_dst=paged_wire
        )
    else:
        msg = yield from comm.recv(ctx, source=agg, tag=tag)
        run.stats.record_shuffle(msg.nbytes, same_node=same_node)
        if run.payload is not None and msg.payload is not None:
            _unpack_payload(my_pattern, run.payload, q, msg.payload)


def _member_window(run: _RunContext, did: int, window: Extent, t: int):
    yield from _member_exchange(run, did, window, t)


def _member_streaming(run: _RunContext, did: int):
    domain = run.domains[did]
    yield from _member_exchange(run, did, domain.extent, 0)


# ---------------------------------------------------------------------------
# aggregator side
# ---------------------------------------------------------------------------
def _borrow_stage(run: _RunContext, did: int, lease, nbytes: int, inbound: bool):
    """Move `nbytes` between the aggregator and its leased remote buffer.

    A borrowed aggregation buffer lives on the lender node, so buffer
    assembly (`inbound`) and drain (outbound) cross the fabric at α–β
    cost instead of the local memory bus.  A lender that failed mid-round
    slows the transfer through the network's failure model; the lease
    itself is only revoked at the next round boundary.
    """
    ctx, comm = run.ctx, run.comm
    lender = comm.cluster.node_of(lease.lender_node)
    tracer = ctx.env.tracer
    t0 = tracer.now() if tracer.enabled else 0.0
    if inbound:
        yield from comm.cluster.network.transfer(ctx.node, lender, nbytes)
    else:
        yield from comm.cluster.network.transfer(lender, ctx.node, nbytes)
    run.stats.record_borrow_bytes(nbytes)
    if tracer.enabled:
        tracer.complete(
            "borrow", "borrow.stage" if inbound else "borrow.fetch",
            comm.placement[ctx.rank], ctx.rank, t0, tracer.now() - t0,
            domain=did, lender=lease.lender_node, bytes=nbytes,
        )


def _expected_senders(run: _RunContext, did: int, window: Extent) -> list[int]:
    return run.plan.window_senders(
        did, window.offset, window.end, run.patterns
    )


def _aggregator_window(
    run: _RunContext, did: int, window: Extent, t: int, paged: bool
):
    """One buffer round of one domain: exchange + I/O for `window`."""
    if run.op == "write":
        yield from _collect_and_write(run, did, window, t, paged, io_rounds=None)
    else:
        yield from _read_and_scatter(run, did, window, t, paged, io_rounds=None)


def _aggregator_streaming(run: _RunContext, did: int, paged: bool):
    """Whole-domain exchange; buffer rounds applied to the I/O locally."""
    domain = run.domains[did]
    io_rounds = [
        w
        for w in (
            _round_extent(domain, t)
            for t in range(rounds_for(domain.extent.length, domain.buffer_bytes))
        )
        if w is not None
    ]
    if run.op == "write":
        yield from _collect_and_write(run, did, domain.extent, 0, paged, io_rounds)
    else:
        yield from _read_and_scatter(run, did, domain.extent, 0, paged, io_rounds)


def _collect_and_write(
    run, did, window, t, paged, io_rounds, batched=False, n_msgs=None
):
    """Receive all contributions for `window`, assemble, write to the PFS.

    With `batched`, the contributions are drained with one counting
    :meth:`~repro.mpi.comm.SimComm.recv_many` instead of one posted
    receive per message (same arrival order, same completion time —
    unpacking costs no simulated time — but one resume per round).
    `n_msgs` overrides the expected message count when senders coalesce
    (intra-node aggregation: one :class:`_IntraNodeBundle` per remote
    node instead of one message per remote rank).
    """
    ctx, comm, pfs, env = run.ctx, run.comm, run.pfs, run.ctx.env
    expected = _expected_senders(run, did, window)
    count = len(expected) if n_msgs is None else n_msgs
    if batched:
        msgs = yield from comm.recv_many(
            ctx, count, tag=(run.op_seq, did, t)
        )
    else:
        msgs = []
        for _ in range(count):
            msg = yield from comm.recv(ctx, tag=(run.op_seq, did, t))
            msgs.append(msg)
    buffer: Optional[np.ndarray] = None
    received = 0
    for msg in msgs:
        received += msg.nbytes
        parts = (
            msg.payload.parts
            if isinstance(msg.payload, _IntraNodeBundle)
            else ((msg.source, msg.nbytes, msg.payload),)
        )
        for src_rank, _nb, data in parts:
            if data is None:
                continue
            if buffer is None:
                buffer = np.zeros(window.length, dtype=np.uint8)
            q = run.patterns[src_rank].clip(window.offset, window.end)
            for off, ln, qbuf in q.iter_mapped_extents():
                rel = off - window.offset
                buffer[rel : rel + ln] = data[qbuf : qbuf + ln]
    if received == 0:
        return
    lease = run.borrow.lease_for(did) if run.borrow is not None else None
    if lease is not None:
        # assembly lands in the lender's leased buffer: α–β fabric cost
        # instead of the local memory bus
        yield from _borrow_stage(run, did, lease, received, inbound=True)
    else:
        # assemble the collective buffer: off-chip memory traffic,
        # throttled for paged buffers
        yield from run.node.memcopy(received, paged=paged)

    windows = io_rounds if io_rounds is not None else [window]
    for i, io_window in enumerate(windows):
        if i > 0:
            # streaming mode: charge the skipped per-round synchronisation
            yield env.sleep(run.node.spec.nic_latency)
        pieces = _union_extents(run.patterns, expected, io_window)
        if lease is not None and pieces:
            # pull the assembled round back from the lender for the write
            yield from _borrow_stage(
                run, did, lease, sum(p.length for p in pieces), inbound=False
            )
        for piece in pieces:
            data = None
            if buffer is not None:
                rel = piece.offset - window.offset
                data = buffer[rel : rel + piece.length]
            yield from pfs.write_extent(run.node, piece, data)
            run.stats.record_bytes(piece.length)
            run.stats.record_io_extent(piece.offset, piece.length)


def _read_and_scatter(
    run, did, window, t, paged, io_rounds, batched=False, intra_node=False,
    failed_nodes=frozenset(),
):
    """Read `window`'s requested extents, then send each rank its bytes.

    With `batched`, remote members' messages are grouped by destination
    node and leave the aggregator as one
    :meth:`~repro.mpi.comm.SimComm.batched_send` per node.  With
    `intra_node`, each remote node instead gets a single
    :class:`_IntraNodeBundle` addressed to its leader (lowest member
    rank), who fans the slices out locally — one wire message per node.
    Nodes in `failed_nodes` are never bundled: their would-be leader is
    crippled, so their members get plain per-rank sends instead.
    """
    ctx, comm, pfs, env = run.ctx, run.comm, run.pfs, run.ctx.env
    expected = _expected_senders(run, did, window)
    if not expected:
        return
    buffer: Optional[np.ndarray] = (
        np.zeros(window.length, dtype=np.uint8) if pfs.datastore is not None else None
    )
    windows = io_rounds if io_rounds is not None else [window]
    total_read = 0
    for i, io_window in enumerate(windows):
        if i > 0:
            yield env.sleep(run.node.spec.nic_latency)
        pieces = _union_extents(run.patterns, expected, io_window)
        for piece in pieces:
            data = yield from pfs.read_extent(run.node, piece)
            total_read += piece.length
            run.stats.record_bytes(piece.length)
            run.stats.record_io_extent(piece.offset, piece.length)
            if buffer is not None and data is not None:
                rel = piece.offset - window.offset
                buffer[rel : rel + piece.length] = data
    if total_read == 0:
        return
    lease = run.borrow.lease_for(did) if run.borrow is not None else None
    if lease is not None:
        # park the fresh read in the lender's leased buffer, then pull
        # it back for the scatter — both legs cross the fabric
        yield from _borrow_stage(run, did, lease, total_read, inbound=True)
        yield from _borrow_stage(run, did, lease, total_read, inbound=False)
    else:
        # stage the buffer through the memory system before scattering
        yield from run.node.memcopy(total_read, paged=paged)

    sends = []
    by_node: dict[int, list] = {}
    my_node = comm.node_id_of_rank(ctx.rank)
    for r in expected:
        q = run.patterns[r].clip(window.offset, window.end)
        data = None
        if buffer is not None:
            data = np.empty(q.nbytes, dtype=np.uint8)
            for off, ln, qbuf in q.iter_mapped_extents():
                rel = off - window.offset
                data[qbuf : qbuf + ln] = buffer[rel : rel + ln]
        tag = (run.op_seq, did, t)
        dest_node = comm.node_id_of_rank(r)
        if intra_node and dest_node != my_node and dest_node not in failed_nodes:
            by_node.setdefault(dest_node, []).append((r, q.nbytes, data))
            continue
        if batched and dest_node != my_node:
            by_node.setdefault(dest_node, []).append(
                (ctx.rank, r, q.nbytes, tag, data)
            )
            continue
        sends.append(
            comm.isend(
                ctx, r, q.nbytes, tag=tag, payload=data, paged_dst=paged
            )
        )
    for dest_node in sorted(by_node):
        if intra_node:
            # one bundle to the node's leader; expected is rank-ordered,
            # so parts[0] is the lowest member rank on that node
            parts = by_node[dest_node]
            sends.append(
                comm.isend(
                    ctx, parts[0][0], sum(p[1] for p in parts),
                    tag=(run.op_seq, did, t),
                    payload=_IntraNodeBundle(tuple(parts)), paged_dst=paged,
                )
            )
            continue
        sends.append(
            ctx.spawn(
                comm.batched_send(ctx, by_node[dest_node], paged_dst=paged),
                name=f"rank{ctx.rank}.bscat{did}.n{dest_node}",
            )
        )
    if sends:
        yield env.all_of(sends)
