"""Empirical determination of MCIO's tuning parameters (paper §3).

The paper measures, on the target platform:

1. "the optimal number of aggregators ``N_ah`` and message size
   ``Msg_ind`` per aggregator that can fully utilize the I/O bandwidth in
   one physical compute node" — :func:`tune_node`;
2. "the minimum memory consumption ``Mem_min`` for one physical node"
   (each node runs ``N_ah`` aggregators with ``Msg_ind``-sized messages)
   — derived as ``N_ah x Msg_ind`` per node, ``Msg_ind`` per aggregator;
3. "the aggregation I/O traffic contention on system level by increasing
   the number of aggregators across the system network ... to find the
   optimal group message size ``Msg_group``" — :func:`tune_system`.

Each measurement is a miniature simulation on the same cluster/PFS models
the experiments use, so the tuned values are consistent with the
platform they will run on.  :func:`tune` chains all three and emits a
ready :class:`~repro.core.config.MCIOConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster import Cluster, ClusterSpec
from repro.cluster.spec import MIB
from repro.core.config import MCIOConfig
from repro.core.request import Extent
from repro.pfs import ParallelFileSystem
from repro.sim import Environment, RngFactory

__all__ = [
    "NodeTuning",
    "SystemTuning",
    "measure_node_throughput",
    "measure_system_throughput",
    "tune_node",
    "tune_system",
    "tune",
]


@dataclass(frozen=True)
class NodeTuning:
    """Result of the single-node sweep."""

    nah: int
    msg_ind: int
    throughput: float
    #: minimum aggregation memory per node (``N_ah x Msg_ind``)
    node_mem_min: int

    @property
    def mem_min(self) -> int:
        """Minimum aggregation memory per aggregator (= ``Msg_ind``)."""
        return self.msg_ind


@dataclass(frozen=True)
class SystemTuning:
    """Result of the system-level sweep."""

    agg_nodes: int
    msg_group: int
    throughput: float
    #: completion-time spread across aggregators at the chosen point
    finish_time_std: float


def _run_aggregators(
    spec: ClusterSpec, n_nodes: int, aggs_per_node: int, msg_size: int, rounds: int
) -> tuple[float, float]:
    """Simulate aggregators streaming writes; returns (throughput, finish std)."""
    env = Environment()
    cluster = Cluster(env, spec.with_nodes(n_nodes), RngFactory(0))
    pfs = ParallelFileSystem(env, spec.storage)
    finish: list[float] = []

    def aggregator(node, agg_index):
        base = (node.node_id * aggs_per_node + agg_index) * rounds
        for r in range(rounds):
            ext = Extent((base + r) * msg_size, msg_size)
            yield from pfs.write_extent(node, ext)
        finish.append(env.now)

    for node in cluster.nodes:
        for a in range(aggs_per_node):
            env.process(aggregator(node, a), name=f"agg{node.node_id}.{a}")
    env.run()
    total = n_nodes * aggs_per_node * rounds * msg_size
    elapsed = max(finish)
    return total / elapsed, float(np.std(finish))


def measure_node_throughput(
    spec: ClusterSpec, n_aggs: int, msg_size: int, rounds: int = 4
) -> float:
    """Bytes/second delivered by `n_aggs` aggregators on one node."""
    if n_aggs < 1 or msg_size < 1 or rounds < 1:
        raise ValueError("n_aggs, msg_size, rounds must be >= 1")
    throughput, _ = _run_aggregators(spec, 1, n_aggs, msg_size, rounds)
    return throughput


def measure_system_throughput(
    spec: ClusterSpec, n_agg_nodes: int, nah: int, msg_ind: int, rounds: int = 2
) -> tuple[float, float]:
    """(throughput, finish-time std) with `n_agg_nodes` nodes aggregating."""
    if n_agg_nodes < 1:
        raise ValueError("n_agg_nodes must be >= 1")
    return _run_aggregators(spec, n_agg_nodes, nah, msg_ind, rounds)


def tune_node(
    spec: ClusterSpec,
    nah_candidates: Optional[Sequence[int]] = None,
    msg_candidates: Optional[Sequence[int]] = None,
    threshold: float = 0.95,
    rounds: int = 4,
) -> NodeTuning:
    """Sweep (aggregator count, message size) on one node.

    Picks the *cheapest* configuration — fewest aggregators, then smallest
    message — whose throughput reaches `threshold` of the best observed,
    i.e. the point where the node's I/O path saturates.
    """
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    if nah_candidates is None:
        nah_candidates = [1, 2, 4, 8]
    if msg_candidates is None:
        msg_candidates = [1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB]
    results: dict[tuple[int, int], float] = {}
    for nah in nah_candidates:
        for msg in msg_candidates:
            results[(nah, int(msg))] = measure_node_throughput(
                spec, nah, int(msg), rounds=rounds
            )
    best = max(results.values())
    for nah in sorted(set(nah_candidates)):
        for msg in sorted(set(int(m) for m in msg_candidates)):
            if results[(nah, msg)] >= threshold * best:
                return NodeTuning(
                    nah=nah,
                    msg_ind=msg,
                    throughput=results[(nah, msg)],
                    node_mem_min=nah * msg,
                )
    raise AssertionError("unreachable: best config always passes threshold")


def tune_system(
    spec: ClusterSpec,
    nah: int,
    msg_ind: int,
    max_agg_nodes: Optional[int] = None,
    threshold: float = 0.9,
    rounds: int = 2,
) -> SystemTuning:
    """Grow the aggregating-node count until system throughput saturates.

    ``Msg_group`` is the data volume that keeps exactly that many
    aggregator nodes busy: ``agg_nodes x N_ah x Msg_ind``.
    """
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    if max_agg_nodes is None:
        max_agg_nodes = min(spec.nodes, 16)
    candidates = sorted(
        {k for k in (1, 2, 3, 4, 6, 8, 12, 16, max_agg_nodes) if 1 <= k <= max_agg_nodes}
    )
    measured = [
        (k, *measure_system_throughput(spec, k, nah, msg_ind, rounds=rounds))
        for k in candidates
    ]
    best = max(t for _, t, _ in measured)
    for k, throughput, std in measured:
        if throughput >= threshold * best:
            return SystemTuning(
                agg_nodes=k,
                msg_group=k * nah * msg_ind,
                throughput=throughput,
                finish_time_std=std,
            )
    raise AssertionError("unreachable: best config always passes threshold")


def tune(
    spec: ClusterSpec,
    cb_buffer_size: Optional[int] = None,
    threshold_node: float = 0.95,
    threshold_system: float = 0.9,
) -> MCIOConfig:
    """Run the full tuning pipeline and return a ready MCIO config."""
    node = tune_node(spec, threshold=threshold_node)
    system = tune_system(spec, node.nah, node.msg_ind, threshold=threshold_system)
    # Mem_min is already enforced by the placer's nominal-buffer
    # requirement; expressing it again as a hard `mem_min` floor would
    # double-count and push healthy hosts into the remerge path.  The
    # tuned floor therefore flows into `min_buffer` (the smallest buffer
    # the adaptive path may grant).
    return MCIOConfig(
        msg_group=system.msg_group,
        msg_ind=node.msg_ind,
        mem_min=0,
        nah=node.nah,
        min_buffer=max(1, node.msg_ind // 4),
        cb_buffer_size=(
            cb_buffer_size if cb_buffer_size is not None else node.msg_ind
        ),
    )
