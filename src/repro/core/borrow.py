"""Remote-memory borrowing: lease-backed aggregation buffers.

When the placer tags a file domain with ``lender_node`` (placement
policy ``"borrow"``/``"hybrid"``), the domain's aggregation buffer does
not live on the aggregator's host — it is *leased* from the lender's
:class:`~repro.cluster.memory.MemoryModel` through the cluster's shared
:class:`~repro.cluster.memory.LeaseLedger`, and buffer staging crosses
the fabric at α–β cost instead of the local memory bus.

This module is the lease protocol the engine drives:

* **acquisition** — before round 0, each borrowing aggregator tries to
  grant its lease with capped exponential backoff under contention; a
  post-acquisition barrier makes the grant outcome common knowledge, so
  every rank takes the same branch;
* **round-boundary checks** — at every lockstep round start (before the
  failover check), all ranks evaluate every lease against the same
  pinned verdict: lender death, a memory squeeze on the lender, term
  expiry, or the *borrower's* host dying.  Any unsound lease aborts the
  in-flight collective on every rank via :class:`BorrowDegraded`;
* **renewal** — a healthy lease inside its renewal window (less than
  half a term remaining) is extended by its borrower;
* **teardown** — on abort the borrower revokes unsound leases and
  releases healthy ones; on success all leases are released before the
  final barrier.  Either way the ledger ends the collective with zero
  outstanding leases.

Determinism: the barrier preceding every round puts all ranks at the
same sim instant; the first rank to reach a round computes the verdict
from shared state and *pins* it on the session, so later ranks at the
same instant reuse it even though the borrower's own teardown mutates
the ledger mid-instant.  Fault-free borrow runs add one extra barrier
(post-acquisition) and otherwise follow the normal lockstep schedule.
"""

from __future__ import annotations

__all__ = ["BorrowDegraded", "BorrowSession"]


class BorrowDegraded(RuntimeError):
    """The collective must abandon its borrowed plan and re-run degraded.

    Raised on *every* rank at the same round boundary (or before round 0
    when acquisition fails), after lease teardown.  The engine's caller
    catches it and re-enters the planning chain with borrowing disabled.

    Attributes
    ----------
    round_index:
        Lockstep round at whose boundary the abort happened; ``-1`` for
        an acquisition failure (no round ran).
    reasons:
        Tuple of ``(domain_id, reason)`` pairs, e.g.
        ``(3, "lender-failed")``.
    """

    def __init__(self, round_index: int, reasons):
        self.round_index = round_index
        self.reasons = tuple(reasons)
        detail = ", ".join(f"domain {d}: {r}" for d, r in self.reasons)
        super().__init__(
            f"borrowed collective degraded at round {round_index} ({detail})"
        )


class BorrowSession:
    """Shared per-collective lease state (one instance across all ranks)."""

    def __init__(self, ledger, config, op_seq, tenant=None):
        self.ledger = ledger
        self.config = config
        self.op_seq = op_seq
        #: Owning job's identity (stamped on every lease this session
        #: grants) in a multi-tenant environment; None otherwise.
        self.tenant = tenant
        #: domain id -> Lease, filled by the borrowing aggregators.
        self.leases: dict = {}
        #: domain id -> grant attempts, for domains whose acquisition
        #: exhausted its retries.
        self.failed_acquire: dict = {}
        #: round -> pinned verdict tuple; the first rank to reach a round
        #: computes it, later ranks at the same instant reuse it.
        self.round_verdicts: dict = {}
        #: (round, reasons) once degradation was decided.
        self.aborted = None

    def lease_for(self, did):
        """The domain's active lease, or None."""
        lease = self.leases.get(did)
        return lease if lease is not None and lease.active else None


# ---------------------------------------------------------------------------
# engine-facing protocol steps (run against the engine's _RunContext)
# ---------------------------------------------------------------------------
def acquire_leases(run, session: BorrowSession):
    """Process generator: this rank grants its borrowed domains' leases.

    Retries with capped exponential backoff
    (``min(cap, base * 2**attempt)``) up to ``lease_retry_limit`` extra
    attempts; exhaustion is recorded on the shared session and resolved
    collectively after the post-acquisition barrier.
    """
    ctx = run.ctx
    env = ctx.env
    cfg = session.config
    tracer = env.tracer
    pid = run.comm.placement[ctx.rank]
    for did, domain in enumerate(run.domains):
        if domain.lender_node is None or domain.aggregator_rank != ctx.rank:
            continue
        if tracer.enabled:
            tracer.begin(
                "borrow", "borrow.acquire", pid, ctx.rank,
                domain=did, lender=domain.lender_node,
                bytes=domain.buffer_bytes,
            )
        attempts = 0
        lease = None
        while True:
            lease = session.ledger.grant(
                domain.lender_node, ctx.rank, domain.buffer_bytes,
                now=env.now, term=cfg.lease_term,
                headroom=cfg.lend_headroom, tenant=session.tenant,
            )
            if lease is not None or attempts >= cfg.lease_retry_limit:
                break
            delay = min(
                cfg.lease_backoff_cap, cfg.lease_backoff_base * (2 ** attempts)
            )
            attempts += 1
            yield env.sleep(delay)
        if tracer.enabled:
            tracer.end(pid, ctx.rank, granted=lease is not None, attempts=attempts)
        if lease is None:
            session.failed_acquire[did] = attempts
            continue
        session.leases[did] = lease
        run.stats.record_lease("granted")
        run.stats.record_aggregator(
            ctx.rank, domain.buffer_bytes, paged=False, overcommit_bytes=0
        )


def check_acquisition(run, session: BorrowSession) -> None:
    """Post-barrier resolution of the acquisition phase.

    Every rank reads the same shared ``failed_acquire`` map at the same
    instant: either all proceed into round 0, or all tear down and raise
    :class:`BorrowDegraded` before any byte moved.
    """
    if not session.failed_acquire:
        return
    reasons = tuple(
        (did, "acquire-exhausted") for did in sorted(session.failed_acquire)
    )
    _abort(run, session, -1, reasons)


def borrow_round_check(run, session: BorrowSession, t: int):
    """Round-boundary lease health check + renewal (deterministic).

    Runs on every rank before the failover check.  The verdict for round
    `t` is pinned by the first arriving rank so later ranks ignore the
    ledger mutations the borrower's own teardown performs mid-instant.
    """
    if not session.leases:
        return
    ctx, comm = run.ctx, run.comm
    now = ctx.env.now
    ledger = session.ledger
    cfg = session.config
    reasons = session.round_verdicts.get(t)
    if reasons is None:
        found = []
        for did, lease in sorted(session.leases.items()):
            verdict = ledger.soundness(lease, now)
            if verdict is None and comm.node_of_rank(
                run.domains[did].aggregator_rank
            ).failed:
                # the *borrower's* host died: the borrowed domain cannot
                # be failed over (its buffer is remote); abort instead
                verdict = "borrower-host-failed"
            if verdict is not None:
                found.append((did, verdict))
        reasons = session.round_verdicts[t] = tuple(found)
    if reasons:
        _abort(run, session, t, reasons)
    # renewal: the borrower extends any of its leases inside the
    # renewal window (less than half a term remaining)
    for did, lease in sorted(session.leases.items()):
        if lease.borrower_rank != ctx.rank:
            continue
        if lease.active and lease.expires_at - now <= cfg.lease_term / 2:
            if ledger.renew(lease, now, cfg.lease_term):
                run.stats.record_lease("renewed")
                tracer = ctx.env.tracer
                if tracer.enabled:
                    tracer.instant(
                        "borrow", "borrow.renew",
                        comm.placement[ctx.rank], ctx.rank,
                        domain=did, round=t,
                    )


def release_leases(run, session: BorrowSession) -> None:
    """Normal end-of-collective teardown: each borrower releases its own."""
    ctx = run.ctx
    now = ctx.env.now
    tracer = ctx.env.tracer
    for did, lease in sorted(session.leases.items()):
        if lease.borrower_rank != ctx.rank or not lease.active:
            continue
        session.ledger.release(lease, now)
        run.stats.record_lease("released")
        if tracer.enabled:
            tracer.instant(
                "borrow", "borrow.release",
                run.comm.placement[ctx.rank], ctx.rank,
                domain=did, lease=lease.lease_id,
            )


def _abort(run, session: BorrowSession, t: int, reasons) -> None:
    """Tear down this rank's leases and raise on every rank.

    Unsound leases are revoked (counted revoked or expired per reason),
    healthy ones released; the root rank records the fallback event.
    """
    ctx = run.ctx
    now = ctx.env.now
    unsound = dict(reasons)
    ledger = session.ledger
    for did, lease in sorted(session.leases.items()):
        if lease.borrower_rank != ctx.rank or not lease.active:
            continue
        reason = unsound.get(did)
        if reason is not None and reason != "acquire-exhausted":
            ledger.revoke(lease, now, reason=reason)
            run.stats.record_lease(
                "expired" if reason == "expired" else "revoked"
            )
        else:
            ledger.release(lease, now)
            run.stats.record_lease("released")
    if ctx.rank == run.comm.world.ranks[0]:
        run.stats.record_borrow_fallback()
        run.stats.extra["borrow_fallback_round"] = t
        run.stats.extra["borrow_fallback_reason"] = ";".join(
            f"{did}:{r}" for did, r in reasons
        )
    tracer = ctx.env.tracer
    if tracer.enabled:
        tracer.instant(
            "borrow", "borrow.abort",
            run.comm.placement[ctx.rank], ctx.rank,
            round=t, reasons=len(reasons),
        )
    session.aborted = (t, reasons)
    raise BorrowDegraded(t, reasons)
